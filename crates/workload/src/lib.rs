#![warn(missing_docs)]
//! Workload models for the Amoeba reproduction.
//!
//! The paper evaluates on five FunctionBench microservices (Table III)
//! driven by a diurnal load trace from Didi (§VII-A). FunctionBench's
//! actual Python functions and the Didi trace are not available here, so
//! this crate models each microservice as a **demand vector** — how many
//! CPU-seconds, MB of memory, MB of disk IO and MB of network transfer one
//! query consumes — calibrated to Table III's sensitivity classes, and
//! models the trace as a two-peak diurnal pattern whose low phase is
//! 25–30 % of the peak (§I: "the low load is less than 30 % of the peak
//! load"). §II-A notes "the actual fluctuate pattern does not affect the
//! analysis", so the shape, not the exact trace, is what matters.

pub mod arrivals;
pub mod benchmarks;
pub mod dag;
pub mod demand;
pub mod trace;

pub use arrivals::{ArrivalProcess, PoissonArrivals};
pub use benchmarks::{benchmark_by_name, standard_benchmarks, MicroserviceSpec};
pub use dag::{DagError, StageSpec, WorkflowBuilder, WorkflowSpec, MAX_STAGES};
pub use demand::{DemandVector, ResourceKind, Sensitivity};
pub use trace::{DiurnalPattern, LoadTrace};
