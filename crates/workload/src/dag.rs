//! Workflow DAG service definitions.
//!
//! Real microservice traffic is chains and fan-outs, not single
//! functions: a query enters at a root stage, flows along the edges,
//! and the response is ready when the last sink stage finishes. Each
//! stage has its own [`DemandVector`]; the *workflow* has one
//! end-to-end QoS target that must be split across the stages (the
//! Eq. 5 admission test then runs per stage against its slice of the
//! budget). Modeled on Aquatope's multi-phase serverless workflows
//! (PAPERS.md).
//!
//! [`WorkflowSpec`] is only constructible through [`WorkflowBuilder`],
//! which validates the graph (acyclic, a single entry stage, edges in
//! range) and precomputes the topological order and adjacency used by
//! the runtime. A single-stage workflow is exactly one microservice
//! and lowers to the plain per-service path.

use crate::demand::DemandVector;
use std::fmt;

/// Hard cap on stages per workflow — the stage index must fit the
/// 8-bit stage field of a query id (and 64 stages is already far past
/// any realistic service chain).
pub const MAX_STAGES: usize = 64;

/// One stage of a workflow: a named unit of work with its own demand.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage name, unique within the workflow.
    pub name: String,
    /// What one query consumes at this stage.
    pub demand: DemandVector,
}

/// Why a workflow definition was rejected by [`WorkflowBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// The workflow has no stages.
    Empty,
    /// More than [`MAX_STAGES`] stages.
    TooManyStages(usize),
    /// Two stages share a name.
    DuplicateStageName(String),
    /// A stage demand vector failed [`DemandVector::is_valid`] or does
    /// no work at all (the stage index is carried).
    InvalidDemand(usize),
    /// An edge endpoint is not a stage index.
    EdgeOutOfRange(usize, usize),
    /// An edge from a stage to itself.
    SelfEdge(usize),
    /// The same edge listed twice.
    DuplicateEdge(usize, usize),
    /// The edges form a cycle.
    Cycle,
    /// More than one stage has no predecessor (indices carried); a
    /// workflow has exactly one entry stage.
    MultipleRoots(Vec<usize>),
    /// Non-positive or non-finite end-to-end QoS target.
    InvalidQosTarget,
    /// QoS percentile outside `(0, 1)`.
    InvalidPercentile,
    /// Non-positive or non-finite peak QPS.
    InvalidPeakQps,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "workflow has no stages"),
            DagError::TooManyStages(n) => write!(f, "{n} stages exceeds the cap of {MAX_STAGES}"),
            DagError::DuplicateStageName(n) => write!(f, "duplicate stage name {n:?}"),
            DagError::InvalidDemand(i) => write!(f, "stage {i} has an invalid or empty demand"),
            DagError::EdgeOutOfRange(a, b) => write!(f, "edge ({a}, {b}) out of range"),
            DagError::SelfEdge(i) => write!(f, "self edge on stage {i}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a}, {b})"),
            DagError::Cycle => write!(f, "edges form a cycle"),
            DagError::MultipleRoots(r) => write!(f, "multiple entry stages {r:?}"),
            DagError::InvalidQosTarget => write!(f, "QoS target must be positive and finite"),
            DagError::InvalidPercentile => write!(f, "QoS percentile must be in (0, 1)"),
            DagError::InvalidPeakQps => write!(f, "peak QPS must be positive and finite"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated workflow DAG: stages, edges, one end-to-end QoS budget.
///
/// Constructed only by [`WorkflowBuilder::build`], so every instance
/// is acyclic with exactly one entry stage and carries its topological
/// order and adjacency lists precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSpec {
    name: String,
    stages: Vec<StageSpec>,
    edges: Vec<(usize, usize)>,
    qos_target_s: f64,
    qos_percentile: f64,
    peak_qps: f64,
    topo: Vec<usize>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    root: usize,
}

impl WorkflowSpec {
    /// Start building a workflow with the given end-to-end QoS target
    /// (seconds at the default 0.95 percentile) and peak arrival rate.
    pub fn builder(name: &str, qos_target_s: f64, peak_qps: f64) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.to_string(),
            stages: Vec::new(),
            edges: Vec::new(),
            qos_target_s,
            qos_percentile: 0.95,
            peak_qps,
        }
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages, in definition order (stage index = position).
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The `(from, to)` edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// End-to-end QoS target, seconds.
    pub fn qos_target_s(&self) -> f64 {
        self.qos_target_s
    }

    /// QoS percentile (shared by the workflow and every stage).
    pub fn qos_percentile(&self) -> f64 {
        self.qos_percentile
    }

    /// Peak arrival rate at the entry stage, queries/second. Every
    /// stage sees this same peak — each query visits each stage once.
    pub fn peak_qps(&self) -> f64 {
        self.peak_qps
    }

    /// The single entry stage (no predecessors).
    pub fn root(&self) -> usize {
        self.root
    }

    /// Predecessors of `stage`.
    pub fn preds(&self, stage: usize) -> &[usize] {
        &self.preds[stage]
    }

    /// Successors of `stage`.
    pub fn succs(&self, stage: usize) -> &[usize] {
        &self.succs[stage]
    }

    /// A topological order of the stages (root first).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Does this workflow reduce to a plain single microservice?
    pub fn is_single_stage(&self) -> bool {
        self.stages.len() == 1
    }

    /// Split the end-to-end budget across stages in proportion to each
    /// stage's uncontended latency `l0` (seconds, one entry per stage):
    /// `budget_i = target · l0_i / CP`, where `CP` is the critical-path
    /// sum of `l0` over root→sink paths. Along *any* path the budgets
    /// then sum to at most the end-to-end target (with equality on the
    /// critical path), so meeting every stage budget meets the
    /// workflow target under serial composition.
    pub fn stage_budgets(&self, l0: &[f64]) -> Vec<f64> {
        let cp = self.critical_path(l0);
        l0.iter().map(|&l| self.qos_target_s * l / cp).collect()
    }

    /// The critical path: the max over root→sink paths of the summed
    /// per-stage `l0`.
    pub fn critical_path(&self, l0: &[f64]) -> f64 {
        assert_eq!(l0.len(), self.stages.len(), "one l0 per stage");
        assert!(
            l0.iter().all(|&l| l.is_finite() && l > 0.0),
            "l0 must be positive and finite"
        );
        // longest[i] = max over root→i paths of Σ l0, including stage i;
        // topological order guarantees predecessors are final when read.
        let mut longest = vec![0.0f64; l0.len()];
        for &i in &self.topo {
            let best_pred = self.preds[i]
                .iter()
                .map(|&p| longest[p])
                .fold(0.0, f64::max);
            longest[i] = best_pred + l0[i];
        }
        longest.iter().cloned().fold(0.0, f64::max)
    }
}

/// Fluent builder for [`WorkflowSpec`].
///
/// ```
/// use amoeba_workload::{DemandVector, WorkflowSpec};
///
/// let mut wf = WorkflowSpec::builder("thumbnail", 0.8, 40.0);
/// let fetch = wf.stage("fetch", DemandVector { cpu_s: 0.01, mem_mb: 64.0, io_mb: 20.0, net_mb: 8.0 });
/// let resize = wf.stage("resize", DemandVector { cpu_s: 0.12, mem_mb: 128.0, io_mb: 0.0, net_mb: 0.0 });
/// let store = wf.stage("store", DemandVector { cpu_s: 0.01, mem_mb: 64.0, io_mb: 15.0, net_mb: 5.0 });
/// wf.edge(fetch, resize).edge(resize, store);
/// let spec = wf.build().unwrap();
/// assert_eq!(spec.root(), fetch);
/// assert_eq!(spec.succs(resize), &[store]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    stages: Vec<StageSpec>,
    edges: Vec<(usize, usize)>,
    qos_target_s: f64,
    qos_percentile: f64,
    peak_qps: f64,
}

impl WorkflowBuilder {
    /// Add a stage; returns its index for use in [`Self::edge`].
    pub fn stage(&mut self, name: &str, demand: DemandVector) -> usize {
        self.stages.push(StageSpec {
            name: name.to_string(),
            demand,
        });
        self.stages.len() - 1
    }

    /// Add a directed edge `from → to`.
    pub fn edge(&mut self, from: usize, to: usize) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Override the QoS percentile (default 0.95).
    pub fn percentile(&mut self, p: f64) -> &mut Self {
        self.qos_percentile = p;
        self
    }

    /// Validate and freeze the workflow.
    pub fn build(&self) -> Result<WorkflowSpec, DagError> {
        let n = self.stages.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        if n > MAX_STAGES {
            return Err(DagError::TooManyStages(n));
        }
        if !(self.qos_target_s.is_finite() && self.qos_target_s > 0.0) {
            return Err(DagError::InvalidQosTarget);
        }
        if !(self.qos_percentile > 0.0 && self.qos_percentile < 1.0) {
            return Err(DagError::InvalidPercentile);
        }
        if !(self.peak_qps.is_finite() && self.peak_qps > 0.0) {
            return Err(DagError::InvalidPeakQps);
        }
        for (i, s) in self.stages.iter().enumerate() {
            if !s.demand.is_valid() || s.demand == DemandVector::ZERO {
                return Err(DagError::InvalidDemand(i));
            }
            if self.stages[..i].iter().any(|o| o.name == s.name) {
                return Err(DagError::DuplicateStageName(s.name.clone()));
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, &(a, b)) in self.edges.iter().enumerate() {
            if a >= n || b >= n {
                return Err(DagError::EdgeOutOfRange(a, b));
            }
            if a == b {
                return Err(DagError::SelfEdge(a));
            }
            if self.edges[..k].contains(&(a, b)) {
                return Err(DagError::DuplicateEdge(a, b));
            }
            succs[a].push(b);
            preds[b].push(a);
        }
        let roots: Vec<usize> = (0..n).filter(|&i| preds[i].is_empty()).collect();
        let root = match roots.as_slice() {
            [] => return Err(DagError::Cycle),
            [r] => *r,
            _ => return Err(DagError::MultipleRoots(roots)),
        };
        // Kahn's algorithm: a completed pass proves acyclicity and, with
        // a single root, that every stage is reachable from it.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut topo = Vec::with_capacity(n);
        let mut ready = vec![root];
        while let Some(i) = ready.pop() {
            topo.push(i);
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(WorkflowSpec {
            name: self.name.clone(),
            stages: self.stages.clone(),
            edges: self.edges.clone(),
            qos_target_s: self.qos_target_s,
            qos_percentile: self.qos_percentile,
            peak_qps: self.peak_qps,
            topo,
            preds,
            succs,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_sim::{Distributions, SimRng};

    fn d(cpu: f64) -> DemandVector {
        DemandVector {
            cpu_s: cpu,
            mem_mb: 64.0,
            io_mb: 0.0,
            net_mb: 0.0,
        }
    }

    fn diamond() -> WorkflowSpec {
        let mut wf = WorkflowSpec::builder("diamond", 1.0, 50.0);
        let a = wf.stage("a", d(0.1));
        let b = wf.stage("b", d(0.2));
        let c = wf.stage("c", d(0.3));
        let e = wf.stage("e", d(0.1));
        wf.edge(a, b).edge(a, c).edge(b, e).edge(c, e);
        wf.build().unwrap()
    }

    #[test]
    fn builds_a_diamond_with_adjacency_and_topo() {
        let wf = diamond();
        assert_eq!(wf.stage_count(), 4);
        assert_eq!(wf.root(), 0);
        assert_eq!(wf.preds(3), &[1, 2]);
        assert_eq!(wf.succs(0), &[1, 2]);
        assert!(!wf.is_single_stage());
        // Topological: every edge goes forward in the order.
        let pos: Vec<usize> = (0..4)
            .map(|i| wf.topo_order().iter().position(|&x| x == i).unwrap())
            .collect();
        for &(a, b) in wf.edges() {
            assert!(pos[a] < pos[b]);
        }
    }

    #[test]
    fn single_stage_is_allowed() {
        let mut wf = WorkflowSpec::builder("solo", 0.5, 10.0);
        wf.stage("only", d(0.05));
        let wf = wf.build().unwrap();
        assert!(wf.is_single_stage());
        assert_eq!(wf.root(), 0);
        assert_eq!(wf.stage_budgets(&[0.05]), vec![0.5]);
    }

    #[test]
    fn rejects_bad_graphs() {
        assert_eq!(
            WorkflowSpec::builder("x", 1.0, 1.0).build(),
            Err(DagError::Empty)
        );
        let mut wf = WorkflowSpec::builder("x", 1.0, 1.0);
        let a = wf.stage("a", d(0.1));
        let b = wf.stage("b", d(0.1));
        wf.edge(a, b).edge(b, a);
        assert_eq!(wf.build(), Err(DagError::Cycle));
        let mut wf = WorkflowSpec::builder("x", 1.0, 1.0);
        let a = wf.stage("a", d(0.1));
        wf.stage("b", d(0.1));
        wf.edge(a, a);
        assert_eq!(wf.build(), Err(DagError::SelfEdge(0)));
        let mut wf = WorkflowSpec::builder("x", 1.0, 1.0);
        wf.stage("a", d(0.1));
        wf.stage("b", d(0.1));
        assert_eq!(wf.build(), Err(DagError::MultipleRoots(vec![0, 1])));
        let mut wf = WorkflowSpec::builder("x", 1.0, 1.0);
        let a = wf.stage("a", d(0.1));
        wf.edge(a, 7);
        assert_eq!(wf.build(), Err(DagError::EdgeOutOfRange(0, 7)));
        let mut wf = WorkflowSpec::builder("x", 1.0, 1.0);
        wf.stage("a", d(0.1));
        wf.stage("a", d(0.2));
        assert_eq!(wf.build(), Err(DagError::DuplicateStageName("a".into())));
        let mut wf = WorkflowSpec::builder("x", 1.0, 1.0);
        wf.stage("a", DemandVector::ZERO);
        assert_eq!(wf.build(), Err(DagError::InvalidDemand(0)));
        let mut wf = WorkflowSpec::builder("x", -1.0, 1.0);
        wf.stage("a", d(0.1));
        assert_eq!(wf.build(), Err(DagError::InvalidQosTarget));
    }

    #[test]
    fn budgets_are_critical_path_proportional() {
        let wf = diamond();
        let l0 = [0.1, 0.2, 0.3, 0.1];
        // Critical path a→c→e = 0.5.
        assert!((wf.critical_path(&l0) - 0.5).abs() < 1e-12);
        let b = wf.stage_budgets(&l0);
        // Critical path budgets sum to exactly the target …
        assert!(((b[0] + b[2] + b[3]) - 1.0).abs() < 1e-12);
        // … and the short path stays under it.
        assert!(b[0] + b[1] + b[3] < 1.0);
    }

    /// Enumerate every root→sink path of `wf` (index lists).
    fn all_paths(wf: &WorkflowSpec) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut stack = vec![vec![wf.root()]];
        while let Some(path) = stack.pop() {
            let last = *path.last().unwrap();
            if wf.succs(last).is_empty() {
                out.push(path);
                continue;
            }
            for &s in wf.succs(last) {
                let mut p = path.clone();
                p.push(s);
                stack.push(p);
            }
        }
        out
    }

    /// Property (a) of the workflow subsystem: for random DAGs and
    /// random positive l0 vectors, the per-stage budgets along *every*
    /// root→sink path sum to at most the end-to-end budget.
    #[test]
    fn property_path_budgets_never_exceed_the_end_to_end_budget() {
        let mut rng = SimRng::seed_from_u64(2024);
        for case in 0..200 {
            let n = 1 + rng.uniform_usize(7);
            let mut wf =
                WorkflowSpec::builder(&format!("p{case}"), 1.0 + rng.uniform_range(0.0, 3.0), 20.0);
            for i in 0..n {
                wf.stage(&format!("s{i}"), d(0.01 + rng.uniform_range(0.0, 0.3)));
            }
            // Forward edges only (i < j) guarantee acyclicity; attach
            // every stage after the first to some earlier stage so the
            // root is unique.
            for j in 1..n {
                let p = rng.uniform_usize(j);
                wf.edge(p, j);
                for q in 0..j {
                    if q != p && rng.uniform() < 0.25 {
                        wf.edge(q, j);
                    }
                }
            }
            let wf = wf.build().unwrap();
            let l0: Vec<f64> = (0..n)
                .map(|_| 0.001 + rng.uniform_range(0.0, 0.5))
                .collect();
            let budgets = wf.stage_budgets(&l0);
            let target = wf.qos_target_s();
            let mut hit_target = false;
            for path in all_paths(&wf) {
                let sum: f64 = path.iter().map(|&i| budgets[i]).sum();
                assert!(
                    sum <= target + 1e-9,
                    "case {case}: path {path:?} budget {sum} > target {target}"
                );
                if (sum - target).abs() < 1e-9 {
                    hit_target = true;
                }
            }
            // The critical path uses the whole budget.
            assert!(hit_target, "case {case}: no path saturates the budget");
        }
    }
}
