//! Arrival processes.
//!
//! The M/M/N analysis of §IV-A assumes "queries arriving interval obeys
//! the exponential distribution of λ". A fixed-rate [`PoissonArrivals`]
//! realises exactly that; with a [`LoadTrace`] attached the process
//! becomes non-homogeneous (time-varying λ) and is sampled by Lewis &
//! Shedler thinning against the trace's rate upper bound.

use crate::trace::LoadTrace;
use amoeba_sim::{Distributions, SimDuration, SimRng, SimTime};

/// A source of query arrival instants.
pub trait ArrivalProcess {
    /// The first arrival strictly after `now`, or `None` once the process
    /// is exhausted (past its horizon).
    fn next_after(&mut self, now: SimTime) -> Option<SimTime>;
}

/// Poisson arrivals — homogeneous at a constant rate, or modulated by a
/// diurnal [`LoadTrace`].
pub struct PoissonArrivals {
    rng: SimRng,
    rate: RateSource,
    horizon: SimTime,
}

enum RateSource {
    Constant(f64),
    Trace(LoadTrace),
}

impl PoissonArrivals {
    /// Homogeneous Poisson process at `qps` until `horizon`.
    pub fn constant(qps: f64, horizon: SimTime, rng: SimRng) -> Self {
        assert!(qps > 0.0);
        PoissonArrivals {
            rng,
            rate: RateSource::Constant(qps),
            horizon,
        }
    }

    /// Non-homogeneous Poisson process following `trace` until `horizon`.
    pub fn from_trace(trace: LoadTrace, horizon: SimTime, rng: SimRng) -> Self {
        PoissonArrivals {
            rng,
            rate: RateSource::Trace(trace),
            horizon,
        }
    }

    /// Collect every arrival in `[0, horizon)`; convenience for tests and
    /// closed-loop experiment drivers.
    pub fn collect_all(mut self) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(t) = self.next_after(now) {
            out.push(t);
            now = t;
        }
        out
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_after(&mut self, now: SimTime) -> Option<SimTime> {
        let mut t = now;
        match &self.rate {
            RateSource::Constant(qps) => {
                let dt = self.rng.exponential(*qps);
                t += SimDuration::from_secs_f64(dt);
                if t >= self.horizon || t == now {
                    None
                } else {
                    Some(t)
                }
            }
            RateSource::Trace(trace) => {
                // Lewis-Shedler thinning against the global bound.
                let bound = trace.rate_upper_bound();
                if bound <= 0.0 {
                    return None;
                }
                loop {
                    let dt = self.rng.exponential(bound);
                    let next = t + SimDuration::from_secs_f64(dt);
                    if next >= self.horizon {
                        return None;
                    }
                    // Guard against a zero-length microsecond-rounded step
                    // producing a duplicate timestamp forever.
                    t = if next == t {
                        t + SimDuration::from_micros(1)
                    } else {
                        next
                    };
                    if t >= self.horizon {
                        return None;
                    }
                    let accept_p = trace.rate_at(t) / bound;
                    if self.rng.uniform() < accept_p {
                        return Some(t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DiurnalPattern;

    #[test]
    fn constant_rate_mean_interval() {
        let rng = SimRng::seed_from_u64(7);
        let horizon = SimTime::from_secs(2000);
        let arrivals = PoissonArrivals::constant(10.0, horizon, rng).collect_all();
        // ~20000 arrivals expected.
        let n = arrivals.len() as f64;
        assert!((n - 20_000.0).abs() < 600.0, "n = {n}");
        // Strictly increasing.
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let horizon = SimTime::from_secs(100);
        let a = PoissonArrivals::constant(5.0, horizon, SimRng::seed_from_u64(3)).collect_all();
        let b = PoissonArrivals::constant(5.0, horizon, SimRng::seed_from_u64(3)).collect_all();
        assert_eq!(a, b);
    }

    #[test]
    fn exponential_interarrival_cv_near_one() {
        // Coefficient of variation of exponential inter-arrivals is 1.
        let horizon = SimTime::from_secs(5000);
        let arrivals =
            PoissonArrivals::constant(20.0, horizon, SimRng::seed_from_u64(11)).collect_all();
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn trace_modulated_process_follows_shape() {
        // Flat 06h trough vs peak: arrival counts should track the rates.
        let trace = LoadTrace::new(DiurnalPattern::didi(), 50.0, 2400.0);
        let horizon = SimTime::from_secs(2400);
        let arrivals =
            PoissonArrivals::from_trace(trace.clone(), horizon, SimRng::seed_from_u64(5))
                .collect_all();
        // Count arrivals near the trough (02:00-04:00 of the compressed
        // day = 200s-400s) vs near the evening peak (17:30-19:30 =
        // 1750s-1950s).
        let count = |lo: u64, hi: u64| {
            arrivals
                .iter()
                .filter(|t| (SimTime::from_secs(lo)..SimTime::from_secs(hi)).contains(t))
                .count() as f64
        };
        let trough = count(200, 400);
        let peak = count(1750, 1950);
        let ratio = trough / peak;
        assert!(
            (0.15..0.45).contains(&ratio),
            "trough/peak arrival ratio {ratio}"
        );
    }

    #[test]
    fn horizon_is_respected() {
        let horizon = SimTime::from_secs(10);
        let arrivals =
            PoissonArrivals::constant(100.0, horizon, SimRng::seed_from_u64(13)).collect_all();
        assert!(arrivals.iter().all(|&t| t < horizon));
        assert!(!arrivals.is_empty());
    }

    #[test]
    fn thinning_matches_expected_total_count() {
        let trace = LoadTrace::new(DiurnalPattern::flat(0.5), 40.0, 1000.0);
        let horizon = SimTime::from_secs(1000);
        let arrivals =
            PoissonArrivals::from_trace(trace, horizon, SimRng::seed_from_u64(17)).collect_all();
        // Effective rate 20 qps over 1000 s => ~20000.
        let n = arrivals.len() as f64;
        assert!((n - 20_000.0).abs() < 600.0, "n = {n}");
    }

    #[test]
    fn burst_increases_local_density() {
        use crate::trace::Burst;
        let trace = LoadTrace::new(DiurnalPattern::flat(0.2), 100.0, 1000.0).with_burst(Burst {
            start: SimTime::from_secs(500),
            duration_s: 50.0,
            magnitude: 1.0,
        });
        let horizon = SimTime::from_secs(1000);
        let arrivals =
            PoissonArrivals::from_trace(trace, horizon, SimRng::seed_from_u64(23)).collect_all();
        let base: usize = arrivals
            .iter()
            .filter(|t| (SimTime::from_secs(400)..SimTime::from_secs(450)).contains(t))
            .count();
        let burst: usize = arrivals
            .iter()
            .filter(|t| (SimTime::from_secs(500)..SimTime::from_secs(550)).contains(t))
            .count();
        assert!(
            burst as f64 > base as f64 * 3.0,
            "burst {burst} vs base {base}"
        );
    }
}
