//! Diurnal load traces.
//!
//! The paper drives every benchmark with "the load trace from Didi" to
//! "emulate real-system load fluctuate patterns" (§II-A) and relies on
//! the diurnal property that the low load is under 30 % of the peak
//! (§I). The trace itself is not redistributable, so [`DiurnalPattern`]
//! ships a Didi-*shaped* ride-hailing day — a bimodal curve with morning
//! and evening rush peaks and a ~25 % overnight trough — plus constructors
//! for custom shapes. §II-A: "The actual fluctuate pattern does not affect
//! the analysis."

use amoeba_sim::{Distributions, SimRng, SimTime};

/// A normalised 24-point diurnal shape (hourly multipliers in `[0, 1]`,
/// max = 1 at the peak hour), interpolated linearly between points and
/// wrapped around midnight.
#[derive(Debug, Clone)]
pub struct DiurnalPattern {
    hourly: Vec<f64>,
}

impl DiurnalPattern {
    /// The Didi-shaped default: overnight trough at 25 % of peak, rush
    /// peaks at 09:00 and 18:00.
    pub fn didi() -> Self {
        DiurnalPattern {
            hourly: vec![
                0.30, 0.26, 0.25, 0.25, 0.26, 0.32, // 00..05
                0.45, 0.70, 0.95, 1.00, 0.85, 0.75, // 06..11
                0.70, 0.68, 0.65, 0.68, 0.75, 0.90, // 12..17
                1.00, 0.95, 0.80, 0.60, 0.45, 0.35, // 18..23
            ],
        }
    }

    /// A single-peak sinusoid-like shape (trough `lo`, peak 1.0 at
    /// mid-day), for experiments that want a smoother pattern.
    pub fn single_peak(lo: f64) -> Self {
        assert!((0.0..1.0).contains(&lo));
        let hourly = (0..24)
            .map(|h| {
                let phase = (h as f64 - 3.0) / 24.0 * std::f64::consts::TAU;
                lo + (1.0 - lo) * 0.5 * (1.0 - phase.cos())
            })
            .collect();
        DiurnalPattern { hourly }
    }

    /// A constant shape (no diurnality) at the given level.
    pub fn flat(level: f64) -> Self {
        assert!((0.0..=1.0).contains(&level));
        DiurnalPattern {
            hourly: vec![level; 24],
        }
    }

    /// Build from custom hourly multipliers. Panics unless exactly 24
    /// values in `[0, 1]` with at least one positive.
    pub fn from_hourly(hourly: Vec<f64>) -> Self {
        assert_eq!(hourly.len(), 24, "need 24 hourly points");
        assert!(hourly.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(hourly.iter().any(|&v| v > 0.0));
        DiurnalPattern { hourly }
    }

    /// Build from arbitrary `(hour, multiplier)` breakpoints — e.g. a
    /// trace digitised from a production dashboard. Hours must be
    /// strictly increasing within `[0, 24)`; the 24 hourly points are
    /// filled by linear interpolation with midnight wrap-around.
    pub fn from_breakpoints(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two breakpoints");
        assert!(
            points.windows(2).all(|w| w[1].0 > w[0].0),
            "hours must be strictly increasing"
        );
        assert!(
            points
                .iter()
                .all(|&(h, m)| (0.0..24.0).contains(&h) && (0.0..=1.0).contains(&m)),
            "breakpoints out of range"
        );
        let interp = |h: f64| -> f64 {
            // Find the surrounding breakpoints, wrapping past the ends.
            let first = points[0];
            let last = points[points.len() - 1];
            if h < first.0 {
                // Between last (yesterday) and first.
                let span = first.0 + 24.0 - last.0;
                let f = (h + 24.0 - last.0) / span;
                return last.1 * (1.0 - f) + first.1 * f;
            }
            if h >= last.0 {
                let span = first.0 + 24.0 - last.0;
                let f = (h - last.0) / span;
                return last.1 * (1.0 - f) + first.1 * f;
            }
            for w in points.windows(2) {
                if h < w[1].0 {
                    let f = (h - w[0].0) / (w[1].0 - w[0].0);
                    return w[0].1 * (1.0 - f) + w[1].1 * f;
                }
            }
            last.1
        };
        DiurnalPattern {
            hourly: (0..24).map(|h| interp(h as f64)).collect(),
        }
    }

    /// Scale the whole shape by `factor` (clamped to `[0, 1]`) — e.g. a
    /// weekend day at 60 % of weekday traffic.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0);
        DiurnalPattern {
            hourly: self.hourly.iter().map(|&v| (v * factor).min(1.0)).collect(),
        }
    }

    /// The multiplier at a fraction `f ∈ [0, 1)` of the day, linearly
    /// interpolated and wrapping around midnight.
    pub fn at_day_fraction(&self, f: f64) -> f64 {
        let f = f.rem_euclid(1.0);
        let x = f * 24.0;
        let i = x.floor() as usize % 24;
        let j = (i + 1) % 24;
        let frac = x - x.floor();
        self.hourly[i] * (1.0 - frac) + self.hourly[j] * frac
    }

    /// Trough-to-peak ratio of the shape.
    pub fn trough_ratio(&self) -> f64 {
        let max = self.hourly.iter().cloned().fold(0.0, f64::max);
        let min = self.hourly.iter().cloned().fold(f64::MAX, f64::min);
        if max > 0.0 {
            min / max
        } else {
            0.0
        }
    }
}

/// A concrete load trace: a diurnal shape scaled to a peak QPS, an
/// optionally compressed day length (so a full diurnal cycle fits in a
/// short simulation), multiplicative noise, and optional load bursts
/// (§II-E: "Amoeba should be able to capture the load change").
///
/// # Examples
///
/// ```
/// use amoeba_sim::SimTime;
/// use amoeba_workload::{DiurnalPattern, LoadTrace};
///
/// // A Didi-shaped day compressed to 480 simulated seconds, peaking at
/// // 120 queries/second at the 09:00 rush (t = 180 s compressed).
/// let trace = LoadTrace::new(DiurnalPattern::didi(), 120.0, 480.0);
/// assert_eq!(trace.rate_at(SimTime::from_secs(180)), 120.0);
/// // Overnight trough is ~25 % of peak.
/// assert!(trace.rate_at(SimTime::from_secs(50)) < 40.0);
/// ```
#[derive(Debug, Clone)]
pub struct LoadTrace {
    pattern: DiurnalPattern,
    peak_qps: f64,
    day_seconds: f64,
    noise_sigma: f64,
    bursts: Vec<Burst>,
    /// Optional per-day-of-week scale factors (cycle of 7 days); `None`
    /// means every day is identical.
    weekly: Option<[f64; 7]>,
}

/// A transient load burst injected on top of the diurnal shape.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    /// When the burst starts.
    pub start: SimTime,
    /// Burst length, seconds.
    pub duration_s: f64,
    /// Additional load, as a multiple of peak QPS (0.5 = +50 % of peak).
    pub magnitude: f64,
}

impl LoadTrace {
    /// A trace with the given shape, peak and (possibly compressed) day
    /// length in seconds.
    pub fn new(pattern: DiurnalPattern, peak_qps: f64, day_seconds: f64) -> Self {
        assert!(peak_qps > 0.0 && day_seconds > 0.0);
        LoadTrace {
            pattern,
            peak_qps,
            day_seconds,
            noise_sigma: 0.0,
            bursts: Vec::new(),
            weekly: None,
        }
    }

    /// Scale each day of a 7-day cycle by a factor in `[0, 1]` — e.g.
    /// `[1, 1, 1, 1, 1, 0.55, 0.5]` for a workweek with quiet weekends.
    /// Day 0 starts at `t = 0`.
    pub fn with_weekly_scale(mut self, weekly: [f64; 7]) -> Self {
        assert!(weekly.iter().all(|&f| (0.0..=1.0).contains(&f)));
        self.weekly = Some(weekly);
        self
    }

    /// Add multiplicative lognormal-ish noise with the given sigma
    /// (sampled per call to [`Self::rate_at_noisy`]).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.noise_sigma = sigma;
        self
    }

    /// Add a burst.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        self.bursts.push(burst);
        self
    }

    /// Peak rate, queries/second.
    pub fn peak_qps(&self) -> f64 {
        self.peak_qps
    }

    /// Day length in (simulated) seconds.
    pub fn day_seconds(&self) -> f64 {
        self.day_seconds
    }

    /// The deterministic instantaneous rate at `t` (shape × peak +
    /// bursts), queries/second.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let f = t.as_secs_f64() / self.day_seconds;
        let mut rate = self.pattern.at_day_fraction(f) * self.peak_qps;
        if let Some(weekly) = &self.weekly {
            let day = (f.floor() as usize).rem_euclid(7);
            rate *= weekly[day];
        }
        for b in &self.bursts {
            let dt = t.as_secs_f64() - b.start.as_secs_f64();
            if (0.0..b.duration_s).contains(&dt) {
                rate += b.magnitude * self.peak_qps;
            }
        }
        rate
    }

    /// The rate with multiplicative noise applied, still non-negative.
    pub fn rate_at_noisy(&self, t: SimTime, rng: &mut SimRng) -> f64 {
        let base = self.rate_at(t);
        if self.noise_sigma == 0.0 {
            return base;
        }
        (base * rng.lognormal(0.0, self.noise_sigma)).max(0.0)
    }

    /// Upper bound on the rate over the whole trace — the thinning bound
    /// for the non-homogeneous Poisson sampler. Includes bursts and a
    /// noise allowance (3σ of the lognormal multiplier).
    pub fn rate_upper_bound(&self) -> f64 {
        let burst_extra: f64 = self.bursts.iter().map(|b| b.magnitude).fold(0.0, f64::max);
        let noise_factor = (3.0 * self.noise_sigma).exp();
        (self.peak_qps * (1.0 + burst_extra)) * noise_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn didi_pattern_has_low_trough_and_two_peaks() {
        let p = DiurnalPattern::didi();
        let ratio = p.trough_ratio();
        assert!(
            ratio <= 0.30,
            "trough ratio {ratio} — paper: low < 30% of peak"
        );
        // Peaks at 09:00 and 18:00.
        assert_eq!(p.at_day_fraction(9.0 / 24.0), 1.0);
        assert_eq!(p.at_day_fraction(18.0 / 24.0), 1.0);
        // Mid-day dip between them.
        assert!(p.at_day_fraction(14.0 / 24.0) < 0.8);
    }

    #[test]
    fn interpolation_between_hours() {
        let p = DiurnalPattern::didi();
        // 08:30 is halfway between 0.95 and 1.00.
        let v = p.at_day_fraction(8.5 / 24.0);
        assert!((v - 0.975).abs() < 1e-9);
    }

    #[test]
    fn wraps_around_midnight() {
        let p = DiurnalPattern::didi();
        // 23:30 interpolates hour 23 (0.35) and hour 0 (0.30).
        let v = p.at_day_fraction(23.5 / 24.0);
        assert!((v - 0.325).abs() < 1e-9);
        // Fractions outside [0,1) wrap.
        assert!((p.at_day_fraction(1.25) - p.at_day_fraction(0.25)).abs() < 1e-12);
        assert!((p.at_day_fraction(-0.75) - p.at_day_fraction(0.25)).abs() < 1e-12);
    }

    #[test]
    fn flat_and_single_peak_shapes() {
        let f = DiurnalPattern::flat(0.5);
        assert_eq!(f.at_day_fraction(0.3), 0.5);
        let s = DiurnalPattern::single_peak(0.25);
        assert!(s.trough_ratio() >= 0.24 && s.trough_ratio() <= 0.30);
    }

    #[test]
    #[should_panic(expected = "24 hourly")]
    fn from_hourly_validates_length() {
        DiurnalPattern::from_hourly(vec![0.5; 23]);
    }

    #[test]
    fn from_breakpoints_interpolates_and_wraps() {
        let p = DiurnalPattern::from_breakpoints(&[(6.0, 0.2), (12.0, 1.0), (22.0, 0.4)]);
        // Exact breakpoints land.
        assert!((p.at_day_fraction(6.0 / 24.0) - 0.2).abs() < 1e-9);
        assert!((p.at_day_fraction(12.0 / 24.0) - 1.0).abs() < 1e-9);
        // Midpoint between 6h and 12h.
        assert!((p.at_day_fraction(9.0 / 24.0) - 0.6).abs() < 1e-9);
        // Midnight wraps between 22h (0.4) and 6h-next-day (0.2):
        // 0h is 2/8 of the way from 22h to 30h.
        let v = p.at_day_fraction(0.0);
        assert!((v - (0.4 + (0.2 - 0.4) * 2.0 / 8.0)).abs() < 1e-9, "{v}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_breakpoints_rejects_unsorted() {
        DiurnalPattern::from_breakpoints(&[(12.0, 0.5), (6.0, 0.2)]);
    }

    #[test]
    fn scaled_shrinks_the_shape() {
        let weekday = DiurnalPattern::didi();
        let weekend = weekday.scaled(0.6);
        for f in [0.1, 0.375, 0.75] {
            assert!((weekend.at_day_fraction(f) - 0.6 * weekday.at_day_fraction(f)).abs() < 1e-9);
        }
        // Scaling never exceeds 1.
        let over = weekday.scaled(5.0);
        assert!(over.at_day_fraction(9.0 / 24.0) <= 1.0);
    }

    #[test]
    fn trace_scales_pattern_to_peak() {
        let tr = LoadTrace::new(DiurnalPattern::didi(), 100.0, 86_400.0);
        assert!((tr.rate_at(SimTime::from_secs(9 * 3600)) - 100.0).abs() < 1e-9);
        assert!((tr.rate_at(SimTime::from_secs(3 * 3600)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn compressed_day_speeds_up_cycle() {
        // Same shape squeezed into 240 s: 09:00 maps to t = 90 s.
        let tr = LoadTrace::new(DiurnalPattern::didi(), 100.0, 240.0);
        assert!((tr.rate_at(SimTime::from_secs(90)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_add_on_top() {
        let tr = LoadTrace::new(DiurnalPattern::flat(0.5), 100.0, 1000.0).with_burst(Burst {
            start: SimTime::from_secs(100),
            duration_s: 10.0,
            magnitude: 0.5,
        });
        assert!((tr.rate_at(SimTime::from_secs(99)) - 50.0).abs() < 1e-9);
        assert!((tr.rate_at(SimTime::from_secs(105)) - 100.0).abs() < 1e-9);
        assert!((tr.rate_at(SimTime::from_secs(110)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_dominates_rate() {
        let tr = LoadTrace::new(DiurnalPattern::didi(), 80.0, 600.0).with_burst(Burst {
            start: SimTime::from_secs(10),
            duration_s: 5.0,
            magnitude: 0.4,
        });
        let ub = tr.rate_upper_bound();
        for i in 0..600 {
            assert!(tr.rate_at(SimTime::from_secs(i)) <= ub + 1e-9);
        }
    }

    #[test]
    fn weekly_scale_modulates_days() {
        let tr = LoadTrace::new(DiurnalPattern::flat(1.0), 100.0, 100.0)
            .with_weekly_scale([1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.4]);
        // Day 0 (t in [0, 100)) at full rate; day 5 at half; day 6 at 0.4;
        // day 7 wraps to day 0.
        assert!((tr.rate_at(SimTime::from_secs(50)) - 100.0).abs() < 1e-9);
        assert!((tr.rate_at(SimTime::from_secs(550)) - 50.0).abs() < 1e-9);
        assert!((tr.rate_at(SimTime::from_secs(650)) - 40.0).abs() < 1e-9);
        assert!((tr.rate_at(SimTime::from_secs(750)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weekly_scale_respects_upper_bound() {
        let tr = LoadTrace::new(DiurnalPattern::didi(), 80.0, 200.0)
            .with_weekly_scale([1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4]);
        let ub = tr.rate_upper_bound();
        for i in 0..1400 {
            assert!(tr.rate_at(SimTime::from_secs(i)) <= ub + 1e-9);
        }
    }

    #[test]
    fn noise_perturbs_but_stays_nonnegative() {
        let tr = LoadTrace::new(DiurnalPattern::flat(0.5), 10.0, 100.0).with_noise(0.3);
        let mut rng = SimRng::seed_from_u64(1);
        let mut saw_different = false;
        for i in 0..100 {
            let r = tr.rate_at_noisy(SimTime::from_secs(i), &mut rng);
            assert!(r >= 0.0);
            if (r - 5.0).abs() > 1e-6 {
                saw_different = true;
            }
        }
        assert!(saw_different);
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let tr = LoadTrace::new(DiurnalPattern::flat(1.0), 10.0, 100.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(tr.rate_at_noisy(SimTime::from_secs(5), &mut rng), 10.0);
    }
}
