//! Per-query resource demand vectors and sensitivity classes.

/// The shared resources of the serverless platform the paper's Fig. 5
/// enumerates: ① cores, ② memory space, ③ IO bandwidth, ④ network
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU cores (and the paper's combined "CPU_Memory" meter dimension).
    Cpu,
    /// Memory space — limits how many containers can run concurrently.
    Memory,
    /// Disk IO bandwidth.
    Io,
    /// Network bandwidth.
    Network,
}

impl ResourceKind {
    /// The three *bandwidth-like* dimensions the contention meters
    /// measure (memory is a capacity, not a rate, and is handled by the
    /// container ceiling `n_max` instead — §IV-A).
    pub const METERED: [ResourceKind; 3] =
        [ResourceKind::Cpu, ResourceKind::Io, ResourceKind::Network];

    /// Short label used in tables and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "CPU",
            ResourceKind::Memory => "Memory",
            ResourceKind::Io => "Disk I/O",
            ResourceKind::Network => "Network",
        }
    }
}

/// Qualitative sensitivity of a benchmark to contention on one resource —
/// the cells of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sensitivity {
    /// "-" in Table III: the resource is barely touched.
    None,
    /// Low pressure/sensitivity.
    Low,
    /// Medium pressure/sensitivity.
    Medium,
    /// High pressure/sensitivity.
    High,
}

impl Sensitivity {
    /// Table III rendering.
    pub fn label(self) -> &'static str {
        match self {
            Sensitivity::None => "-",
            Sensitivity::Low => "low",
            Sensitivity::Medium => "medium",
            Sensitivity::High => "high",
        }
    }
}

/// What one query of a microservice consumes. The platform turns this
/// into a service time: the CPU phase runs at one core, the IO phase
/// streams at the per-flow disk rate, the network phase at the per-flow
/// NIC rate — each phase stretched by the current contention slowdown on
/// its resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandVector {
    /// CPU work, core-seconds.
    pub cpu_s: f64,
    /// Resident memory while the query runs, MB.
    pub mem_mb: f64,
    /// Disk traffic, MB.
    pub io_mb: f64,
    /// Network traffic, MB.
    pub net_mb: f64,
}

impl DemandVector {
    /// A demand vector with nothing in it.
    pub const ZERO: DemandVector = DemandVector {
        cpu_s: 0.0,
        mem_mb: 0.0,
        io_mb: 0.0,
        net_mb: 0.0,
    };

    /// Validity check: all components finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.cpu_s, self.mem_mb, self.io_mb, self.net_mb]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Solo-run execution time in seconds given per-flow streaming rates
    /// (MB/s) for disk and network — the `L₀` of Eq. 6 before platform
    /// overheads.
    pub fn solo_exec_seconds(&self, io_rate_mbps: f64, net_rate_mbps: f64) -> f64 {
        debug_assert!(io_rate_mbps > 0.0 && net_rate_mbps > 0.0);
        self.cpu_s + self.io_mb / io_rate_mbps + self.net_mb / net_rate_mbps
    }

    /// The share of solo execution time spent on each metered resource —
    /// the paper's "sensitivities of the microservice on multiple shared
    /// resources" (§II-D), used to weight per-resource slowdowns.
    pub fn phase_shares(&self, io_rate_mbps: f64, net_rate_mbps: f64) -> [f64; 3] {
        let cpu = self.cpu_s;
        let io = self.io_mb / io_rate_mbps;
        let net = self.net_mb / net_rate_mbps;
        let total = cpu + io + net;
        if total <= 0.0 {
            return [0.0; 3];
        }
        [cpu / total, io / total, net / total]
    }

    /// Classify the demand on one resource into a Table III sensitivity
    /// bucket, relative to the given per-flow rates.
    pub fn sensitivity(
        &self,
        kind: ResourceKind,
        io_rate_mbps: f64,
        net_rate_mbps: f64,
    ) -> Sensitivity {
        let share = match kind {
            ResourceKind::Cpu => self.phase_shares(io_rate_mbps, net_rate_mbps)[0],
            ResourceKind::Io => self.phase_shares(io_rate_mbps, net_rate_mbps)[1],
            ResourceKind::Network => self.phase_shares(io_rate_mbps, net_rate_mbps)[2],
            ResourceKind::Memory => {
                // Memory sensitivity keys off footprint, not time share.
                return if self.mem_mb >= 160.0 {
                    Sensitivity::High
                } else if self.mem_mb >= 96.0 {
                    Sensitivity::Medium
                } else if self.mem_mb > 0.0 {
                    Sensitivity::Low
                } else {
                    Sensitivity::None
                };
            }
        };
        if share >= 0.5 {
            Sensitivity::High
        } else if share >= 0.2 {
            Sensitivity::Medium
        } else if share >= 0.02 {
            Sensitivity::Low
        } else {
            Sensitivity::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IO_RATE: f64 = 500.0;
    const NET_RATE: f64 = 250.0;

    #[test]
    fn zero_vector_is_valid_and_empty() {
        assert!(DemandVector::ZERO.is_valid());
        assert_eq!(DemandVector::ZERO.solo_exec_seconds(IO_RATE, NET_RATE), 0.0);
        assert_eq!(DemandVector::ZERO.phase_shares(IO_RATE, NET_RATE), [0.0; 3]);
    }

    #[test]
    fn invalid_vectors_detected() {
        let mut d = DemandVector::ZERO;
        d.cpu_s = -1.0;
        assert!(!d.is_valid());
        d.cpu_s = f64::NAN;
        assert!(!d.is_valid());
    }

    #[test]
    fn solo_exec_adds_phases() {
        let d = DemandVector {
            cpu_s: 0.1,
            mem_mb: 128.0,
            io_mb: 50.0,
            net_mb: 25.0,
        };
        let want = 0.1 + 50.0 / IO_RATE + 25.0 / NET_RATE;
        assert!((d.solo_exec_seconds(IO_RATE, NET_RATE) - want).abs() < 1e-12);
    }

    #[test]
    fn phase_shares_sum_to_one() {
        let d = DemandVector {
            cpu_s: 0.2,
            mem_mb: 0.0,
            io_mb: 100.0,
            net_mb: 50.0,
        };
        let s = d.phase_shares(IO_RATE, NET_RATE);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn cpu_bound_vector_classifies_high_cpu() {
        let d = DemandVector {
            cpu_s: 0.5,
            mem_mb: 180.0,
            io_mb: 0.0,
            net_mb: 0.0,
        };
        assert_eq!(
            d.sensitivity(ResourceKind::Cpu, IO_RATE, NET_RATE),
            Sensitivity::High
        );
        assert_eq!(
            d.sensitivity(ResourceKind::Io, IO_RATE, NET_RATE),
            Sensitivity::None
        );
        assert_eq!(
            d.sensitivity(ResourceKind::Memory, IO_RATE, NET_RATE),
            Sensitivity::High
        );
    }

    #[test]
    fn io_bound_vector_classifies_high_io() {
        let d = DemandVector {
            cpu_s: 0.05,
            mem_mb: 96.0,
            io_mb: 100.0, // 0.2s at 500MB/s
            net_mb: 0.0,
        };
        assert_eq!(
            d.sensitivity(ResourceKind::Io, IO_RATE, NET_RATE),
            Sensitivity::High
        );
        assert_eq!(
            d.sensitivity(ResourceKind::Memory, IO_RATE, NET_RATE),
            Sensitivity::Medium
        );
    }

    #[test]
    fn resource_labels() {
        assert_eq!(ResourceKind::Cpu.label(), "CPU");
        assert_eq!(ResourceKind::Io.label(), "Disk I/O");
        assert_eq!(Sensitivity::None.label(), "-");
        assert_eq!(Sensitivity::High.label(), "high");
    }

    #[test]
    fn sensitivity_is_ordered() {
        assert!(Sensitivity::None < Sensitivity::Low);
        assert!(Sensitivity::Low < Sensitivity::Medium);
        assert!(Sensitivity::Medium < Sensitivity::High);
    }
}
