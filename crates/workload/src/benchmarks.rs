//! The five FunctionBench microservices of Table III, as demand-vector
//! models.
//!
//! FunctionBench's Python functions are replaced by calibrated demand
//! vectors whose phase shares reproduce the paper's sensitivity table:
//!
//! | Name       | CPU    | Memory | Disk I/O | Network |
//! |------------|--------|--------|----------|---------|
//! | float      | high   | high   | -        | -       |
//! | matmul     | high   | high   | -        | -       |
//! | linpack    | high   | high   | -        | -       |
//! | dd         | medium | medium | high     | -       |
//! | cloud_stor | low    | low    | medium   | high    |
//!
//! A unit test asserts the classification of every cell, so the table in
//! the paper and the code cannot drift apart.

use crate::demand::DemandVector;

/// Everything Amoeba knows about one microservice when it is submitted
/// (§III: the maintainer provides the executable function, the VM image
/// and an IaaS resource configuration sized for peak load — nothing
/// else).
#[derive(Debug, Clone)]
pub struct MicroserviceSpec {
    /// Benchmark name.
    pub name: String,
    /// Per-query resource demand.
    pub demand: DemandVector,
    /// QoS target `T_D`, seconds, on the r-ile end-to-end latency.
    pub qos_target_s: f64,
    /// QoS percentile `r` (the paper uses the 95 %-ile throughout).
    pub qos_percentile: f64,
    /// Peak load the maintainer provisions for, queries/second.
    pub peak_qps: f64,
    /// Memory of a serverless container running this function, MB
    /// (Table II: 256 MB).
    pub container_mem_mb: f64,
}

impl MicroserviceSpec {
    /// Sanity constraints on a spec; the runtime rejects invalid ones.
    pub fn is_valid(&self) -> bool {
        self.demand.is_valid()
            && self.qos_target_s > 0.0
            && (0.0..1.0).contains(&self.qos_percentile)
            && self.qos_percentile > 0.0
            && self.peak_qps > 0.0
            && self.container_mem_mb > 0.0
    }
}

/// Standard per-flow streaming rates used when calibrating the
/// benchmarks (MB/s). One container/VM task streams disk traffic at this
/// rate when the platform is uncontended.
pub const SOLO_IO_RATE_MBPS: f64 = 500.0;
/// Per-flow network streaming rate, MB/s (25 Gb/s NIC shared across
/// flows; a single flow is capped well below line rate).
pub const SOLO_NET_RATE_MBPS: f64 = 250.0;

fn spec(
    name: &str,
    cpu_s: f64,
    mem_mb: f64,
    io_mb: f64,
    net_mb: f64,
    qos_target_s: f64,
    peak_qps: f64,
) -> MicroserviceSpec {
    MicroserviceSpec {
        name: name.to_string(),
        demand: DemandVector {
            cpu_s,
            mem_mb,
            io_mb,
            net_mb,
        },
        qos_target_s,
        qos_percentile: 0.95,
        peak_qps,
        container_mem_mb: 256.0,
    }
}

/// `float`: floating-point arithmetic kernel. CPU/memory bound, tight QoS
/// target (the paper singles it out as a benchmark whose peak CPU
/// utilisation stays low *because* the target is tight).
pub fn float() -> MicroserviceSpec {
    spec("float", 0.080, 176.0, 0.0, 0.1, 0.20, 120.0)
}

/// `matmul`: dense matrix multiply. CPU/memory bound.
pub fn matmul() -> MicroserviceSpec {
    spec("matmul", 0.250, 192.0, 0.0, 1.0, 0.60, 60.0)
}

/// `linpack`: linear-system solve. CPU/memory bound, longest kernel.
pub fn linpack() -> MicroserviceSpec {
    spec("linpack", 0.400, 192.0, 0.0, 0.5, 0.90, 40.0)
}

/// `dd`: disk copy. Disk-IO bound with a medium CPU component.
pub fn dd() -> MicroserviceSpec {
    spec("dd", 0.050, 96.0, 60.0, 0.5, 0.45, 50.0)
}

/// `cloud_stor`: cloud storage upload/download. Network bound with a
/// medium IO component; the paper notes its IaaS CPU utilisation stays
/// low because the bottleneck is the network.
pub fn cloud_stor() -> MicroserviceSpec {
    spec("cloud_stor", 0.020, 64.0, 30.0, 40.0, 0.45, 50.0)
}

/// All five benchmarks in Table III order.
pub fn standard_benchmarks() -> Vec<MicroserviceSpec> {
    vec![float(), matmul(), linpack(), dd(), cloud_stor()]
}

/// Look a benchmark up by its Table III name.
pub fn benchmark_by_name(name: &str) -> Option<MicroserviceSpec> {
    standard_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{ResourceKind, Sensitivity};

    #[test]
    fn all_specs_valid() {
        for b in standard_benchmarks() {
            assert!(b.is_valid(), "{} invalid", b.name);
        }
    }

    #[test]
    fn qos_targets_leave_headroom_over_solo_latency() {
        // A target below the solo execution time would be unsatisfiable
        // even on idle IaaS.
        for b in standard_benchmarks() {
            let solo = b
                .demand
                .solo_exec_seconds(SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS);
            assert!(
                b.qos_target_s > solo * 1.3,
                "{}: target {} too close to solo {}",
                b.name,
                b.qos_target_s,
                solo
            );
        }
    }

    /// The load-bearing test: the demand vectors must reproduce Table III
    /// exactly.
    #[test]
    fn table_iii_sensitivities() {
        use ResourceKind::*;
        use Sensitivity::*;
        let expected: &[(&str, [Sensitivity; 4])] = &[
            ("float", [High, High, None, None]),
            ("matmul", [High, High, None, None]),
            ("linpack", [High, High, None, None]),
            ("dd", [Medium, Medium, High, None]),
            ("cloud_stor", [Low, Low, Medium, High]),
        ];
        for (name, want) in expected {
            let b = benchmark_by_name(name).unwrap();
            let got = [
                b.demand
                    .sensitivity(Cpu, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS),
                b.demand
                    .sensitivity(Memory, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS),
                b.demand
                    .sensitivity(Io, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS),
                b.demand
                    .sensitivity(Network, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS),
            ];
            assert_eq!(&got, want, "{name}: {got:?}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("dd").is_some());
        assert!(benchmark_by_name("nope").is_none());
        assert_eq!(benchmark_by_name("float").unwrap().name, "float");
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = standard_benchmarks()
            .iter()
            .map(|b| b.name.clone())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn invalid_spec_detected() {
        let mut b = float();
        b.qos_target_s = 0.0;
        assert!(!b.is_valid());
        let mut b = float();
        b.qos_percentile = 1.0;
        assert!(!b.is_valid());
        let mut b = float();
        b.peak_qps = -5.0;
        assert!(!b.is_valid());
    }
}
