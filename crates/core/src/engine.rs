//! The hybrid execution engine (§V).
//!
//! The engine owns the per-service router and the switch protocol:
//!
//! 1. On a switch decision, the controller sends the prewarm signal
//!    `S_pw`: the engine prepares the *target* side — prewarms Eq. 7's
//!    container count on the serverless platform, or boots the VM group
//!    on the IaaS platform — while queries keep flowing to the old side.
//! 2. When the acknowledgement (PrewarmReady / VmGroupReady) arrives,
//!    the router flips: *new* queries go to the new side; in-flight
//!    queries finish where they started.
//! 3. The engine then sends the shutdown signal `S_sd` to the old side
//!    (release idle containers / drain and deallocate VMs).
//!
//! The Amoeba-NoP ablation (§VII-D) skips step 1 for switches toward
//! serverless: the router flips immediately and queries eat cold starts.

use crate::controller::DeployMode;
use amoeba_platform::ServiceId;
use amoeba_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Where the router sends a new query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteTarget {
    /// To the serverless pool.
    Serverless,
    /// To the IaaS VM group.
    Iaas,
}

/// What the engine asks the runtime to do on the platforms (the runtime
/// owns the platform objects, so the engine speaks in commands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineAction {
    /// Prewarm `count` containers for the service (then wait for the
    /// `PrewarmReady` ack).
    Prewarm {
        /// The service to warm.
        service: ServiceId,
        /// Eq. 7's container count.
        count: u32,
    },
    /// Boot the service's VM group (then wait for `VmGroupReady`).
    ActivateVms {
        /// The service whose group boots.
        service: ServiceId,
    },
    /// Release the service's serverless containers (`S_sd`).
    ReleaseContainers {
        /// The service to release.
        service: ServiceId,
    },
    /// Drain and deallocate the service's VM group (`S_sd`).
    ReleaseVms {
        /// The service to drain.
        service: ServiceId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    Steady,
    /// Waiting for the target side's readiness ack.
    Preparing {
        target: DeployMode,
    },
}

struct ServiceRoute {
    mode: DeployMode,
    transition: Transition,
    last_switch: SimTime,
    /// Switch history for Fig. 12: (time, new mode, load at switch).
    history: Vec<(SimTime, DeployMode, f64)>,
}

/// The engine: one router entry per service.
pub struct HybridEngine {
    routes: Vec<ServiceRoute>,
    /// Skip prewarming (Amoeba-NoP).
    prewarm_enabled: bool,
}

impl HybridEngine {
    /// An engine for `n` services, all starting in the given mode
    /// (Amoeba starts everything on IaaS to guarantee QoS by default,
    /// §III step 1).
    pub fn new(n: usize, initial: DeployMode, prewarm_enabled: bool) -> Self {
        HybridEngine {
            routes: (0..n)
                .map(|_| ServiceRoute {
                    mode: initial,
                    transition: Transition::Steady,
                    last_switch: SimTime::ZERO,
                    history: Vec::new(),
                })
                .collect(),
            prewarm_enabled,
        }
    }

    /// Pin a service to a mode without the switch protocol — used for
    /// background services (always serverless) and for the static
    /// baselines. Does not touch the switch history.
    pub fn force_mode(&mut self, service: ServiceId, mode: DeployMode) {
        let r = &mut self.routes[service.raw() as usize];
        r.mode = mode;
        r.transition = Transition::Steady;
    }

    /// Where a new query of `service` goes right now.
    pub fn route(&self, service: ServiceId) -> RouteTarget {
        match self.routes[service.raw() as usize].mode {
            DeployMode::Iaas => RouteTarget::Iaas,
            DeployMode::Serverless => RouteTarget::Serverless,
        }
    }

    /// Current deployment mode of a service.
    pub fn mode(&self, service: ServiceId) -> DeployMode {
        self.routes[service.raw() as usize].mode
    }

    /// When the service last changed mode.
    pub fn last_switch(&self, service: ServiceId) -> SimTime {
        self.routes[service.raw() as usize].last_switch
    }

    /// Is a switch currently in flight for this service?
    pub fn in_transition(&self, service: ServiceId) -> bool {
        !matches!(
            self.routes[service.raw() as usize].transition,
            Transition::Steady
        )
    }

    /// The switch history (for the Fig. 12 timeline).
    pub fn history(&self, service: ServiceId) -> &[(SimTime, DeployMode, f64)] {
        &self.routes[service.raw() as usize].history
    }

    /// Begin a switch to `target`. Returns the preparation actions; the
    /// runtime executes them against the platforms and later calls
    /// [`Self::on_ready`] when the ack arrives. `prewarm_count` is Eq. 7's
    /// `n` (ignored for switches toward IaaS). With prewarming disabled
    /// (NoP) a switch to serverless commits immediately and the returned
    /// actions already include the IaaS release.
    pub fn begin_switch(
        &mut self,
        service: ServiceId,
        target: DeployMode,
        prewarm_count: u32,
        load: f64,
        now: SimTime,
    ) -> Vec<EngineAction> {
        let r = &mut self.routes[service.raw() as usize];
        if r.mode == target || !matches!(r.transition, Transition::Steady) {
            return Vec::new();
        }
        match target {
            DeployMode::Serverless => {
                if self.prewarm_enabled {
                    r.transition = Transition::Preparing { target };
                    vec![EngineAction::Prewarm {
                        service,
                        count: prewarm_count,
                    }]
                } else {
                    // NoP: flip immediately; queries cold start.
                    r.mode = DeployMode::Serverless;
                    r.last_switch = now;
                    r.history.push((now, DeployMode::Serverless, load));
                    vec![EngineAction::ReleaseVms { service }]
                }
            }
            DeployMode::Iaas => {
                r.transition = Transition::Preparing { target };
                vec![EngineAction::ActivateVms { service }]
            }
        }
    }

    /// The target side acked readiness (PrewarmReady or VmGroupReady):
    /// flip the router and release the old side. `load` is recorded in
    /// the switch history. Stale acks (no transition pending, or for the
    /// wrong side) are ignored — e.g. a VmGroupReady from an activation
    /// that a faster opposite decision already cancelled.
    pub fn on_ready(
        &mut self,
        service: ServiceId,
        side: DeployMode,
        load: f64,
        now: SimTime,
    ) -> Vec<EngineAction> {
        let r = &mut self.routes[service.raw() as usize];
        let Transition::Preparing { target } = r.transition else {
            return Vec::new();
        };
        if target != side {
            return Vec::new();
        }
        r.mode = target;
        r.transition = Transition::Steady;
        r.last_switch = now;
        r.history.push((now, target, load));
        match target {
            DeployMode::Serverless => vec![EngineAction::ReleaseVms { service }],
            DeployMode::Iaas => vec![EngineAction::ReleaseContainers { service }],
        }
    }

    /// Abort an in-flight transition (e.g. the controller reversed its
    /// decision before the ack). The prepared resources are released.
    pub fn abort_transition(&mut self, service: ServiceId) -> Vec<EngineAction> {
        let r = &mut self.routes[service.raw() as usize];
        let Transition::Preparing { target } = r.transition else {
            return Vec::new();
        };
        r.transition = Transition::Steady;
        match target {
            DeployMode::Serverless => vec![EngineAction::ReleaseContainers { service }],
            DeployMode::Iaas => vec![EngineAction::ReleaseVms { service }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ServiceId = ServiceId(0);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn initial_mode_routes_accordingly() {
        let e = HybridEngine::new(2, DeployMode::Iaas, true);
        assert_eq!(e.route(S), RouteTarget::Iaas);
        let e = HybridEngine::new(1, DeployMode::Serverless, true);
        assert_eq!(e.route(S), RouteTarget::Serverless);
    }

    #[test]
    fn switch_to_serverless_prewarms_then_flips() {
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        let actions = e.begin_switch(S, DeployMode::Serverless, 5, 8.0, t(10));
        assert_eq!(
            actions,
            vec![EngineAction::Prewarm {
                service: S,
                count: 5
            }]
        );
        // Router still points at IaaS until the ack (§V-B: "the
        // transformation only occurs after acknowledgement received").
        assert_eq!(e.route(S), RouteTarget::Iaas);
        assert!(e.in_transition(S));
        let actions = e.on_ready(S, DeployMode::Serverless, 8.0, t(12));
        assert_eq!(actions, vec![EngineAction::ReleaseVms { service: S }]);
        assert_eq!(e.route(S), RouteTarget::Serverless);
        assert!(!e.in_transition(S));
        assert_eq!(e.last_switch(S), t(12));
        assert_eq!(e.history(S), &[(t(12), DeployMode::Serverless, 8.0)]);
    }

    #[test]
    fn switch_to_iaas_boots_then_flips() {
        let mut e = HybridEngine::new(1, DeployMode::Serverless, true);
        let actions = e.begin_switch(S, DeployMode::Iaas, 0, 80.0, t(20));
        assert_eq!(actions, vec![EngineAction::ActivateVms { service: S }]);
        assert_eq!(e.route(S), RouteTarget::Serverless);
        let actions = e.on_ready(S, DeployMode::Iaas, 80.0, t(31));
        assert_eq!(
            actions,
            vec![EngineAction::ReleaseContainers { service: S }]
        );
        assert_eq!(e.route(S), RouteTarget::Iaas);
    }

    #[test]
    fn nop_variant_flips_immediately_without_prewarm() {
        let mut e = HybridEngine::new(1, DeployMode::Iaas, false);
        let actions = e.begin_switch(S, DeployMode::Serverless, 5, 3.0, t(10));
        assert_eq!(actions, vec![EngineAction::ReleaseVms { service: S }]);
        assert_eq!(e.route(S), RouteTarget::Serverless, "NoP routes directly");
        assert!(!e.in_transition(S));
        // Toward IaaS, NoP still waits for VMs (nothing cold-start-like
        // about that direction; the paper's ablation only drops container
        // prewarming).
        let actions = e.begin_switch(S, DeployMode::Iaas, 0, 90.0, t(30));
        assert_eq!(actions, vec![EngineAction::ActivateVms { service: S }]);
        assert_eq!(e.route(S), RouteTarget::Serverless);
    }

    #[test]
    fn duplicate_switch_requests_are_ignored() {
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        assert!(!e
            .begin_switch(S, DeployMode::Serverless, 3, 1.0, t(1))
            .is_empty());
        // Second request while preparing: no-op.
        assert!(e
            .begin_switch(S, DeployMode::Serverless, 3, 1.0, t(2))
            .is_empty());
        // Request for the current mode: no-op.
        let mut e2 = HybridEngine::new(1, DeployMode::Iaas, true);
        assert!(e2
            .begin_switch(S, DeployMode::Iaas, 3, 1.0, t(1))
            .is_empty());
    }

    #[test]
    fn stale_or_mismatched_acks_ignored() {
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        // Ack with no transition pending.
        assert!(e.on_ready(S, DeployMode::Serverless, 0.0, t(1)).is_empty());
        // Ack for the wrong side.
        e.begin_switch(S, DeployMode::Serverless, 3, 1.0, t(2));
        assert!(e.on_ready(S, DeployMode::Iaas, 0.0, t(3)).is_empty());
        assert!(e.in_transition(S));
        // The right ack still lands.
        assert!(!e.on_ready(S, DeployMode::Serverless, 1.0, t(4)).is_empty());
    }

    #[test]
    fn abort_releases_prepared_side() {
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 3, 1.0, t(1));
        let actions = e.abort_transition(S);
        assert_eq!(
            actions,
            vec![EngineAction::ReleaseContainers { service: S }]
        );
        assert!(!e.in_transition(S));
        assert_eq!(e.route(S), RouteTarget::Iaas, "mode unchanged after abort");
        // Abort with nothing pending: no-op.
        assert!(e.abort_transition(S).is_empty());
    }

    #[test]
    fn history_records_both_directions() {
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 2, 4.0, t(10));
        e.on_ready(S, DeployMode::Serverless, 4.0, t(12));
        e.begin_switch(S, DeployMode::Iaas, 0, 90.0, t(50));
        e.on_ready(S, DeployMode::Iaas, 90.0, t(61));
        let h = e.history(S);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, DeployMode::Serverless);
        assert_eq!(h[1].1, DeployMode::Iaas);
        // The loads at which the two switches happened are not equal —
        // the Fig. 12 observation.
        assert_ne!(h[0].2, h[1].2);
    }
}
