//! The hybrid execution engine (§V).
//!
//! The engine owns the per-service router and the switch protocol:
//!
//! 1. On a switch decision, the controller sends the prewarm signal
//!    `S_pw`: the engine prepares the *target* side — prewarms Eq. 7's
//!    container count on the serverless platform, or boots the VM group
//!    on the IaaS platform — while queries keep flowing to the old side.
//! 2. When the acknowledgement (PrewarmReady / VmGroupReady) arrives,
//!    the router flips: *new* queries go to the new side; in-flight
//!    queries finish where they started.
//! 3. The engine then sends the shutdown signal `S_sd` to the old side
//!    (release idle containers / drain and deallocate VMs).
//!
//! The Amoeba-NoP ablation (§VII-D) skips step 1 for switches toward
//! serverless: the router flips immediately and queries eat cold starts.

use crate::controller::DeployMode;
use amoeba_platform::{NodeId, ServiceId, TargetId, TargetMode};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{SwitchPhase, SwitchRecord, TelemetryEvent, TelemetrySink};

impl From<DeployMode> for TargetMode {
    fn from(mode: DeployMode) -> TargetMode {
        match mode {
            DeployMode::Serverless => TargetMode::Serverless,
            DeployMode::Iaas => TargetMode::Iaas,
        }
    }
}

/// Where the router sends a new query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget {
    /// To the serverless pool.
    Serverless,
    /// To the IaaS VM group.
    Iaas,
}

/// What the engine asks the runtime to do on the cluster. Every action
/// names a [`TargetId`] — node × mode — rather than implying one of two
/// platforms, so the same protocol drives a single node or a
/// geo-distributed fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineAction {
    /// Ready the target for traffic (`S_pw`): warm `count` containers
    /// on a serverless target (then wait for the `PrewarmReady` ack),
    /// or boot the VM group on an IaaS target (`count` is ignored;
    /// wait for `VmGroupReady`).
    Prepare {
        /// The service being switched.
        service: ServiceId,
        /// Where to prepare.
        target: TargetId,
        /// Eq. 7's container count (serverless targets only).
        count: u32,
    },
    /// Stand the target down (`S_sd`): release idle containers on a
    /// serverless target, drain and deallocate VMs on an IaaS target.
    Release {
        /// The service being released.
        service: ServiceId,
        /// Where to release.
        target: TargetId,
    },
}

/// The placement-target effectors [`EngineAction`]s dispatch onto. The
/// runtime implements this over its simulated cluster; a real
/// deployment would implement it over per-site OpenWhisk/IaaS control
/// APIs.
pub trait PlatformCommands {
    /// Ready `target` for `service`'s traffic (`S_pw`); the platform
    /// must eventually ack with a `PrewarmReady`/`VmGroupReady`-style
    /// effect. `count` is the container count for serverless targets.
    fn prepare(&mut self, service: ServiceId, target: TargetId, count: u32, now: SimTime);
    /// Stand `target` down for `service` (`S_sd`).
    fn release(&mut self, service: ServiceId, target: TargetId, now: SimTime);
}

/// The legacy two-platform effector surface: one serverless pool and
/// one IaaS fleet, no placement. Kept as the implementation surface of
/// single-node runtimes; [`Legacy`] lifts it onto the target API.
pub trait TwoPlatformCommands {
    /// Warm `count` containers for the service (`S_pw`); the platform
    /// must eventually ack with a `PrewarmReady`-style effect.
    fn prewarm(&mut self, service: ServiceId, count: u32, now: SimTime);
    /// Boot the service's VM group; acks with `VmGroupReady`.
    fn activate_vms(&mut self, service: ServiceId, now: SimTime);
    /// Release the service's serverless containers (`S_sd`).
    fn release_containers(&mut self, service: ServiceId, now: SimTime);
    /// Drain and deallocate the service's VM group (`S_sd`).
    fn release_vms(&mut self, service: ServiceId, now: SimTime);
}

/// Adapter lifting a [`TwoPlatformCommands`] implementation onto the
/// placement-target API: every target must live on node 0, and the two
/// modes map onto the legacy four-signal surface. This is what keeps
/// every pre-existing single-node variant byte-identical under the
/// redesigned engine.
pub struct Legacy<T: TwoPlatformCommands>(pub T);

impl<T: TwoPlatformCommands> PlatformCommands for Legacy<T> {
    fn prepare(&mut self, service: ServiceId, target: TargetId, count: u32, now: SimTime) {
        debug_assert_eq!(target.node, NodeId::ZERO, "legacy adapter is single-node");
        match target.mode {
            TargetMode::Serverless => self.0.prewarm(service, count, now),
            TargetMode::Iaas => self.0.activate_vms(service, now),
        }
    }

    fn release(&mut self, service: ServiceId, target: TargetId, now: SimTime) {
        debug_assert_eq!(target.node, NodeId::ZERO, "legacy adapter is single-node");
        match target.mode {
            TargetMode::Serverless => self.0.release_containers(service, now),
            TargetMode::Iaas => self.0.release_vms(service, now),
        }
    }
}

/// Dispatch a batch of engine actions onto the placement effectors.
pub fn dispatch_actions(
    actions: Vec<EngineAction>,
    now: SimTime,
    platform: &mut dyn PlatformCommands,
) {
    for a in actions {
        match a {
            EngineAction::Prepare {
                service,
                target,
                count,
            } => platform.prepare(service, target, count, now),
            EngineAction::Release { service, target } => platform.release(service, target, now),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Transition {
    Steady,
    /// Waiting for the target side's readiness ack.
    Preparing {
        target: DeployMode,
        /// Eq. 7 prewarm count the prepare signal asked for.
        prewarm: u32,
        /// Load at request time (re-used for retries and the abort).
        load: f64,
        /// When the (latest) prepare signal was issued.
        requested_at: SimTime,
        /// Prepare signals re-issued after ack deadlines so far.
        retries: u32,
    },
}

struct ServiceRoute {
    mode: DeployMode,
    transition: Transition,
    last_switch: SimTime,
    /// Switch history for Fig. 12: (time, new mode, load at switch).
    history: Vec<(SimTime, DeployMode, f64)>,
}

/// What [`HybridEngine::poll_deadline`] did about an overdue ack.
#[derive(Debug, Clone, PartialEq)]
pub enum DeadlineAction {
    /// The prepare signal was re-issued (bounded retry with backoff).
    Retried {
        /// The re-issued prepare actions to dispatch.
        actions: Vec<EngineAction>,
        /// Which retry this is (1-based).
        attempt: u32,
        /// Prewarm containers the retry asks for (0 toward IaaS).
        prewarm: u32,
    },
    /// Retries exhausted: the transition was rolled back. The router
    /// stays on the old platform; the prepared side is released.
    Aborted {
        /// The release actions to dispatch.
        actions: Vec<EngineAction>,
        /// Prewarm containers wasted by the failed attempt.
        prewarm: u32,
        /// When the original (first) prepare signal was issued.
        requested_at: SimTime,
    },
}

/// The engine: one router entry per service.
pub struct HybridEngine {
    routes: Vec<ServiceRoute>,
    /// Home node per service: where the switch protocol's targets
    /// live. All zero in single-node (legacy) runs.
    home: Vec<NodeId>,
    /// Skip prewarming (Amoeba-NoP).
    prewarm_enabled: bool,
    /// How long to wait for a prepare ack before re-issuing the signal.
    /// Doubles per retry (backoff). Generous by default: fault-free
    /// acks arrive within seconds, so the deadline never fires unless
    /// something actually went wrong.
    ack_timeout: SimDuration,
    /// Prepare-signal retries before the transition aborts.
    max_ack_retries: u32,
}

/// Record one switch-protocol stage. Callers pass the sink down from the
/// runtime; the construction is guarded so the disabled sink costs one
/// branch.
#[allow(clippy::too_many_arguments)]
fn emit_phase<S: TelemetrySink + ?Sized>(
    sink: &mut S,
    t: SimTime,
    service: ServiceId,
    from: DeployMode,
    to: DeployMode,
    phase: SwitchPhase,
    prewarm_count: u32,
    load_qps: f64,
) {
    if sink.enabled() {
        sink.record(TelemetryEvent::Switch(SwitchRecord {
            t,
            service: service.raw() as usize,
            from: from.into(),
            to: to.into(),
            phase,
            prewarm_count,
            load_qps,
        }));
    }
}

impl HybridEngine {
    /// An engine for `n` services, all starting in the given mode
    /// (Amoeba starts everything on IaaS to guarantee QoS by default,
    /// §III step 1).
    pub fn new(n: usize, initial: DeployMode, prewarm_enabled: bool) -> Self {
        HybridEngine {
            routes: (0..n)
                .map(|_| ServiceRoute {
                    mode: initial,
                    transition: Transition::Steady,
                    last_switch: SimTime::ZERO,
                    history: Vec::new(),
                })
                .collect(),
            home: vec![NodeId::ZERO; n],
            prewarm_enabled,
            ack_timeout: SimDuration::from_secs(30),
            max_ack_retries: 2,
        }
    }

    /// Pin a service's switch protocol to a home node: subsequent
    /// prepare/release actions name targets on that node.
    pub fn set_home(&mut self, service: ServiceId, node: NodeId) {
        self.home[service.raw() as usize] = node;
    }

    /// The node a service's switch targets live on.
    pub fn home(&self, service: ServiceId) -> NodeId {
        self.home[service.raw() as usize]
    }

    /// Tune the ack-deadline policy: wait `timeout` (doubling per
    /// retry) for each prepare ack, re-issue the prepare signal up to
    /// `max_retries` times, then abort the transition.
    pub fn set_ack_policy(&mut self, timeout: SimDuration, max_retries: u32) {
        self.ack_timeout = timeout;
        self.max_ack_retries = max_retries;
    }

    /// Pin a service to a mode without the switch protocol — used for
    /// background services (always serverless) and for the static
    /// baselines. Does not touch the switch history.
    pub fn force_mode(&mut self, service: ServiceId, mode: DeployMode) {
        let r = &mut self.routes[service.raw() as usize];
        r.mode = mode;
        r.transition = Transition::Steady;
    }

    /// Where a new query of `service` goes right now.
    pub fn route(&self, service: ServiceId) -> RouteTarget {
        match self.routes[service.raw() as usize].mode {
            DeployMode::Iaas => RouteTarget::Iaas,
            DeployMode::Serverless => RouteTarget::Serverless,
        }
    }

    /// Current deployment mode of a service.
    pub fn mode(&self, service: ServiceId) -> DeployMode {
        self.routes[service.raw() as usize].mode
    }

    /// When the service last changed mode.
    pub fn last_switch(&self, service: ServiceId) -> SimTime {
        self.routes[service.raw() as usize].last_switch
    }

    /// Is a switch currently in flight for this service?
    pub fn in_transition(&self, service: ServiceId) -> bool {
        !matches!(
            self.routes[service.raw() as usize].transition,
            Transition::Steady
        )
    }

    /// The switch history (for the Fig. 12 timeline).
    pub fn history(&self, service: ServiceId) -> &[(SimTime, DeployMode, f64)] {
        &self.routes[service.raw() as usize].history
    }

    /// Begin a switch to `target`. Returns the preparation actions; the
    /// runtime executes them against the platforms and later calls
    /// [`Self::on_ready`] when the ack arrives. `prewarm_count` is Eq. 7's
    /// `n` (ignored for switches toward IaaS). With prewarming disabled
    /// (NoP) a switch to serverless commits immediately and the returned
    /// actions already include the IaaS release.
    ///
    /// Emits a `Requested` switch-protocol stage to `sink` (for the NoP
    /// immediate flip, also `Flip` and `ReleaseIssued` at the same
    /// instant — the protocol collapses to one step).
    pub fn begin_switch<S: TelemetrySink + ?Sized>(
        &mut self,
        service: ServiceId,
        target: DeployMode,
        prewarm_count: u32,
        load: f64,
        now: SimTime,
        sink: &mut S,
    ) -> Vec<EngineAction> {
        let home = self.home[service.raw() as usize];
        let r = &mut self.routes[service.raw() as usize];
        if r.mode == target || !matches!(r.transition, Transition::Steady) {
            return Vec::new();
        }
        let from = r.mode;
        match target {
            DeployMode::Serverless => {
                if self.prewarm_enabled {
                    r.transition = Transition::Preparing {
                        target,
                        prewarm: prewarm_count,
                        load,
                        requested_at: now,
                        retries: 0,
                    };
                    emit_phase(
                        sink,
                        now,
                        service,
                        from,
                        target,
                        SwitchPhase::Requested,
                        prewarm_count,
                        load,
                    );
                    vec![EngineAction::Prepare {
                        service,
                        target: TargetId::serverless(home),
                        count: prewarm_count,
                    }]
                } else {
                    // NoP: flip immediately; queries cold start.
                    r.mode = DeployMode::Serverless;
                    r.last_switch = now;
                    r.history.push((now, DeployMode::Serverless, load));
                    for phase in [
                        SwitchPhase::Requested,
                        SwitchPhase::Flip,
                        SwitchPhase::ReleaseIssued,
                    ] {
                        emit_phase(sink, now, service, from, target, phase, 0, load);
                    }
                    vec![EngineAction::Release {
                        service,
                        target: TargetId::iaas(home),
                    }]
                }
            }
            DeployMode::Iaas => {
                r.transition = Transition::Preparing {
                    target,
                    prewarm: 0,
                    load,
                    requested_at: now,
                    retries: 0,
                };
                emit_phase(
                    sink,
                    now,
                    service,
                    from,
                    target,
                    SwitchPhase::Requested,
                    0,
                    load,
                );
                vec![EngineAction::Prepare {
                    service,
                    target: TargetId::iaas(home),
                    count: 0,
                }]
            }
        }
    }

    /// The target side acked readiness (PrewarmReady or VmGroupReady):
    /// flip the router and release the old side. `load` is recorded in
    /// the switch history. Stale acks (no transition pending, or for the
    /// wrong side) are ignored — e.g. a VmGroupReady from an activation
    /// that a faster opposite decision already cancelled.
    ///
    /// Emits `Ack`, `Flip` and `ReleaseIssued` stages (all at `now`: the
    /// router flips as soon as the ack lands, and the old side's release
    /// is issued in the same step).
    pub fn on_ready<S: TelemetrySink + ?Sized>(
        &mut self,
        service: ServiceId,
        side: DeployMode,
        load: f64,
        now: SimTime,
        sink: &mut S,
    ) -> Vec<EngineAction> {
        let home = self.home[service.raw() as usize];
        let r = &mut self.routes[service.raw() as usize];
        let Transition::Preparing { target, .. } = r.transition else {
            return Vec::new();
        };
        if target != side {
            return Vec::new();
        }
        let from = r.mode;
        r.mode = target;
        r.transition = Transition::Steady;
        r.last_switch = now;
        r.history.push((now, target, load));
        for phase in [
            SwitchPhase::Ack,
            SwitchPhase::Flip,
            SwitchPhase::ReleaseIssued,
        ] {
            emit_phase(sink, now, service, from, target, phase, 0, load);
        }
        match target {
            DeployMode::Serverless => vec![EngineAction::Release {
                service,
                target: TargetId::iaas(home),
            }],
            DeployMode::Iaas => vec![EngineAction::Release {
                service,
                target: TargetId::serverless(home),
            }],
        }
    }

    /// Abort an in-flight transition (e.g. the controller reversed its
    /// decision before the ack). The prepared resources are released.
    /// Emits an `Aborted` stage closing the open switch span.
    pub fn abort_transition<S: TelemetrySink + ?Sized>(
        &mut self,
        service: ServiceId,
        now: SimTime,
        sink: &mut S,
    ) -> Vec<EngineAction> {
        let home = self.home[service.raw() as usize];
        let r = &mut self.routes[service.raw() as usize];
        let Transition::Preparing {
            target,
            prewarm,
            load,
            ..
        } = r.transition
        else {
            return Vec::new();
        };
        r.transition = Transition::Steady;
        emit_phase(
            sink,
            now,
            service,
            r.mode,
            target,
            SwitchPhase::Aborted,
            prewarm,
            load,
        );
        match target {
            DeployMode::Serverless => vec![EngineAction::Release {
                service,
                target: TargetId::serverless(home),
            }],
            DeployMode::Iaas => vec![EngineAction::Release {
                service,
                target: TargetId::iaas(home),
            }],
        }
    }

    /// Enforce the ack deadline for a service's in-flight transition.
    ///
    /// Call periodically (the runtime does so on every controller
    /// tick). While the ack is within its deadline — `ack_timeout`
    /// doubled per retry already taken — this returns `None` and
    /// changes nothing, so fault-free runs are byte-identical with or
    /// without the polling. Once overdue, the prepare signal is
    /// re-issued up to `max_ack_retries` times; after that the
    /// transition aborts: the prepared side is released, the router
    /// stays on the old (still serving) platform, and the open switch
    /// span closes as `Aborted`.
    pub fn poll_deadline<S: TelemetrySink + ?Sized>(
        &mut self,
        service: ServiceId,
        now: SimTime,
        sink: &mut S,
    ) -> Option<DeadlineAction> {
        let home = self.home[service.raw() as usize];
        let r = &mut self.routes[service.raw() as usize];
        let Transition::Preparing {
            target,
            prewarm,
            load,
            requested_at,
            retries,
        } = r.transition
        else {
            return None;
        };
        let deadline = requested_at + self.ack_timeout.mul_f64((1u64 << retries.min(32)) as f64);
        if now < deadline {
            return None;
        }
        if retries < self.max_ack_retries {
            r.transition = Transition::Preparing {
                target,
                prewarm,
                load,
                requested_at: now,
                retries: retries + 1,
            };
            let actions = vec![EngineAction::Prepare {
                service,
                target: TargetId {
                    node: home,
                    mode: target.into(),
                },
                count: prewarm,
            }];
            Some(DeadlineAction::Retried {
                actions,
                attempt: retries + 1,
                prewarm,
            })
        } else {
            let actions = self.abort_transition(service, now, sink);
            Some(DeadlineAction::Aborted {
                actions,
                prewarm,
                requested_at,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_telemetry::{MemorySink, Mode, NoopSink};

    const S: ServiceId = ServiceId(0);
    /// Node-0 targets: what the legacy single-node protocol names.
    const SLS: TargetId = TargetId {
        node: NodeId::ZERO,
        mode: TargetMode::Serverless,
    };
    const VMS: TargetId = TargetId {
        node: NodeId::ZERO,
        mode: TargetMode::Iaas,
    };

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn initial_mode_routes_accordingly() {
        let e = HybridEngine::new(2, DeployMode::Iaas, true);
        assert_eq!(e.route(S), RouteTarget::Iaas);
        let e = HybridEngine::new(1, DeployMode::Serverless, true);
        assert_eq!(e.route(S), RouteTarget::Serverless);
    }

    #[test]
    fn switch_to_serverless_prewarms_then_flips() {
        let mut sink = NoopSink;
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        let actions = e.begin_switch(S, DeployMode::Serverless, 5, 8.0, t(10), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Prepare {
                service: S,
                target: SLS,
                count: 5
            }]
        );
        // Router still points at IaaS until the ack (§V-B: "the
        // transformation only occurs after acknowledgement received").
        assert_eq!(e.route(S), RouteTarget::Iaas);
        assert!(e.in_transition(S));
        let actions = e.on_ready(S, DeployMode::Serverless, 8.0, t(12), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Release {
                service: S,
                target: VMS
            }]
        );
        assert_eq!(e.route(S), RouteTarget::Serverless);
        assert!(!e.in_transition(S));
        assert_eq!(e.last_switch(S), t(12));
        assert_eq!(e.history(S), &[(t(12), DeployMode::Serverless, 8.0)]);
    }

    #[test]
    fn switch_to_iaas_boots_then_flips() {
        let mut sink = NoopSink;
        let mut e = HybridEngine::new(1, DeployMode::Serverless, true);
        let actions = e.begin_switch(S, DeployMode::Iaas, 0, 80.0, t(20), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Prepare {
                service: S,
                target: VMS,
                count: 0
            }]
        );
        assert_eq!(e.route(S), RouteTarget::Serverless);
        let actions = e.on_ready(S, DeployMode::Iaas, 80.0, t(31), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Release {
                service: S,
                target: SLS
            }]
        );
        assert_eq!(e.route(S), RouteTarget::Iaas);
    }

    #[test]
    fn nop_variant_flips_immediately_without_prewarm() {
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, false);
        let actions = e.begin_switch(S, DeployMode::Serverless, 5, 3.0, t(10), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Release {
                service: S,
                target: VMS
            }]
        );
        assert_eq!(e.route(S), RouteTarget::Serverless, "NoP routes directly");
        assert!(!e.in_transition(S));
        // Toward IaaS, NoP still waits for VMs (nothing cold-start-like
        // about that direction; the paper's ablation only drops container
        // prewarming).
        let actions = e.begin_switch(S, DeployMode::Iaas, 0, 90.0, t(30), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Prepare {
                service: S,
                target: VMS,
                count: 0
            }]
        );
        assert_eq!(e.route(S), RouteTarget::Serverless);
        // The NoP flip's telemetry span collapses to a single instant:
        // requested, flipped and released at t=10, with no ack stage.
        let spans = sink.into_trace().switch_spans();
        assert_eq!(spans[0].requested, t(10));
        assert_eq!(spans[0].flip, Some(t(10)));
        assert_eq!(spans[0].release_issued, Some(t(10)));
        assert_eq!(spans[0].ack, None);
        assert!(spans[0].completed());
    }

    #[test]
    fn duplicate_switch_requests_are_ignored() {
        let mut sink = NoopSink;
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        assert!(!e
            .begin_switch(S, DeployMode::Serverless, 3, 1.0, t(1), &mut sink)
            .is_empty());
        // Second request while preparing: no-op.
        assert!(e
            .begin_switch(S, DeployMode::Serverless, 3, 1.0, t(2), &mut sink)
            .is_empty());
        // Request for the current mode: no-op.
        let mut e2 = HybridEngine::new(1, DeployMode::Iaas, true);
        assert!(e2
            .begin_switch(S, DeployMode::Iaas, 3, 1.0, t(1), &mut sink)
            .is_empty());
    }

    #[test]
    fn second_switch_while_preparing_leaves_one_span() {
        // A duplicate request during Preparing must not open a second
        // telemetry span: the trace shows exactly one Requested stage.
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 3, 1.0, t(1), &mut sink);
        e.begin_switch(S, DeployMode::Serverless, 3, 1.5, t(2), &mut sink);
        // An opposite-direction request while preparing is also ignored
        // by the engine (the controller aborts first if it reverses).
        e.begin_switch(S, DeployMode::Iaas, 0, 50.0, t(3), &mut sink);
        e.on_ready(S, DeployMode::Serverless, 1.0, t(4), &mut sink);
        let trace = sink.into_trace();
        let spans = trace.switch_spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].requested, t(1));
        assert_eq!(spans[0].ack, Some(t(4)));
        assert!(spans[0].completed());
    }

    #[test]
    fn stale_or_mismatched_acks_ignored() {
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        // Ack with no transition pending.
        assert!(e
            .on_ready(S, DeployMode::Serverless, 0.0, t(1), &mut sink)
            .is_empty());
        // Ack for the wrong side.
        e.begin_switch(S, DeployMode::Serverless, 3, 1.0, t(2), &mut sink);
        assert!(e
            .on_ready(S, DeployMode::Iaas, 0.0, t(3), &mut sink)
            .is_empty());
        assert!(e.in_transition(S));
        // The right ack still lands.
        assert!(!e
            .on_ready(S, DeployMode::Serverless, 1.0, t(4), &mut sink)
            .is_empty());
        // Ignored acks leave no trace stages: the span acks once, at the
        // genuine ready time.
        let trace = sink.into_trace();
        assert_eq!(trace.switch_events().count(), 4); // Requested + Ack/Flip/Release
        let spans = trace.switch_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ack, Some(t(4)));
    }

    #[test]
    fn abort_releases_prepared_side() {
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 3, 1.0, t(1), &mut sink);
        let actions = e.abort_transition(S, t(2), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Release {
                service: S,
                target: SLS
            }]
        );
        assert!(!e.in_transition(S));
        assert_eq!(e.route(S), RouteTarget::Iaas, "mode unchanged after abort");
        // Abort with nothing pending: no-op.
        assert!(e.abort_transition(S, t(3), &mut sink).is_empty());
        // The span closes as aborted, never flipped.
        let spans = sink.into_trace().switch_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].aborted, Some(t(2)));
        assert!(!spans[0].completed());
        assert_eq!(spans[0].flip, None);
    }

    #[test]
    fn overdue_ack_retries_with_backoff_then_aborts() {
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.set_ack_policy(SimDuration::from_secs(10), 2);
        e.begin_switch(S, DeployMode::Serverless, 4, 6.0, t(0), &mut sink);
        // Within the first deadline: nothing happens.
        assert_eq!(e.poll_deadline(S, t(9), &mut sink), None);
        // First deadline (10 s): retry 1 re-issues the prewarm.
        match e.poll_deadline(S, t(10), &mut sink) {
            Some(DeadlineAction::Retried {
                actions,
                attempt,
                prewarm,
            }) => {
                assert_eq!(
                    actions,
                    vec![EngineAction::Prepare {
                        service: S,
                        target: SLS,
                        count: 4
                    }]
                );
                assert_eq!(attempt, 1);
                assert_eq!(prewarm, 4);
            }
            other => panic!("expected first retry, got {other:?}"),
        }
        // Backoff: the second deadline is 20 s after the retry.
        assert_eq!(e.poll_deadline(S, t(29), &mut sink), None);
        assert!(matches!(
            e.poll_deadline(S, t(30), &mut sink),
            Some(DeadlineAction::Retried { attempt: 2, .. })
        ));
        // Third deadline (40 s later): retries exhausted — abort.
        assert_eq!(e.poll_deadline(S, t(69), &mut sink), None);
        match e.poll_deadline(S, t(70), &mut sink) {
            Some(DeadlineAction::Aborted {
                actions, prewarm, ..
            }) => {
                assert_eq!(
                    actions,
                    vec![EngineAction::Release {
                        service: S,
                        target: SLS
                    }]
                );
                assert_eq!(prewarm, 4);
            }
            other => panic!("expected abort, got {other:?}"),
        }
        // The satellite invariant: the router never left the old
        // platform — queries kept flowing to IaaS the whole time.
        assert_eq!(e.route(S), RouteTarget::Iaas);
        assert!(!e.in_transition(S));
        assert_eq!(e.history(S), &[], "no mode change was recorded");
        let spans = sink.into_trace().switch_spans();
        assert_eq!(spans.len(), 1, "retries do not open new spans");
        assert_eq!(spans[0].aborted, Some(t(70)));
        assert!(!spans[0].completed());
    }

    #[test]
    fn late_ack_after_a_retry_still_completes_the_switch() {
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.set_ack_policy(SimDuration::from_secs(10), 2);
        e.begin_switch(S, DeployMode::Serverless, 3, 2.0, t(0), &mut sink);
        assert!(matches!(
            e.poll_deadline(S, t(11), &mut sink),
            Some(DeadlineAction::Retried { attempt: 1, .. })
        ));
        // The retry's ack lands: normal flip, no abort.
        let actions = e.on_ready(S, DeployMode::Serverless, 2.0, t(14), &mut sink);
        assert_eq!(
            actions,
            vec![EngineAction::Release {
                service: S,
                target: VMS
            }]
        );
        assert_eq!(e.route(S), RouteTarget::Serverless);
        assert_eq!(e.poll_deadline(S, t(1000), &mut sink), None, "steady");
        let spans = sink.into_trace().switch_spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].completed());
    }

    #[test]
    fn deadline_never_fires_for_prompt_acks() {
        // The default policy is far beyond real ack latencies; polling
        // is a no-op for a healthy switch at every plausible tick time.
        let mut sink = NoopSink;
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 2, 1.0, t(100), &mut sink);
        for dt in [1, 5, 15, 29] {
            assert_eq!(e.poll_deadline(S, t(100 + dt), &mut sink), None);
        }
        e.on_ready(S, DeployMode::Serverless, 1.0, t(105), &mut sink);
        assert_eq!(e.route(S), RouteTarget::Serverless);
    }

    #[test]
    fn prewarm_ack_ordering_is_visible_in_span() {
        // Requested strictly precedes ack/flip; prewarm count recorded.
        let mut sink = MemorySink::new();
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 7, 12.0, t(10), &mut sink);
        e.on_ready(S, DeployMode::Serverless, 12.0, t(13), &mut sink);
        let spans = sink.into_trace().switch_spans();
        let s = &spans[0];
        assert_eq!(s.prewarm_count, 7);
        assert_eq!(s.from, Mode::Iaas);
        assert_eq!(s.to, Mode::Serverless);
        assert!(s.requested < s.ack.unwrap());
        assert_eq!(s.ack, s.flip, "router flips on the ack");
        assert_eq!(s.prewarm_duration().unwrap(), t(13) - t(10));
    }

    #[test]
    fn history_records_both_directions() {
        let mut sink = NoopSink;
        let mut e = HybridEngine::new(1, DeployMode::Iaas, true);
        e.begin_switch(S, DeployMode::Serverless, 2, 4.0, t(10), &mut sink);
        e.on_ready(S, DeployMode::Serverless, 4.0, t(12), &mut sink);
        e.begin_switch(S, DeployMode::Iaas, 0, 90.0, t(50), &mut sink);
        e.on_ready(S, DeployMode::Iaas, 90.0, t(61), &mut sink);
        let h = e.history(S);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, DeployMode::Serverless);
        assert_eq!(h[1].1, DeployMode::Iaas);
        // The loads at which the two switches happened are not equal —
        // the Fig. 12 observation.
        assert_ne!(h[0].2, h[1].2);
    }
}
