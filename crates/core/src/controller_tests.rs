use super::*;
use amoeba_workload::benchmarks;

fn surfaces_for(spec: &MicroserviceSpec) -> [LatencySurface; 3] {
    let phases = [
        spec.demand.cpu_s,
        spec.demand.io_mb / 500.0,
        spec.demand.net_mb / 250.0,
    ];
    let overhead = 0.02;
    let loads = vec![0.5, 5.0, 20.0, 60.0, 120.0];
    let pressures = vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
    let kappas = [1.2, 1.8, 1.5];
    [0, 1, 2].map(|r| {
        LatencySurface::analytic(
            phases,
            overhead,
            r,
            kappas[r],
            120,
            spec.qos_percentile,
            loads.clone(),
            pressures.clone(),
        )
    })
}

fn model_for(spec: MicroserviceSpec) -> ServiceModel {
    let surfaces = surfaces_for(&spec);
    let phases_sum = spec.demand.cpu_s + spec.demand.io_mb / 500.0 + spec.demand.net_mb / 250.0;
    let l0 = phases_sum + 0.02;
    let base = phases_sum.max(1e-3);
    // util per qps on a 40-core / 3000 MBps / 3125 MBps node.
    let util_per_qps = [
        l0 * (spec.demand.cpu_s / base) / 40.0,
        l0 * (spec.demand.io_mb / base) / 3000.0,
        l0 * (spec.demand.net_mb / base) / 3125.0,
    ];
    ServiceModel {
        spec,
        l0_s: l0,
        surfaces,
        util_per_qps,
        n_max: 12,
    }
}

fn controller_with(specs: Vec<MicroserviceSpec>) -> DeploymentController {
    let mut c = DeploymentController::new(ControllerConfig::default());
    for s in specs {
        c.register(model_for(s));
    }
    c
}

const UNIFORM: [f64; 3] = [1.0, 1.0, 1.0];
const CALIBRATED: [f64; 3] = [0.34, 0.33, 0.33];

#[test]
fn eq7_prewarm_count() {
    // (n-1)/QoS < V ≤ n/QoS.
    assert_eq!(prewarm_count(10.0, 0.2), 2);
    assert_eq!(prewarm_count(10.0, 0.5), 5);
    assert_eq!(prewarm_count(9.9, 0.5), 5);
    assert_eq!(prewarm_count(10.1, 0.5), 6);
    // Tiny but positive load still warms one container.
    assert_eq!(prewarm_count(0.1, 0.5), 1);
}

#[test]
fn eq7_degenerate_inputs_warm_nothing() {
    assert_eq!(prewarm_count(0.0, 0.5), 0);
    assert_eq!(prewarm_count(-3.0, 0.5), 0);
    assert_eq!(prewarm_count(f64::NAN, 0.5), 0);
    assert_eq!(prewarm_count(f64::INFINITY, 0.5), 0);
    assert_eq!(prewarm_count(10.0, 0.0), 0);
    assert_eq!(prewarm_count(10.0, -1.0), 0);
    assert_eq!(prewarm_count(10.0, f64::NAN), 0);
    assert_eq!(prewarm_count(10.0, f64::INFINITY), 0);
    // A huge-but-finite product saturates instead of wrapping.
    assert_eq!(prewarm_count(1e30, 1e30), u32::MAX);
}

#[test]
fn degenerate_load_window_reads_as_zero_load() {
    let mut c = DeploymentController::new(ControllerConfig {
        load_window: SimDuration::ZERO,
        ..ControllerConfig::default()
    });
    c.register(model_for(benchmarks::float()));
    c.record_arrival(0, SimTime::from_secs(1));
    let load = c.estimated_load(0, SimTime::from_secs(1));
    assert_eq!(load, 0.0, "zero window must not divide into NaN/inf");
}

#[test]
fn load_estimation_over_window() {
    let mut c = controller_with(vec![benchmarks::float()]);
    // 20 arrivals within the 4s window.
    for i in 0..20 {
        c.record_arrival(0, SimTime::from_millis(i * 100));
    }
    let load = c.estimated_load(0, SimTime::from_secs(2));
    assert!((load - 5.0).abs() < 0.01, "load {load}");
    // After the window slides past, old arrivals drop out.
    let load = c.estimated_load(0, SimTime::from_secs(60));
    assert_eq!(load, 0.0);
}

#[test]
fn mu_degrades_with_pressure() {
    let c = controller_with(vec![benchmarks::float()]);
    let mu_idle = c.predicted_mu(0, [0.0; 3], CALIBRATED);
    let mu_pressed = c.predicted_mu(0, [0.8, 0.0, 0.0], CALIBRATED);
    assert!(mu_pressed < mu_idle, "{mu_pressed} !< {mu_idle}");
}

#[test]
fn mu_sensitive_only_to_relevant_resource() {
    // float is CPU-bound: IO pressure barely moves its μ.
    let c = controller_with(vec![benchmarks::float()]);
    let mu_idle = c.predicted_mu(0, [0.0; 3], CALIBRATED);
    let mu_io = c.predicted_mu(0, [0.0, 0.9, 0.0], CALIBRATED);
    assert!((mu_idle - mu_io) / mu_idle < 0.05, "{mu_idle} vs {mu_io}");
    // dd is IO-bound: IO pressure hits hard.
    let c = controller_with(vec![benchmarks::dd()]);
    let mu_idle = c.predicted_mu(0, [0.0; 3], CALIBRATED);
    let mu_io = c.predicted_mu(0, [0.0, 0.9, 0.0], CALIBRATED);
    assert!(mu_io < mu_idle * 0.5, "{mu_idle} vs {mu_io}");
}

#[test]
fn nom_weights_are_pessimistic() {
    // cloud_stor touches all three resources, so the accumulation
    // across resources actually bites.
    let c = controller_with(vec![benchmarks::cloud_stor()]);
    let mu_amoeba = c.predicted_mu(0, [0.6, 0.6, 0.6], CALIBRATED);
    let mu_nom = c.predicted_mu(0, [0.6, 0.6, 0.6], UNIFORM);
    // Uniform (1,1,1) accumulates all three degradations -> smaller μ.
    assert!(mu_nom < mu_amoeba * 0.75, "{mu_nom} vs {mu_amoeba}");
    // With no contention at all the two readings coincide: the
    // pessimism is about degradations, not the base latency.
    let idle_nom = c.predicted_mu(0, [0.0; 3], UNIFORM);
    let idle_cal = c.predicted_mu(0, [0.0; 3], CALIBRATED);
    assert!((idle_nom - idle_cal).abs() / idle_cal < 1e-6);
}

#[test]
fn lambda_max_shrinks_under_contention() {
    let c = controller_with(vec![benchmarks::float()]);
    let lam_idle = c.lambda_max(0, [0.0; 3], CALIBRATED);
    let lam_pressed = c.lambda_max(0, [0.8, 0.2, 0.0], CALIBRATED);
    assert!(lam_idle > 0.0);
    assert!(
        lam_pressed < lam_idle,
        "contention must lower the switch point: {lam_pressed} vs {lam_idle}"
    );
}

#[test]
fn decide_switches_down_at_low_load() {
    let mut c = controller_with(vec![benchmarks::float()]);
    let now = SimTime::from_secs(100);
    // 2 qps — far below the idle-platform admissible load.
    for i in 0..8 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 450));
    }
    let d = c.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::SwitchToServerless);
}

#[test]
fn decide_stays_on_iaas_at_high_load() {
    let mut c = controller_with(vec![benchmarks::float()]);
    let now = SimTime::from_secs(100);
    // 120 qps = peak.
    for i in 0..480 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 8));
    }
    let d = c.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::Stay);
}

#[test]
fn decide_switches_up_when_load_rises_on_serverless() {
    let mut c = controller_with(vec![benchmarks::float()]);
    let now = SimTime::from_secs(100);
    for i in 0..480 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 8));
    }
    let d = c.decide(
        0,
        DeployMode::Serverless,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::SwitchToIaas);
}

#[test]
fn contention_moves_the_switch_point() {
    // The paper's core claim: there is no fixed switch load — under
    // heavy IO pressure, an IO-bound service must stay on IaaS at a
    // load it could happily serve on an idle pool.
    let mut c = controller_with(vec![benchmarks::dd()]);
    let now = SimTime::from_secs(100);
    // 6 qps.
    for i in 0..24 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 160));
    }
    let idle = c.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(idle, Decision::SwitchToServerless);
    let io_storm = c.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0, 0.93, 0.0],
        CALIBRATED,
        &[],
    );
    assert_eq!(
        io_storm,
        Decision::Stay,
        "IO-bound service must not move into an IO storm"
    );
    // A CPU-bound service at comparable relative load is unaffected
    // by the same IO storm (paper: "a CPU-bound microservice can be
    // safely switched").
    let mut c2 = controller_with(vec![benchmarks::float()]);
    for i in 0..24 {
        c2.record_arrival(0, now - SimDuration::from_millis(i * 160));
    }
    let d = c2.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0, 0.93, 0.0],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::SwitchToServerless);
}

#[test]
fn dwell_time_prevents_flapping() {
    let mut c = controller_with(vec![benchmarks::float()]);
    let now = SimTime::from_secs(10);
    for i in 0..8 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 450));
    }
    // Switched 2s ago, dwell is 8s.
    let d = c.decide(
        0,
        DeployMode::Iaas,
        now,
        now - SimDuration::from_secs(2),
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::Stay);
}

#[test]
fn impact_check_vetoes_harmful_switch() {
    // dd (heavy IO per query) moving in at high load must not be
    // allowed to wreck a co-located IO-sensitive service already
    // near its QoS.
    let mut c = controller_with(vec![benchmarks::dd(), benchmarks::cloud_stor()]);
    let ok = c.impact_ok(0, 40.0, [0.0, 0.55, 0.3], &[(1, 30.0)]);
    assert!(
        !ok,
        "switching 40qps of dd into an IO-pressed pool must be vetoed"
    );
    let ok_low = c.impact_ok(0, 1.0, [0.0, 0.1, 0.0], &[(1, 5.0)]);
    assert!(ok_low, "a tiny load on a quiet pool is harmless");
    let _ = &mut c;
}

#[test]
fn gain_calibration_converges() {
    let mut c = controller_with(vec![benchmarks::float()]);
    let pressures = [0.2, 0.0, 0.0];
    let raw_pred = {
        // Raw (gain-1) prediction.
        c.predicted_service_time(0, pressures, CALIBRATED)
    };
    // Observed service times are consistently 1.5x the raw model.
    for _ in 0..200 {
        c.observe_service_time(0, raw_pred * 1.5, pressures, CALIBRATED);
    }
    assert!((c.gain(0) - 1.5).abs() < 0.05, "gain {}", c.gain(0));
    let pred = c.predicted_service_time(0, pressures, CALIBRATED);
    assert!((pred - raw_pred * 1.5).abs() / pred < 0.05);
}

#[test]
fn gain_is_clamped() {
    let mut c = controller_with(vec![benchmarks::float()]);
    for _ in 0..500 {
        c.observe_service_time(0, 1e6, [0.0; 3], CALIBRATED);
    }
    assert!(c.gain(0) <= 4.0);
    for _ in 0..500 {
        c.observe_service_time(0, 1e-9, [0.0; 3], CALIBRATED);
    }
    assert!(c.gain(0) >= 0.25);
}

#[test]
fn own_pressure_subtraction() {
    let c = controller_with(vec![benchmarks::float()]);
    let p = c.adjust_pressures(0, [0.5, 0.1, 0.1], 40.0, OwnPressure::Removed);
    assert!(p[0] < 0.5, "own cpu contribution removed: {p:?}");
    assert!(p.iter().all(|&x| x >= 0.0));
    // Subtracting more than present clamps at zero.
    let p = c.adjust_pressures(0, [0.01, 0.0, 0.0], 500.0, OwnPressure::Removed);
    assert_eq!(p[0], 0.0);
}

#[test]
fn with_and_without_own_are_inverse_below_clamp() {
    let c = controller_with(vec![benchmarks::dd()]);
    let env = [0.1, 0.2, 0.05];
    let load = 8.0;
    let with = c.adjust_pressures(0, env, load, OwnPressure::Added);
    let back = c.adjust_pressures(0, with, load, OwnPressure::Removed);
    for r in 0..3 {
        assert!((back[r] - env[r]).abs() < 1e-9, "{back:?} vs {env:?}");
    }
}

#[test]
fn decide_explained_matches_decide_and_carries_reasons() {
    let mut c = controller_with(vec![benchmarks::float()]);
    let now = SimTime::from_secs(100);
    for i in 0..8 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 450));
    }
    // Low load on IaaS: switch down, reason LoadBelowDownMargin.
    let (d, tr) = c.decide_explained(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::SwitchToServerless);
    assert_eq!(tr.reason, TickReason::LoadBelowDownMargin);
    assert!(tr.load_qps > 0.0 && tr.load_qps < tr.lambda_max);
    assert!(tr.mu > 0.0);
    // Dwell pending: Stay regardless of load, with the dwell reason —
    // and the trace still carries the quantities for the record.
    let (d, tr) = c.decide_explained(
        0,
        DeployMode::Iaas,
        now,
        now - SimDuration::from_secs(2),
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::Stay);
    assert_eq!(tr.reason, TickReason::DwellPending);
    assert!(tr.lambda_max > 0.0);
    // decide() is the explained verdict with the trace discarded.
    let d2 = c.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d2, Decision::SwitchToServerless);
}

/// Test stub: a forecaster pinned to one value regardless of input.
struct FixedForecast(f64);

impl Forecaster for FixedForecast {
    fn observe(&mut self, _t: SimTime, _lambda_qps: f64) {}
    fn predict(&self, _horizon: SimDuration) -> amoeba_forecast::ForecastInterval {
        amoeba_forecast::ForecastInterval::point(self.0)
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
}

fn proactive_cfg() -> ControllerConfig {
    ControllerConfig {
        proactive: Some(ProactiveConfig {
            up_horizon: SimDuration::from_secs(6),
            down_horizon: SimDuration::from_secs(3),
        }),
        ..ControllerConfig::default()
    }
}

#[test]
fn proactive_forecast_advances_the_switch_up() {
    // Serverless-resident at a tiny current load, but the forecast
    // says the rush arrives within the VM boot time: Amoeba-Pro
    // boots now, reactive Amoeba waits until the load is already
    // there.
    let mut c = DeploymentController::new(proactive_cfg());
    c.register(model_for(benchmarks::float()));
    let now = SimTime::from_secs(100);
    for i in 0..8 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 450));
    }
    let reactive = c.decide(
        0,
        DeployMode::Serverless,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(reactive, Decision::Stay, "no forecaster: reactive rule");
    c.attach_forecaster(0, Box::new(FixedForecast(200.0)));
    let (d, tr) = c.decide_explained(
        0,
        DeployMode::Serverless,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::SwitchToIaas);
    assert_eq!(tr.eval_qps, 200.0);
    assert!(tr.load_qps < 3.0, "current load still low: {}", tr.load_qps);
    let fc = tr.forecast.expect("forecast snapshot recorded");
    assert_eq!(fc.horizon, SimDuration::from_secs(6));
    assert_eq!(fc.hi, 200.0);
}

#[test]
fn proactive_forecast_holds_a_doomed_switch_down() {
    // IaaS-resident, load momentarily low enough to switch down, but
    // the forecast upper bound at the prewarm horizon is above the
    // admission margin: stay — the pool would have to hand the
    // service straight back.
    let mut c = DeploymentController::new(proactive_cfg());
    c.register(model_for(benchmarks::float()));
    let now = SimTime::from_secs(100);
    for i in 0..8 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 450));
    }
    let reactive = c.decide(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(reactive, Decision::SwitchToServerless);
    c.attach_forecaster(0, Box::new(FixedForecast(200.0)));
    let (d, tr) = c.decide_explained(
        0,
        DeployMode::Iaas,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    assert_eq!(d, Decision::Stay);
    assert_eq!(tr.reason, TickReason::LoadAboveDownMargin);
    assert_eq!(
        tr.forecast.expect("snapshot").horizon,
        SimDuration::from_secs(3),
        "IaaS-resident decisions look ahead by the down horizon"
    );
}

#[test]
fn observe_load_feeds_the_forecaster() {
    let mut c = DeploymentController::new(proactive_cfg());
    c.register(model_for(benchmarks::float()));
    c.attach_forecaster(0, Box::new(amoeba_forecast::Naive::new()));
    let now = SimTime::from_secs(100);
    for i in 0..8 {
        c.record_arrival(0, now - SimDuration::from_millis(i * 450));
    }
    c.observe_load(0, now);
    let (_, tr) = c.decide_explained(
        0,
        DeployMode::Serverless,
        now,
        SimTime::ZERO,
        [0.0; 3],
        CALIBRATED,
        &[],
    );
    let fc = tr.forecast.expect("snapshot");
    assert!(
        (fc.mean - tr.load_qps).abs() < 1e-9,
        "naive forecast echoes the observed load: {} vs {}",
        fc.mean,
        tr.load_qps
    );
    // Unchanged decision semantics: eval is the max of both.
    assert!((tr.eval_qps - tr.load_qps.max(fc.hi)).abs() < 1e-12);
}

#[test]
fn admissible_load_is_the_self_consistent_fixed_point() {
    let c = controller_with(vec![benchmarks::dd()]);
    let env = [0.05, 0.15, 0.05];
    let lam = c.admissible_load(0, env, CALIBRATED);
    assert!(lam > 0.0, "dd must be admissible at mild pressure");
    // Just inside: the predicate holds at the pressure the load
    // itself creates.
    let p_in = c.adjust_pressures(0, env, lam * 0.98, OwnPressure::Added);
    assert!(
        lam * 0.98 <= c.lambda_max(0, p_in, CALIBRATED),
        "fixed point not satisfied from below"
    );
    // Just outside: it fails.
    let p_out = c.adjust_pressures(0, env, lam * 1.05, OwnPressure::Added);
    assert!(
        lam * 1.05 > c.lambda_max(0, p_out, CALIBRATED),
        "fixed point not binding from above"
    );
}

#[test]
fn admissible_load_shrinks_with_environment_pressure() {
    let c = controller_with(vec![benchmarks::dd()]);
    let mut prev = f64::MAX;
    for io in [0.0, 0.2, 0.4, 0.6] {
        let lam = c.admissible_load(0, [0.0, io, 0.0], CALIBRATED);
        assert!(
            lam <= prev + 1e-9,
            "not monotone at io={io}: {lam} > {prev}"
        );
        prev = lam;
    }
}

#[test]
fn admissible_load_zero_when_environment_already_violates() {
    // An IO-saturated pool cannot admit dd at any load.
    let c = controller_with(vec![benchmarks::dd()]);
    let lam = c.admissible_load(0, [0.0, 0.95, 0.0], CALIBRATED);
    assert_eq!(lam, 0.0);
}

#[test]
fn cpu_pure_service_ignores_io_environment_in_admission() {
    let c = controller_with(vec![benchmarks::float()]);
    let clean = c.admissible_load(0, [0.0; 3], CALIBRATED);
    let io_storm = c.admissible_load(0, [0.0, 0.85, 0.0], CALIBRATED);
    assert!(
        (clean - io_storm).abs() / clean < 0.05,
        "float's admission moved under IO pressure: {clean} vs {io_storm}"
    );
}
