// Indexing `0..3` over the fixed [cpu, io, net] resource axes reads
// better than zipped iterators here.
#![allow(clippy::needless_range_loop)]

//! The contention-aware deployment controller (§IV).
//!
//! Per control period and per service the controller:
//!
//! 1. estimates the service's load `V_u` (arrivals over a sliding
//!    window);
//! 2. takes the platform pressure `P = {P_cpu, P_io, P_net}` from the
//!    monitor, minus the service's own contribution when it is already
//!    running on the serverless platform;
//! 3. looks up the per-resource predicted latencies `L₁, L₂, L₃` in the
//!    profiled latency surfaces (Fig. 9) and combines them with the
//!    monitor's PCA weights into the per-container processing capacity
//!    `μ` (Eq. 6), calibrated by a feedback gain that converges `μ` to
//!    the real capacity (§VI-A);
//! 4. evaluates the discriminant `λ(μ)` (Eq. 5) on the M/M/N model with
//!    the container ceiling `n_max` (§IV-A) and compares the observed
//!    load against it, with a hysteresis band so the deployment does not
//!    flap;
//! 5. refuses a switch to serverless that would push any co-located
//!    service past its own QoS target (§III).

use amoeba_forecast::Forecaster;
use amoeba_meters::LatencySurface;
use amoeba_queueing::MmnModel;
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::TickReason;
use amoeba_workload::MicroserviceSpec;
use std::collections::VecDeque;

/// Where a service's queries are currently routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployMode {
    /// Dedicated VM group.
    Iaas,
    /// Shared serverless pool.
    Serverless,
}

impl From<DeployMode> for amoeba_telemetry::Mode {
    fn from(m: DeployMode) -> Self {
        match m {
            DeployMode::Iaas => amoeba_telemetry::Mode::Iaas,
            DeployMode::Serverless => amoeba_telemetry::Mode::Serverless,
        }
    }
}

/// The controller's verdict for one service at one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current mode.
    Stay,
    /// Begin the switch to serverless (low load, contention acceptable).
    SwitchToServerless,
    /// Begin the switch to IaaS (load too high for the shared pool).
    SwitchToIaas,
}

impl From<Decision> for amoeba_telemetry::TraceDecision {
    fn from(d: Decision) -> Self {
        match d {
            Decision::Stay => amoeba_telemetry::TraceDecision::Stay,
            Decision::SwitchToServerless => amoeba_telemetry::TraceDecision::SwitchToServerless,
            Decision::SwitchToIaas => amoeba_telemetry::TraceDecision::SwitchToIaas,
        }
    }
}

/// Whose pressure contribution [`DeploymentController::adjust_pressures`]
/// applies: project the service's own serverless footprint onto the
/// measured pressure, or strip it back out. The two operations are
/// inverses below the clamps, and pairing them through one entry point
/// keeps callers from mixing up which direction a given mode requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnPressure {
    /// Add the service's projected contribution at the given load (an
    /// IaaS-resident candidate being evaluated for admission — the pool
    /// has not felt it yet). Clamped to ≤ 0.97 per resource.
    Added,
    /// Remove the service's contribution at the given load (a
    /// pool-resident service whose own traffic must not read as
    /// co-tenant contention). Clamped to ≥ 0 per resource.
    Removed,
}

/// The forecast a proactive decision was evaluated against, for the
/// telemetry record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastSnapshot {
    /// Horizon the forecast targets (the relevant switch latency).
    pub horizon: SimDuration,
    /// Point forecast of λ at `now + horizon`, queries/second.
    pub mean: f64,
    /// Lower bound of the forecast band.
    pub lo: f64,
    /// Upper bound — what Eq. 5 was evaluated against.
    pub hi: f64,
}

/// The intermediate quantities behind one
/// [`DeploymentController::decide_explained`] verdict — everything Eq. 5
/// and Eq. 6 saw and produced, for the telemetry tick record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTrace {
    /// Estimated load `V_u`, queries/second.
    pub load_qps: f64,
    /// The load Eq. 5 was actually compared against:
    /// `max(load_qps, forecast.hi)` in proactive mode, `load_qps`
    /// otherwise.
    pub eval_qps: f64,
    /// Eq. 6 predicted per-container capacity `μ`, queries/second.
    pub mu: f64,
    /// Eq. 5 discriminant `λ(μ)`: the maximum admissible load.
    pub lambda_max: f64,
    /// The effective pressure vector the discriminant was evaluated at
    /// (own contribution projected in for an IaaS candidate).
    pub pressures: [f64; 3],
    /// Why the verdict came out the way it did.
    pub reason: TickReason,
    /// The forecast behind `eval_qps`, when the service has one.
    pub forecast: Option<ForecastSnapshot>,
}

/// Horizons for the proactive (Amoeba-Pro) decision rule: how far ahead
/// the controller looks is exactly how long the corresponding switch
/// takes to become effective — a decision made now lands then.
#[derive(Debug, Clone, Copy)]
pub struct ProactiveConfig {
    /// Lookahead for a serverless-resident service considering a switch
    /// up to IaaS (VM boot plus one control period).
    pub up_horizon: SimDuration,
    /// Lookahead for an IaaS-resident service considering a switch down
    /// to serverless (container prewarm plus one control period).
    pub down_horizon: SimDuration,
}

/// Controller tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Switch to serverless when `V_u < down_margin · λ(μ)`.
    pub down_margin: f64,
    /// Switch to IaaS when `V_u > up_margin · λ(μ)`.
    pub up_margin: f64,
    /// Minimum time between switches of one service (anti-flapping).
    pub min_dwell: SimDuration,
    /// Sliding window for load estimation.
    pub load_window: SimDuration,
    /// EWMA factor of the μ-calibration gain.
    pub gain_alpha: f64,
    /// Proactive lookahead horizons. `None` (the default) keeps the
    /// paper's reactive rule; `Some` makes every decision for a service
    /// with an attached forecaster evaluate Eq. 5 against the upper
    /// forecast bound at the switch latency.
    pub proactive: Option<ProactiveConfig>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            down_margin: 0.65,
            up_margin: 0.85,
            min_dwell: SimDuration::from_secs(8),
            load_window: SimDuration::from_secs(4),
            gain_alpha: 0.15,
            proactive: None,
        }
    }
}

/// Everything the controller knows about one service.
pub struct ServiceModel {
    /// The service's spec (QoS target, percentile, peak load).
    pub spec: MicroserviceSpec,
    /// Solo end-to-end latency `L₀` on the serverless platform, seconds
    /// (includes the per-query overhead `α`).
    pub l0_s: f64,
    /// Latency surfaces per metered resource [cpu, io, net] (Fig. 9).
    pub surfaces: [LatencySurface; 3],
    /// Utilisation added to resource `r` per unit of load (qps) when this
    /// service runs serverless: `ΔU_r = V_u · l0 · rate_r / capacity_r`
    /// precomputed as per-qps values.
    pub util_per_qps: [f64; 3],
    /// Container ceiling `n_max` (§IV-A).
    pub n_max: u32,
}

struct ServiceState {
    model: ServiceModel,
    arrivals: VecDeque<SimTime>,
    gain: f64,
    forecaster: Option<Box<dyn Forecaster + Send>>,
    /// External λ-shift hint: the arrival rate this service is *about*
    /// to see, known upstream of its own measured window (a workflow
    /// stage's successors see the root's λ after the upstream
    /// latencies, so their own windows lag load changes and go stale
    /// across an upstream switch). `None` — the default, and the only
    /// state non-workflow runs ever observe — leaves decisions purely
    /// measurement-driven.
    load_hint: Option<f64>,
}

/// The deployment controller for a set of services.
pub struct DeploymentController {
    cfg: ControllerConfig,
    services: Vec<ServiceState>,
}

impl DeploymentController {
    /// An empty controller.
    pub fn new(cfg: ControllerConfig) -> Self {
        DeploymentController {
            cfg,
            services: Vec::new(),
        }
    }

    /// Register a service model; indices align with registration order
    /// (and thus with the platforms' `ServiceId`s).
    pub fn register(&mut self, model: ServiceModel) -> usize {
        self.services.push(ServiceState {
            model,
            arrivals: VecDeque::new(),
            gain: 1.0,
            forecaster: None,
            load_hint: None,
        });
        self.services.len() - 1
    }

    /// Set (or clear) the λ-shift hint for a service. The next
    /// [`Self::decide`] evaluates Eq. 5 against the max of the measured
    /// load, the forecast bound and this hint — conservative toward
    /// QoS, like the proactive bound: a hint can only delay a switch
    /// down or advance a switch up.
    pub fn set_load_hint(&mut self, idx: usize, hint: Option<f64>) {
        self.services[idx].load_hint = hint.filter(|h| h.is_finite() && *h >= 0.0);
    }

    /// Attach a load forecaster to a service. Until one is attached (or
    /// when [`ControllerConfig::proactive`] is `None`) decisions stay
    /// purely reactive.
    pub fn attach_forecaster(&mut self, idx: usize, forecaster: Box<dyn Forecaster + Send>) {
        self.services[idx].forecaster = Some(forecaster);
    }

    /// Feed the current load estimate to the service's forecaster (call
    /// once per control tick, before [`Self::decide`]). A no-op without
    /// an attached forecaster, so callers need not special-case reactive
    /// variants.
    pub fn observe_load(&mut self, idx: usize, now: SimTime) {
        let load = self.estimated_load(idx, now);
        if let Some(f) = self.services[idx].forecaster.as_mut() {
            f.observe(now, load);
        }
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Record a query arrival (drives the load estimator).
    pub fn record_arrival(&mut self, idx: usize, at: SimTime) {
        let s = &mut self.services[idx];
        s.arrivals.push_back(at);
        // Prune outside the window as we go to bound memory.
        let cutoff = at
            .as_micros()
            .saturating_sub(self.cfg.load_window.as_micros());
        while let Some(front) = s.arrivals.front() {
            if front.as_micros() < cutoff {
                s.arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Estimated load `V_u` in queries/second at `now`. A degenerate
    /// (zero or non-finite) load window reads as zero load rather than
    /// dividing into NaN/infinity.
    pub fn estimated_load(&self, idx: usize, now: SimTime) -> f64 {
        let s = &self.services[idx];
        let window_s = self.cfg.load_window.as_secs_f64();
        if !(window_s.is_finite() && window_s > 0.0) {
            return 0.0;
        }
        let cutoff = now
            .as_micros()
            .saturating_sub(self.cfg.load_window.as_micros());
        let count = s
            .arrivals
            .iter()
            .filter(|t| t.as_micros() >= cutoff)
            .count();
        count as f64 / window_s
    }

    /// Eq. 6: the predicted per-container processing capacity `μ` under
    /// pressure `P` with weights `w`, scaled by the service's calibration
    /// gain. `L_i` is the surface latency at the low-load edge (pure
    /// contention effect — queueing is the M/M/N model's job, not the
    /// surface's). The service time combines the solo latency with the
    /// weighted per-resource *degradations*:
    ///
    /// ```text
    /// S = gain · (L₀ + Σ_i w_i · (L_i − L₀)),   μ = 1/S
    /// ```
    ///
    /// With `w = (1,1,1)` this is exactly Amoeba-NoM's "pessimistically
    /// assume that the QoS degradations due to the contention on each of
    /// the shared resources are accumulated" (§VII-C); with the monitor's
    /// PCA weights, correlated resources are merged instead of
    /// double-counted.
    pub fn predicted_mu(&self, idx: usize, pressures: [f64; 3], weights: [f64; 3]) -> f64 {
        let service_time = self.predicted_service_time(idx, pressures, weights);
        debug_assert!(service_time > 0.0);
        1.0 / service_time
    }

    /// The Eq. 6 denominator: `gain · Σ w_i · L_i` (the overhead `α` is
    /// part of each surface's latency already).
    pub fn predicted_service_time(
        &self,
        idx: usize,
        pressures: [f64; 3],
        weights: [f64; 3],
    ) -> f64 {
        let s = &self.services[idx];
        (s.gain * self.raw_service_time(idx, pressures, weights)).max(1e-6)
    }

    /// The uncalibrated Eq. 6 denominator `L₀ + Σ w_i·(L_i − L₀)`.
    fn raw_service_time(&self, idx: usize, pressures: [f64; 3], weights: [f64; 3]) -> f64 {
        let s = &self.services[idx];
        let (loads, _) = s.model.surfaces[0].axes();
        let low_load = loads[0];
        let mut acc = s.model.l0_s;
        for r in 0..3 {
            let l_i = s.model.surfaces[r].predict(low_load, pressures[r]);
            acc += weights[r] * (l_i - s.model.l0_s).max(0.0);
        }
        acc
    }

    /// Feed back an observed serverless service time (end-to-end minus
    /// queue wait and cold start) to calibrate the gain, converging `μₙ`
    /// to the real capacity (§VI-A).
    pub fn observe_service_time(
        &mut self,
        idx: usize,
        observed_s: f64,
        pressures: [f64; 3],
        weights: [f64; 3],
    ) {
        if !(observed_s.is_finite() && observed_s > 0.0) {
            return;
        }
        let raw_pred = self.raw_service_time(idx, pressures, weights);
        if raw_pred <= 0.0 {
            return;
        }
        let target = observed_s / raw_pred;
        let s = &mut self.services[idx];
        s.gain += self.cfg.gain_alpha * (target - s.gain);
        s.gain = s.gain.clamp(0.25, 4.0);
    }

    /// The current calibration gain (diagnostics).
    pub fn gain(&self, idx: usize) -> f64 {
        self.services[idx].gain
    }

    /// Eq. 5 resolved: the maximum admissible load `λ(μ)` for this
    /// service under the given pressure and weights.
    pub fn lambda_max(&self, idx: usize, pressures: [f64; 3], weights: [f64; 3]) -> f64 {
        let s = &self.services[idx];
        let mu = self.predicted_mu(idx, pressures, weights);
        let Some(model) = MmnModel::new(s.model.n_max.max(1), mu) else {
            return 0.0;
        };
        model.discriminant_lambda(s.model.spec.qos_target_s, s.model.spec.qos_percentile)
    }

    /// The measured pressure vector with this service's own serverless
    /// contribution at `load` qps [`OwnPressure::Added`] (evaluating an
    /// IaaS-resident candidate: project its footprint onto the pool) or
    /// [`OwnPressure::Removed`] (a pool-resident service: its own
    /// traffic is not co-tenant contention).
    pub fn adjust_pressures(
        &self,
        idx: usize,
        pressures: [f64; 3],
        load: f64,
        own: OwnPressure,
    ) -> [f64; 3] {
        let s = &self.services[idx];
        let mut p = pressures;
        for r in 0..3 {
            let delta = load * s.model.util_per_qps[r];
            p[r] = match own {
                OwnPressure::Added => (p[r] + delta).min(0.97),
                OwnPressure::Removed => (p[r] - delta).max(0.0),
            };
        }
        p
    }

    /// §III: would moving `idx` (at `load` qps) onto the serverless
    /// platform keep every co-located service within its QoS target?
    /// `others` lists (service index, its current load) for services
    /// already on the platform.
    pub fn impact_ok(
        &self,
        idx: usize,
        load: f64,
        pressures: [f64; 3],
        others: &[(usize, f64)],
    ) -> bool {
        let s = &self.services[idx];
        // Added pressure from the candidate's own traffic.
        let mut p_after = pressures;
        for r in 0..3 {
            p_after[r] = (p_after[r] + load * s.model.util_per_qps[r]).min(0.98);
        }
        for &(j, load_j) in others {
            if j == idx {
                continue;
            }
            let o = &self.services[j].model;
            // Predicted p95 of the co-located service at its own load
            // under the increased pressure, taking the worst resource
            // (surfaces are per-resource; the worst one bounds the
            // combined effect from below — conservative enough for a
            // veto check, and independent of the weight calibration).
            let mut worst: f64 = 0.0;
            for r in 0..3 {
                worst = worst.max(o.surfaces[r].predict(load_j, p_after[r]));
            }
            if worst > o.spec.qos_target_s {
                return false;
            }
        }
        true
    }

    /// The full decision for one service at one control tick.
    ///
    /// `mode` is the service's current deployment, `last_switch` when it
    /// last changed, `others` the co-located serverless services for the
    /// impact check.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        idx: usize,
        mode: DeployMode,
        now: SimTime,
        last_switch: SimTime,
        pressures: [f64; 3],
        weights: [f64; 3],
        others: &[(usize, f64)],
    ) -> Decision {
        self.decide_explained(idx, mode, now, last_switch, pressures, weights, others)
            .0
    }

    /// [`Self::decide`], plus the intermediate quantities the verdict was
    /// derived from — the telemetry tick record. The decision is computed
    /// exactly once (by this method); `decide` discards the trace.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_explained(
        &self,
        idx: usize,
        mode: DeployMode,
        now: SimTime,
        last_switch: SimTime,
        pressures: [f64; 3],
        weights: [f64; 3],
        others: &[(usize, f64)],
    ) -> (Decision, DecisionTrace) {
        let dwell_pending = now.duration_since(last_switch) < self.cfg.min_dwell;
        let load = self.estimated_load(idx, now);
        // Proactive (Amoeba-Pro): evaluate Eq. 5 against the *upper*
        // forecast bound at the moment a switch started now would take
        // effect. The lookahead matches the direction under
        // consideration — a serverless-resident service is weighing a
        // switch up (VM boot), an IaaS-resident one a switch down
        // (prewarm). Taking max(current, forecast hi) is conservative
        // toward QoS: forecast uncertainty can only delay a switch down
        // or advance a switch up, never admit load the reactive rule
        // would have refused.
        let forecast = match (self.cfg.proactive, self.services[idx].forecaster.as_ref()) {
            (Some(p), Some(f)) => {
                let horizon = match mode {
                    DeployMode::Serverless => p.up_horizon,
                    DeployMode::Iaas => p.down_horizon,
                };
                let fc = f.predict(horizon);
                Some(ForecastSnapshot {
                    horizon,
                    mean: fc.mean,
                    lo: fc.lo,
                    hi: fc.hi,
                })
            }
            _ => None,
        };
        let eval_qps = forecast.map_or(load, |fc| load.max(fc.hi));
        // λ-shift: a workflow stage's true offered load is the root
        // stage's λ time-shifted by upstream latencies, so its own
        // arrival window understates imminent load while upstream
        // stages drain, switch or burst. Taking the max keeps the
        // admission test honest about what is about to arrive.
        let eval_qps = match self.services[idx].load_hint {
            Some(h) => eval_qps.max(h),
            None => eval_qps,
        };
        let (p_eff, lambda_max) = match mode {
            DeployMode::Iaas => {
                // Measured pressure excludes this service (it runs on
                // IaaS); project its own contribution at the candidate
                // load on top, so self-contention is part of the
                // admission decision — Fig. 9's surfaces are functions
                // of (V_u, P) for exactly this reason.
                let p = self.adjust_pressures(idx, pressures, eval_qps, OwnPressure::Added);
                (p, self.lambda_max(idx, p, weights))
            }
            // Measured pressure already includes this service's own
            // traffic: evaluate admissibility of the current load at
            // the pressure that load creates.
            DeployMode::Serverless => (pressures, self.lambda_max(idx, pressures, weights)),
        };
        let (decision, reason) = if dwell_pending {
            (Decision::Stay, TickReason::DwellPending)
        } else {
            match mode {
                DeployMode::Iaas => {
                    if eval_qps >= self.cfg.down_margin * lambda_max {
                        (Decision::Stay, TickReason::LoadAboveDownMargin)
                    } else if !self.impact_ok(idx, eval_qps, pressures, others) {
                        (Decision::Stay, TickReason::ImpactVetoed)
                    } else {
                        (
                            Decision::SwitchToServerless,
                            TickReason::LoadBelowDownMargin,
                        )
                    }
                }
                DeployMode::Serverless => {
                    if eval_qps > self.cfg.up_margin * lambda_max {
                        (Decision::SwitchToIaas, TickReason::LoadAboveUpMargin)
                    } else {
                        (Decision::Stay, TickReason::LoadBelowUpMargin)
                    }
                }
            }
        };
        let trace = DecisionTrace {
            load_qps: load,
            eval_qps,
            mu: self.predicted_mu(idx, p_eff, weights),
            lambda_max,
            pressures: p_eff,
            reason,
            forecast,
        };
        (decision, trace)
    }

    /// The self-consistent admissible load: the largest `λ` with
    /// `λ ≤ λ_max(P_env + own(λ))` — the Eq. 5 discriminant evaluated at
    /// the pressure the service itself would add at that load. This is
    /// the quantity Fig. 15 compares against the enumerated real switch
    /// point; [`Self::decide`] evaluates the same predicate at the
    /// current load.
    pub fn admissible_load(&self, idx: usize, p_env: [f64; 3], weights: [f64; 3]) -> f64 {
        let cap = self.services[idx].model.n_max as f64 * self.predicted_mu(idx, p_env, weights);
        let ok = |lam: f64| {
            let p = self.adjust_pressures(idx, p_env, lam, OwnPressure::Added);
            lam <= self.lambda_max(idx, p, weights)
        };
        if !ok(1e-3) {
            return 0.0;
        }
        let mut lo = 1e-3;
        let mut hi = cap.max(1.0);
        if ok(hi) {
            return hi;
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The service's registered model.
    pub fn model(&self, idx: usize) -> &ServiceModel {
        &self.services[idx].model
    }
}

/// Eq. 7: the prewarm container count `n` with
/// `(n−1)/QoS_t < V_u ≤ n/QoS_t`, i.e. the smallest `n ≥ V_u · QoS_t`.
/// Degenerate inputs — zero, negative or non-finite load or target —
/// yield 0 containers rather than letting a NaN propagate through the
/// `ceil`-and-cast (which would silently produce 0 anyway on some
/// platforms and UB-adjacent garbage on others). Callers that must warm
/// at least one container clamp at the call site.
pub fn prewarm_count(load_qps: f64, qos_target_s: f64) -> u32 {
    if !(load_qps.is_finite() && load_qps > 0.0) {
        return 0;
    }
    if !(qos_target_s.is_finite() && qos_target_s > 0.0) {
        return 0;
    }
    let n = (load_qps * qos_target_s).ceil();
    n.min(u32::MAX as f64).max(1.0) as u32
}

#[cfg(test)]
#[path = "controller_tests.rs"]
mod tests;
