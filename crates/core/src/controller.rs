// Indexing `0..3` over the fixed [cpu, io, net] resource axes reads
// better than zipped iterators here.
#![allow(clippy::needless_range_loop)]

//! The contention-aware deployment controller (§IV).
//!
//! Per control period and per service the controller:
//!
//! 1. estimates the service's load `V_u` (arrivals over a sliding
//!    window);
//! 2. takes the platform pressure `P = {P_cpu, P_io, P_net}` from the
//!    monitor, minus the service's own contribution when it is already
//!    running on the serverless platform;
//! 3. looks up the per-resource predicted latencies `L₁, L₂, L₃` in the
//!    profiled latency surfaces (Fig. 9) and combines them with the
//!    monitor's PCA weights into the per-container processing capacity
//!    `μ` (Eq. 6), calibrated by a feedback gain that converges `μ` to
//!    the real capacity (§VI-A);
//! 4. evaluates the discriminant `λ(μ)` (Eq. 5) on the M/M/N model with
//!    the container ceiling `n_max` (§IV-A) and compares the observed
//!    load against it, with a hysteresis band so the deployment does not
//!    flap;
//! 5. refuses a switch to serverless that would push any co-located
//!    service past its own QoS target (§III).

use amoeba_forecast::Forecaster;
use amoeba_meters::LatencySurface;
use amoeba_queueing::MmnModel;
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::TickReason;
use amoeba_workload::MicroserviceSpec;
use std::collections::VecDeque;

/// Where a service's queries are currently routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployMode {
    /// Dedicated VM group.
    Iaas,
    /// Shared serverless pool.
    Serverless,
}

impl From<DeployMode> for amoeba_telemetry::Mode {
    fn from(m: DeployMode) -> Self {
        match m {
            DeployMode::Iaas => amoeba_telemetry::Mode::Iaas,
            DeployMode::Serverless => amoeba_telemetry::Mode::Serverless,
        }
    }
}

/// The controller's verdict for one service at one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current mode.
    Stay,
    /// Begin the switch to serverless (low load, contention acceptable).
    SwitchToServerless,
    /// Begin the switch to IaaS (load too high for the shared pool).
    SwitchToIaas,
}

impl From<Decision> for amoeba_telemetry::TraceDecision {
    fn from(d: Decision) -> Self {
        match d {
            Decision::Stay => amoeba_telemetry::TraceDecision::Stay,
            Decision::SwitchToServerless => amoeba_telemetry::TraceDecision::SwitchToServerless,
            Decision::SwitchToIaas => amoeba_telemetry::TraceDecision::SwitchToIaas,
        }
    }
}

/// Whose pressure contribution [`DeploymentController::adjust_pressures`]
/// applies: project the service's own serverless footprint onto the
/// measured pressure, or strip it back out. The two operations are
/// inverses below the clamps, and pairing them through one entry point
/// keeps callers from mixing up which direction a given mode requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnPressure {
    /// Add the service's projected contribution at the given load (an
    /// IaaS-resident candidate being evaluated for admission — the pool
    /// has not felt it yet). Clamped to ≤ 0.97 per resource.
    Added,
    /// Remove the service's contribution at the given load (a
    /// pool-resident service whose own traffic must not read as
    /// co-tenant contention). Clamped to ≥ 0 per resource.
    Removed,
}

/// The forecast a proactive decision was evaluated against, for the
/// telemetry record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastSnapshot {
    /// Horizon the forecast targets (the relevant switch latency).
    pub horizon: SimDuration,
    /// Point forecast of λ at `now + horizon`, queries/second.
    pub mean: f64,
    /// Lower bound of the forecast band.
    pub lo: f64,
    /// Upper bound — what Eq. 5 was evaluated against.
    pub hi: f64,
}

/// The intermediate quantities behind one
/// [`DeploymentController::decide_explained`] verdict — everything Eq. 5
/// and Eq. 6 saw and produced, for the telemetry tick record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTrace {
    /// Estimated load `V_u`, queries/second.
    pub load_qps: f64,
    /// The load Eq. 5 was actually compared against:
    /// `max(load_qps, forecast.hi)` in proactive mode, `load_qps`
    /// otherwise.
    pub eval_qps: f64,
    /// Eq. 6 predicted per-container capacity `μ`, queries/second.
    pub mu: f64,
    /// Eq. 5 discriminant `λ(μ)`: the maximum admissible load.
    pub lambda_max: f64,
    /// The effective pressure vector the discriminant was evaluated at
    /// (own contribution projected in for an IaaS candidate).
    pub pressures: [f64; 3],
    /// Why the verdict came out the way it did.
    pub reason: TickReason,
    /// The forecast behind `eval_qps`, when the service has one.
    pub forecast: Option<ForecastSnapshot>,
}

/// Horizons for the proactive (Amoeba-Pro) decision rule: how far ahead
/// the controller looks is exactly how long the corresponding switch
/// takes to become effective — a decision made now lands then.
#[derive(Debug, Clone, Copy)]
pub struct ProactiveConfig {
    /// Lookahead for a serverless-resident service considering a switch
    /// up to IaaS (VM boot plus one control period).
    pub up_horizon: SimDuration,
    /// Lookahead for an IaaS-resident service considering a switch down
    /// to serverless (container prewarm plus one control period).
    pub down_horizon: SimDuration,
}

/// Controller tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Switch to serverless when `V_u < down_margin · λ(μ)`.
    pub down_margin: f64,
    /// Switch to IaaS when `V_u > up_margin · λ(μ)`.
    pub up_margin: f64,
    /// Minimum time between switches of one service (anti-flapping).
    pub min_dwell: SimDuration,
    /// Sliding window for load estimation.
    pub load_window: SimDuration,
    /// EWMA factor of the μ-calibration gain.
    pub gain_alpha: f64,
    /// Proactive lookahead horizons. `None` (the default) keeps the
    /// paper's reactive rule; `Some` makes every decision for a service
    /// with an attached forecaster evaluate Eq. 5 against the upper
    /// forecast bound at the switch latency.
    pub proactive: Option<ProactiveConfig>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            down_margin: 0.65,
            up_margin: 0.85,
            min_dwell: SimDuration::from_secs(8),
            load_window: SimDuration::from_secs(4),
            gain_alpha: 0.15,
            proactive: None,
        }
    }
}

/// Everything the controller knows about one service.
pub struct ServiceModel {
    /// The service's spec (QoS target, percentile, peak load).
    pub spec: MicroserviceSpec,
    /// Solo end-to-end latency `L₀` on the serverless platform, seconds
    /// (includes the per-query overhead `α`).
    pub l0_s: f64,
    /// Latency surfaces per metered resource [cpu, io, net] (Fig. 9).
    pub surfaces: [LatencySurface; 3],
    /// Utilisation added to resource `r` per unit of load (qps) when this
    /// service runs serverless: `ΔU_r = V_u · l0 · rate_r / capacity_r`
    /// precomputed as per-qps values.
    pub util_per_qps: [f64; 3],
    /// Container ceiling `n_max` (§IV-A).
    pub n_max: u32,
}

struct ServiceState {
    model: ServiceModel,
    arrivals: VecDeque<SimTime>,
    gain: f64,
    forecaster: Option<Box<dyn Forecaster>>,
}

/// The deployment controller for a set of services.
pub struct DeploymentController {
    cfg: ControllerConfig,
    services: Vec<ServiceState>,
}

impl DeploymentController {
    /// An empty controller.
    pub fn new(cfg: ControllerConfig) -> Self {
        DeploymentController {
            cfg,
            services: Vec::new(),
        }
    }

    /// Register a service model; indices align with registration order
    /// (and thus with the platforms' `ServiceId`s).
    pub fn register(&mut self, model: ServiceModel) -> usize {
        self.services.push(ServiceState {
            model,
            arrivals: VecDeque::new(),
            gain: 1.0,
            forecaster: None,
        });
        self.services.len() - 1
    }

    /// Attach a load forecaster to a service. Until one is attached (or
    /// when [`ControllerConfig::proactive`] is `None`) decisions stay
    /// purely reactive.
    pub fn attach_forecaster(&mut self, idx: usize, forecaster: Box<dyn Forecaster>) {
        self.services[idx].forecaster = Some(forecaster);
    }

    /// Feed the current load estimate to the service's forecaster (call
    /// once per control tick, before [`Self::decide`]). A no-op without
    /// an attached forecaster, so callers need not special-case reactive
    /// variants.
    pub fn observe_load(&mut self, idx: usize, now: SimTime) {
        let load = self.estimated_load(idx, now);
        if let Some(f) = self.services[idx].forecaster.as_mut() {
            f.observe(now, load);
        }
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Record a query arrival (drives the load estimator).
    pub fn record_arrival(&mut self, idx: usize, at: SimTime) {
        let s = &mut self.services[idx];
        s.arrivals.push_back(at);
        // Prune outside the window as we go to bound memory.
        let cutoff = at
            .as_micros()
            .saturating_sub(self.cfg.load_window.as_micros());
        while let Some(front) = s.arrivals.front() {
            if front.as_micros() < cutoff {
                s.arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    /// Estimated load `V_u` in queries/second at `now`. A degenerate
    /// (zero or non-finite) load window reads as zero load rather than
    /// dividing into NaN/infinity.
    pub fn estimated_load(&self, idx: usize, now: SimTime) -> f64 {
        let s = &self.services[idx];
        let window_s = self.cfg.load_window.as_secs_f64();
        if !(window_s.is_finite() && window_s > 0.0) {
            return 0.0;
        }
        let cutoff = now
            .as_micros()
            .saturating_sub(self.cfg.load_window.as_micros());
        let count = s
            .arrivals
            .iter()
            .filter(|t| t.as_micros() >= cutoff)
            .count();
        count as f64 / window_s
    }

    /// Eq. 6: the predicted per-container processing capacity `μ` under
    /// pressure `P` with weights `w`, scaled by the service's calibration
    /// gain. `L_i` is the surface latency at the low-load edge (pure
    /// contention effect — queueing is the M/M/N model's job, not the
    /// surface's). The service time combines the solo latency with the
    /// weighted per-resource *degradations*:
    ///
    /// ```text
    /// S = gain · (L₀ + Σ_i w_i · (L_i − L₀)),   μ = 1/S
    /// ```
    ///
    /// With `w = (1,1,1)` this is exactly Amoeba-NoM's "pessimistically
    /// assume that the QoS degradations due to the contention on each of
    /// the shared resources are accumulated" (§VII-C); with the monitor's
    /// PCA weights, correlated resources are merged instead of
    /// double-counted.
    pub fn predicted_mu(&self, idx: usize, pressures: [f64; 3], weights: [f64; 3]) -> f64 {
        let service_time = self.predicted_service_time(idx, pressures, weights);
        debug_assert!(service_time > 0.0);
        1.0 / service_time
    }

    /// The Eq. 6 denominator: `gain · Σ w_i · L_i` (the overhead `α` is
    /// part of each surface's latency already).
    pub fn predicted_service_time(
        &self,
        idx: usize,
        pressures: [f64; 3],
        weights: [f64; 3],
    ) -> f64 {
        let s = &self.services[idx];
        (s.gain * self.raw_service_time(idx, pressures, weights)).max(1e-6)
    }

    /// The uncalibrated Eq. 6 denominator `L₀ + Σ w_i·(L_i − L₀)`.
    fn raw_service_time(&self, idx: usize, pressures: [f64; 3], weights: [f64; 3]) -> f64 {
        let s = &self.services[idx];
        let (loads, _) = s.model.surfaces[0].axes();
        let low_load = loads[0];
        let mut acc = s.model.l0_s;
        for r in 0..3 {
            let l_i = s.model.surfaces[r].predict(low_load, pressures[r]);
            acc += weights[r] * (l_i - s.model.l0_s).max(0.0);
        }
        acc
    }

    /// Feed back an observed serverless service time (end-to-end minus
    /// queue wait and cold start) to calibrate the gain, converging `μₙ`
    /// to the real capacity (§VI-A).
    pub fn observe_service_time(
        &mut self,
        idx: usize,
        observed_s: f64,
        pressures: [f64; 3],
        weights: [f64; 3],
    ) {
        if !(observed_s.is_finite() && observed_s > 0.0) {
            return;
        }
        let raw_pred = self.raw_service_time(idx, pressures, weights);
        if raw_pred <= 0.0 {
            return;
        }
        let target = observed_s / raw_pred;
        let s = &mut self.services[idx];
        s.gain += self.cfg.gain_alpha * (target - s.gain);
        s.gain = s.gain.clamp(0.25, 4.0);
    }

    /// The current calibration gain (diagnostics).
    pub fn gain(&self, idx: usize) -> f64 {
        self.services[idx].gain
    }

    /// Eq. 5 resolved: the maximum admissible load `λ(μ)` for this
    /// service under the given pressure and weights.
    pub fn lambda_max(&self, idx: usize, pressures: [f64; 3], weights: [f64; 3]) -> f64 {
        let s = &self.services[idx];
        let mu = self.predicted_mu(idx, pressures, weights);
        let Some(model) = MmnModel::new(s.model.n_max.max(1), mu) else {
            return 0.0;
        };
        model.discriminant_lambda(s.model.spec.qos_target_s, s.model.spec.qos_percentile)
    }

    /// The measured pressure vector with this service's own serverless
    /// contribution at `load` qps [`OwnPressure::Added`] (evaluating an
    /// IaaS-resident candidate: project its footprint onto the pool) or
    /// [`OwnPressure::Removed`] (a pool-resident service: its own
    /// traffic is not co-tenant contention).
    pub fn adjust_pressures(
        &self,
        idx: usize,
        pressures: [f64; 3],
        load: f64,
        own: OwnPressure,
    ) -> [f64; 3] {
        let s = &self.services[idx];
        let mut p = pressures;
        for r in 0..3 {
            let delta = load * s.model.util_per_qps[r];
            p[r] = match own {
                OwnPressure::Added => (p[r] + delta).min(0.97),
                OwnPressure::Removed => (p[r] - delta).max(0.0),
            };
        }
        p
    }

    /// §III: would moving `idx` (at `load` qps) onto the serverless
    /// platform keep every co-located service within its QoS target?
    /// `others` lists (service index, its current load) for services
    /// already on the platform.
    pub fn impact_ok(
        &self,
        idx: usize,
        load: f64,
        pressures: [f64; 3],
        others: &[(usize, f64)],
    ) -> bool {
        let s = &self.services[idx];
        // Added pressure from the candidate's own traffic.
        let mut p_after = pressures;
        for r in 0..3 {
            p_after[r] = (p_after[r] + load * s.model.util_per_qps[r]).min(0.98);
        }
        for &(j, load_j) in others {
            if j == idx {
                continue;
            }
            let o = &self.services[j].model;
            // Predicted p95 of the co-located service at its own load
            // under the increased pressure, taking the worst resource
            // (surfaces are per-resource; the worst one bounds the
            // combined effect from below — conservative enough for a
            // veto check, and independent of the weight calibration).
            let mut worst: f64 = 0.0;
            for r in 0..3 {
                worst = worst.max(o.surfaces[r].predict(load_j, p_after[r]));
            }
            if worst > o.spec.qos_target_s {
                return false;
            }
        }
        true
    }

    /// The full decision for one service at one control tick.
    ///
    /// `mode` is the service's current deployment, `last_switch` when it
    /// last changed, `others` the co-located serverless services for the
    /// impact check.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        idx: usize,
        mode: DeployMode,
        now: SimTime,
        last_switch: SimTime,
        pressures: [f64; 3],
        weights: [f64; 3],
        others: &[(usize, f64)],
    ) -> Decision {
        self.decide_explained(idx, mode, now, last_switch, pressures, weights, others)
            .0
    }

    /// [`Self::decide`], plus the intermediate quantities the verdict was
    /// derived from — the telemetry tick record. The decision is computed
    /// exactly once (by this method); `decide` discards the trace.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_explained(
        &self,
        idx: usize,
        mode: DeployMode,
        now: SimTime,
        last_switch: SimTime,
        pressures: [f64; 3],
        weights: [f64; 3],
        others: &[(usize, f64)],
    ) -> (Decision, DecisionTrace) {
        let dwell_pending = now.duration_since(last_switch) < self.cfg.min_dwell;
        let load = self.estimated_load(idx, now);
        // Proactive (Amoeba-Pro): evaluate Eq. 5 against the *upper*
        // forecast bound at the moment a switch started now would take
        // effect. The lookahead matches the direction under
        // consideration — a serverless-resident service is weighing a
        // switch up (VM boot), an IaaS-resident one a switch down
        // (prewarm). Taking max(current, forecast hi) is conservative
        // toward QoS: forecast uncertainty can only delay a switch down
        // or advance a switch up, never admit load the reactive rule
        // would have refused.
        let forecast = match (self.cfg.proactive, self.services[idx].forecaster.as_ref()) {
            (Some(p), Some(f)) => {
                let horizon = match mode {
                    DeployMode::Serverless => p.up_horizon,
                    DeployMode::Iaas => p.down_horizon,
                };
                let fc = f.predict(horizon);
                Some(ForecastSnapshot {
                    horizon,
                    mean: fc.mean,
                    lo: fc.lo,
                    hi: fc.hi,
                })
            }
            _ => None,
        };
        let eval_qps = forecast.map_or(load, |fc| load.max(fc.hi));
        let (p_eff, lambda_max) = match mode {
            DeployMode::Iaas => {
                // Measured pressure excludes this service (it runs on
                // IaaS); project its own contribution at the candidate
                // load on top, so self-contention is part of the
                // admission decision — Fig. 9's surfaces are functions
                // of (V_u, P) for exactly this reason.
                let p = self.adjust_pressures(idx, pressures, eval_qps, OwnPressure::Added);
                (p, self.lambda_max(idx, p, weights))
            }
            // Measured pressure already includes this service's own
            // traffic: evaluate admissibility of the current load at
            // the pressure that load creates.
            DeployMode::Serverless => (pressures, self.lambda_max(idx, pressures, weights)),
        };
        let (decision, reason) = if dwell_pending {
            (Decision::Stay, TickReason::DwellPending)
        } else {
            match mode {
                DeployMode::Iaas => {
                    if eval_qps >= self.cfg.down_margin * lambda_max {
                        (Decision::Stay, TickReason::LoadAboveDownMargin)
                    } else if !self.impact_ok(idx, eval_qps, pressures, others) {
                        (Decision::Stay, TickReason::ImpactVetoed)
                    } else {
                        (
                            Decision::SwitchToServerless,
                            TickReason::LoadBelowDownMargin,
                        )
                    }
                }
                DeployMode::Serverless => {
                    if eval_qps > self.cfg.up_margin * lambda_max {
                        (Decision::SwitchToIaas, TickReason::LoadAboveUpMargin)
                    } else {
                        (Decision::Stay, TickReason::LoadBelowUpMargin)
                    }
                }
            }
        };
        let trace = DecisionTrace {
            load_qps: load,
            eval_qps,
            mu: self.predicted_mu(idx, p_eff, weights),
            lambda_max,
            pressures: p_eff,
            reason,
            forecast,
        };
        (decision, trace)
    }

    /// The self-consistent admissible load: the largest `λ` with
    /// `λ ≤ λ_max(P_env + own(λ))` — the Eq. 5 discriminant evaluated at
    /// the pressure the service itself would add at that load. This is
    /// the quantity Fig. 15 compares against the enumerated real switch
    /// point; [`Self::decide`] evaluates the same predicate at the
    /// current load.
    pub fn admissible_load(&self, idx: usize, p_env: [f64; 3], weights: [f64; 3]) -> f64 {
        let cap = self.services[idx].model.n_max as f64 * self.predicted_mu(idx, p_env, weights);
        let ok = |lam: f64| {
            let p = self.adjust_pressures(idx, p_env, lam, OwnPressure::Added);
            lam <= self.lambda_max(idx, p, weights)
        };
        if !ok(1e-3) {
            return 0.0;
        }
        let mut lo = 1e-3;
        let mut hi = cap.max(1.0);
        if ok(hi) {
            return hi;
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The service's registered model.
    pub fn model(&self, idx: usize) -> &ServiceModel {
        &self.services[idx].model
    }
}

/// Eq. 7: the prewarm container count `n` with
/// `(n−1)/QoS_t < V_u ≤ n/QoS_t`, i.e. the smallest `n ≥ V_u · QoS_t`.
/// Degenerate inputs — zero, negative or non-finite load or target —
/// yield 0 containers rather than letting a NaN propagate through the
/// `ceil`-and-cast (which would silently produce 0 anyway on some
/// platforms and UB-adjacent garbage on others). Callers that must warm
/// at least one container clamp at the call site.
pub fn prewarm_count(load_qps: f64, qos_target_s: f64) -> u32 {
    if !(load_qps.is_finite() && load_qps > 0.0) {
        return 0;
    }
    if !(qos_target_s.is_finite() && qos_target_s > 0.0) {
        return 0;
    }
    let n = (load_qps * qos_target_s).ceil();
    n.min(u32::MAX as f64).max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_workload::benchmarks;

    fn surfaces_for(spec: &MicroserviceSpec) -> [LatencySurface; 3] {
        let phases = [
            spec.demand.cpu_s,
            spec.demand.io_mb / 500.0,
            spec.demand.net_mb / 250.0,
        ];
        let overhead = 0.02;
        let loads = vec![0.5, 5.0, 20.0, 60.0, 120.0];
        let pressures = vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.95];
        let kappas = [1.2, 1.8, 1.5];
        [0, 1, 2].map(|r| {
            LatencySurface::analytic(
                phases,
                overhead,
                r,
                kappas[r],
                120,
                spec.qos_percentile,
                loads.clone(),
                pressures.clone(),
            )
        })
    }

    fn model_for(spec: MicroserviceSpec) -> ServiceModel {
        let surfaces = surfaces_for(&spec);
        let phases_sum = spec.demand.cpu_s + spec.demand.io_mb / 500.0 + spec.demand.net_mb / 250.0;
        let l0 = phases_sum + 0.02;
        let base = phases_sum.max(1e-3);
        // util per qps on a 40-core / 3000 MBps / 3125 MBps node.
        let util_per_qps = [
            l0 * (spec.demand.cpu_s / base) / 40.0,
            l0 * (spec.demand.io_mb / base) / 3000.0,
            l0 * (spec.demand.net_mb / base) / 3125.0,
        ];
        ServiceModel {
            spec,
            l0_s: l0,
            surfaces,
            util_per_qps,
            n_max: 12,
        }
    }

    fn controller_with(specs: Vec<MicroserviceSpec>) -> DeploymentController {
        let mut c = DeploymentController::new(ControllerConfig::default());
        for s in specs {
            c.register(model_for(s));
        }
        c
    }

    const UNIFORM: [f64; 3] = [1.0, 1.0, 1.0];
    const CALIBRATED: [f64; 3] = [0.34, 0.33, 0.33];

    #[test]
    fn eq7_prewarm_count() {
        // (n-1)/QoS < V ≤ n/QoS.
        assert_eq!(prewarm_count(10.0, 0.2), 2);
        assert_eq!(prewarm_count(10.0, 0.5), 5);
        assert_eq!(prewarm_count(9.9, 0.5), 5);
        assert_eq!(prewarm_count(10.1, 0.5), 6);
        // Tiny but positive load still warms one container.
        assert_eq!(prewarm_count(0.1, 0.5), 1);
    }

    #[test]
    fn eq7_degenerate_inputs_warm_nothing() {
        assert_eq!(prewarm_count(0.0, 0.5), 0);
        assert_eq!(prewarm_count(-3.0, 0.5), 0);
        assert_eq!(prewarm_count(f64::NAN, 0.5), 0);
        assert_eq!(prewarm_count(f64::INFINITY, 0.5), 0);
        assert_eq!(prewarm_count(10.0, 0.0), 0);
        assert_eq!(prewarm_count(10.0, -1.0), 0);
        assert_eq!(prewarm_count(10.0, f64::NAN), 0);
        assert_eq!(prewarm_count(10.0, f64::INFINITY), 0);
        // A huge-but-finite product saturates instead of wrapping.
        assert_eq!(prewarm_count(1e30, 1e30), u32::MAX);
    }

    #[test]
    fn degenerate_load_window_reads_as_zero_load() {
        let mut c = DeploymentController::new(ControllerConfig {
            load_window: SimDuration::ZERO,
            ..ControllerConfig::default()
        });
        c.register(model_for(benchmarks::float()));
        c.record_arrival(0, SimTime::from_secs(1));
        let load = c.estimated_load(0, SimTime::from_secs(1));
        assert_eq!(load, 0.0, "zero window must not divide into NaN/inf");
    }

    #[test]
    fn load_estimation_over_window() {
        let mut c = controller_with(vec![benchmarks::float()]);
        // 20 arrivals within the 4s window.
        for i in 0..20 {
            c.record_arrival(0, SimTime::from_millis(i * 100));
        }
        let load = c.estimated_load(0, SimTime::from_secs(2));
        assert!((load - 5.0).abs() < 0.01, "load {load}");
        // After the window slides past, old arrivals drop out.
        let load = c.estimated_load(0, SimTime::from_secs(60));
        assert_eq!(load, 0.0);
    }

    #[test]
    fn mu_degrades_with_pressure() {
        let c = controller_with(vec![benchmarks::float()]);
        let mu_idle = c.predicted_mu(0, [0.0; 3], CALIBRATED);
        let mu_pressed = c.predicted_mu(0, [0.8, 0.0, 0.0], CALIBRATED);
        assert!(mu_pressed < mu_idle, "{mu_pressed} !< {mu_idle}");
    }

    #[test]
    fn mu_sensitive_only_to_relevant_resource() {
        // float is CPU-bound: IO pressure barely moves its μ.
        let c = controller_with(vec![benchmarks::float()]);
        let mu_idle = c.predicted_mu(0, [0.0; 3], CALIBRATED);
        let mu_io = c.predicted_mu(0, [0.0, 0.9, 0.0], CALIBRATED);
        assert!((mu_idle - mu_io) / mu_idle < 0.05, "{mu_idle} vs {mu_io}");
        // dd is IO-bound: IO pressure hits hard.
        let c = controller_with(vec![benchmarks::dd()]);
        let mu_idle = c.predicted_mu(0, [0.0; 3], CALIBRATED);
        let mu_io = c.predicted_mu(0, [0.0, 0.9, 0.0], CALIBRATED);
        assert!(mu_io < mu_idle * 0.5, "{mu_idle} vs {mu_io}");
    }

    #[test]
    fn nom_weights_are_pessimistic() {
        // cloud_stor touches all three resources, so the accumulation
        // across resources actually bites.
        let c = controller_with(vec![benchmarks::cloud_stor()]);
        let mu_amoeba = c.predicted_mu(0, [0.6, 0.6, 0.6], CALIBRATED);
        let mu_nom = c.predicted_mu(0, [0.6, 0.6, 0.6], UNIFORM);
        // Uniform (1,1,1) accumulates all three degradations -> smaller μ.
        assert!(mu_nom < mu_amoeba * 0.75, "{mu_nom} vs {mu_amoeba}");
        // With no contention at all the two readings coincide: the
        // pessimism is about degradations, not the base latency.
        let idle_nom = c.predicted_mu(0, [0.0; 3], UNIFORM);
        let idle_cal = c.predicted_mu(0, [0.0; 3], CALIBRATED);
        assert!((idle_nom - idle_cal).abs() / idle_cal < 1e-6);
    }

    #[test]
    fn lambda_max_shrinks_under_contention() {
        let c = controller_with(vec![benchmarks::float()]);
        let lam_idle = c.lambda_max(0, [0.0; 3], CALIBRATED);
        let lam_pressed = c.lambda_max(0, [0.8, 0.2, 0.0], CALIBRATED);
        assert!(lam_idle > 0.0);
        assert!(
            lam_pressed < lam_idle,
            "contention must lower the switch point: {lam_pressed} vs {lam_idle}"
        );
    }

    #[test]
    fn decide_switches_down_at_low_load() {
        let mut c = controller_with(vec![benchmarks::float()]);
        let now = SimTime::from_secs(100);
        // 2 qps — far below the idle-platform admissible load.
        for i in 0..8 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 450));
        }
        let d = c.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::SwitchToServerless);
    }

    #[test]
    fn decide_stays_on_iaas_at_high_load() {
        let mut c = controller_with(vec![benchmarks::float()]);
        let now = SimTime::from_secs(100);
        // 120 qps = peak.
        for i in 0..480 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 8));
        }
        let d = c.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::Stay);
    }

    #[test]
    fn decide_switches_up_when_load_rises_on_serverless() {
        let mut c = controller_with(vec![benchmarks::float()]);
        let now = SimTime::from_secs(100);
        for i in 0..480 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 8));
        }
        let d = c.decide(
            0,
            DeployMode::Serverless,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::SwitchToIaas);
    }

    #[test]
    fn contention_moves_the_switch_point() {
        // The paper's core claim: there is no fixed switch load — under
        // heavy IO pressure, an IO-bound service must stay on IaaS at a
        // load it could happily serve on an idle pool.
        let mut c = controller_with(vec![benchmarks::dd()]);
        let now = SimTime::from_secs(100);
        // 6 qps.
        for i in 0..24 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 160));
        }
        let idle = c.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(idle, Decision::SwitchToServerless);
        let io_storm = c.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0, 0.93, 0.0],
            CALIBRATED,
            &[],
        );
        assert_eq!(
            io_storm,
            Decision::Stay,
            "IO-bound service must not move into an IO storm"
        );
        // A CPU-bound service at comparable relative load is unaffected
        // by the same IO storm (paper: "a CPU-bound microservice can be
        // safely switched").
        let mut c2 = controller_with(vec![benchmarks::float()]);
        for i in 0..24 {
            c2.record_arrival(0, now - SimDuration::from_millis(i * 160));
        }
        let d = c2.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0, 0.93, 0.0],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::SwitchToServerless);
    }

    #[test]
    fn dwell_time_prevents_flapping() {
        let mut c = controller_with(vec![benchmarks::float()]);
        let now = SimTime::from_secs(10);
        for i in 0..8 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 450));
        }
        // Switched 2s ago, dwell is 8s.
        let d = c.decide(
            0,
            DeployMode::Iaas,
            now,
            now - SimDuration::from_secs(2),
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::Stay);
    }

    #[test]
    fn impact_check_vetoes_harmful_switch() {
        // dd (heavy IO per query) moving in at high load must not be
        // allowed to wreck a co-located IO-sensitive service already
        // near its QoS.
        let mut c = controller_with(vec![benchmarks::dd(), benchmarks::cloud_stor()]);
        let ok = c.impact_ok(0, 40.0, [0.0, 0.55, 0.3], &[(1, 30.0)]);
        assert!(
            !ok,
            "switching 40qps of dd into an IO-pressed pool must be vetoed"
        );
        let ok_low = c.impact_ok(0, 1.0, [0.0, 0.1, 0.0], &[(1, 5.0)]);
        assert!(ok_low, "a tiny load on a quiet pool is harmless");
        let _ = &mut c;
    }

    #[test]
    fn gain_calibration_converges() {
        let mut c = controller_with(vec![benchmarks::float()]);
        let pressures = [0.2, 0.0, 0.0];
        let raw_pred = {
            // Raw (gain-1) prediction.
            c.predicted_service_time(0, pressures, CALIBRATED)
        };
        // Observed service times are consistently 1.5x the raw model.
        for _ in 0..200 {
            c.observe_service_time(0, raw_pred * 1.5, pressures, CALIBRATED);
        }
        assert!((c.gain(0) - 1.5).abs() < 0.05, "gain {}", c.gain(0));
        let pred = c.predicted_service_time(0, pressures, CALIBRATED);
        assert!((pred - raw_pred * 1.5).abs() / pred < 0.05);
    }

    #[test]
    fn gain_is_clamped() {
        let mut c = controller_with(vec![benchmarks::float()]);
        for _ in 0..500 {
            c.observe_service_time(0, 1e6, [0.0; 3], CALIBRATED);
        }
        assert!(c.gain(0) <= 4.0);
        for _ in 0..500 {
            c.observe_service_time(0, 1e-9, [0.0; 3], CALIBRATED);
        }
        assert!(c.gain(0) >= 0.25);
    }

    #[test]
    fn own_pressure_subtraction() {
        let c = controller_with(vec![benchmarks::float()]);
        let p = c.adjust_pressures(0, [0.5, 0.1, 0.1], 40.0, OwnPressure::Removed);
        assert!(p[0] < 0.5, "own cpu contribution removed: {p:?}");
        assert!(p.iter().all(|&x| x >= 0.0));
        // Subtracting more than present clamps at zero.
        let p = c.adjust_pressures(0, [0.01, 0.0, 0.0], 500.0, OwnPressure::Removed);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn with_and_without_own_are_inverse_below_clamp() {
        let c = controller_with(vec![benchmarks::dd()]);
        let env = [0.1, 0.2, 0.05];
        let load = 8.0;
        let with = c.adjust_pressures(0, env, load, OwnPressure::Added);
        let back = c.adjust_pressures(0, with, load, OwnPressure::Removed);
        for r in 0..3 {
            assert!((back[r] - env[r]).abs() < 1e-9, "{back:?} vs {env:?}");
        }
    }

    #[test]
    fn decide_explained_matches_decide_and_carries_reasons() {
        let mut c = controller_with(vec![benchmarks::float()]);
        let now = SimTime::from_secs(100);
        for i in 0..8 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 450));
        }
        // Low load on IaaS: switch down, reason LoadBelowDownMargin.
        let (d, tr) = c.decide_explained(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::SwitchToServerless);
        assert_eq!(tr.reason, TickReason::LoadBelowDownMargin);
        assert!(tr.load_qps > 0.0 && tr.load_qps < tr.lambda_max);
        assert!(tr.mu > 0.0);
        // Dwell pending: Stay regardless of load, with the dwell reason —
        // and the trace still carries the quantities for the record.
        let (d, tr) = c.decide_explained(
            0,
            DeployMode::Iaas,
            now,
            now - SimDuration::from_secs(2),
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::Stay);
        assert_eq!(tr.reason, TickReason::DwellPending);
        assert!(tr.lambda_max > 0.0);
        // decide() is the explained verdict with the trace discarded.
        let d2 = c.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d2, Decision::SwitchToServerless);
    }

    /// Test stub: a forecaster pinned to one value regardless of input.
    struct FixedForecast(f64);

    impl Forecaster for FixedForecast {
        fn observe(&mut self, _t: SimTime, _lambda_qps: f64) {}
        fn predict(&self, _horizon: SimDuration) -> amoeba_forecast::ForecastInterval {
            amoeba_forecast::ForecastInterval::point(self.0)
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn proactive_cfg() -> ControllerConfig {
        ControllerConfig {
            proactive: Some(ProactiveConfig {
                up_horizon: SimDuration::from_secs(6),
                down_horizon: SimDuration::from_secs(3),
            }),
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn proactive_forecast_advances_the_switch_up() {
        // Serverless-resident at a tiny current load, but the forecast
        // says the rush arrives within the VM boot time: Amoeba-Pro
        // boots now, reactive Amoeba waits until the load is already
        // there.
        let mut c = DeploymentController::new(proactive_cfg());
        c.register(model_for(benchmarks::float()));
        let now = SimTime::from_secs(100);
        for i in 0..8 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 450));
        }
        let reactive = c.decide(
            0,
            DeployMode::Serverless,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(reactive, Decision::Stay, "no forecaster: reactive rule");
        c.attach_forecaster(0, Box::new(FixedForecast(200.0)));
        let (d, tr) = c.decide_explained(
            0,
            DeployMode::Serverless,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::SwitchToIaas);
        assert_eq!(tr.eval_qps, 200.0);
        assert!(tr.load_qps < 3.0, "current load still low: {}", tr.load_qps);
        let fc = tr.forecast.expect("forecast snapshot recorded");
        assert_eq!(fc.horizon, SimDuration::from_secs(6));
        assert_eq!(fc.hi, 200.0);
    }

    #[test]
    fn proactive_forecast_holds_a_doomed_switch_down() {
        // IaaS-resident, load momentarily low enough to switch down, but
        // the forecast upper bound at the prewarm horizon is above the
        // admission margin: stay — the pool would have to hand the
        // service straight back.
        let mut c = DeploymentController::new(proactive_cfg());
        c.register(model_for(benchmarks::float()));
        let now = SimTime::from_secs(100);
        for i in 0..8 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 450));
        }
        let reactive = c.decide(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(reactive, Decision::SwitchToServerless);
        c.attach_forecaster(0, Box::new(FixedForecast(200.0)));
        let (d, tr) = c.decide_explained(
            0,
            DeployMode::Iaas,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        assert_eq!(d, Decision::Stay);
        assert_eq!(tr.reason, TickReason::LoadAboveDownMargin);
        assert_eq!(
            tr.forecast.expect("snapshot").horizon,
            SimDuration::from_secs(3),
            "IaaS-resident decisions look ahead by the down horizon"
        );
    }

    #[test]
    fn observe_load_feeds_the_forecaster() {
        let mut c = DeploymentController::new(proactive_cfg());
        c.register(model_for(benchmarks::float()));
        c.attach_forecaster(0, Box::new(amoeba_forecast::Naive::new()));
        let now = SimTime::from_secs(100);
        for i in 0..8 {
            c.record_arrival(0, now - SimDuration::from_millis(i * 450));
        }
        c.observe_load(0, now);
        let (_, tr) = c.decide_explained(
            0,
            DeployMode::Serverless,
            now,
            SimTime::ZERO,
            [0.0; 3],
            CALIBRATED,
            &[],
        );
        let fc = tr.forecast.expect("snapshot");
        assert!(
            (fc.mean - tr.load_qps).abs() < 1e-9,
            "naive forecast echoes the observed load: {} vs {}",
            fc.mean,
            tr.load_qps
        );
        // Unchanged decision semantics: eval is the max of both.
        assert!((tr.eval_qps - tr.load_qps.max(fc.hi)).abs() < 1e-12);
    }

    #[test]
    fn admissible_load_is_the_self_consistent_fixed_point() {
        let c = controller_with(vec![benchmarks::dd()]);
        let env = [0.05, 0.15, 0.05];
        let lam = c.admissible_load(0, env, CALIBRATED);
        assert!(lam > 0.0, "dd must be admissible at mild pressure");
        // Just inside: the predicate holds at the pressure the load
        // itself creates.
        let p_in = c.adjust_pressures(0, env, lam * 0.98, OwnPressure::Added);
        assert!(
            lam * 0.98 <= c.lambda_max(0, p_in, CALIBRATED),
            "fixed point not satisfied from below"
        );
        // Just outside: it fails.
        let p_out = c.adjust_pressures(0, env, lam * 1.05, OwnPressure::Added);
        assert!(
            lam * 1.05 > c.lambda_max(0, p_out, CALIBRATED),
            "fixed point not binding from above"
        );
    }

    #[test]
    fn admissible_load_shrinks_with_environment_pressure() {
        let c = controller_with(vec![benchmarks::dd()]);
        let mut prev = f64::MAX;
        for io in [0.0, 0.2, 0.4, 0.6] {
            let lam = c.admissible_load(0, [0.0, io, 0.0], CALIBRATED);
            assert!(
                lam <= prev + 1e-9,
                "not monotone at io={io}: {lam} > {prev}"
            );
            prev = lam;
        }
    }

    #[test]
    fn admissible_load_zero_when_environment_already_violates() {
        // An IO-saturated pool cannot admit dd at any load.
        let c = controller_with(vec![benchmarks::dd()]);
        let lam = c.admissible_load(0, [0.0, 0.95, 0.0], CALIBRATED);
        assert_eq!(lam, 0.0);
    }

    #[test]
    fn cpu_pure_service_ignores_io_environment_in_admission() {
        let c = controller_with(vec![benchmarks::float()]);
        let clean = c.admissible_load(0, [0.0; 3], CALIBRATED);
        let io_storm = c.admissible_load(0, [0.0, 0.85, 0.0], CALIBRATED);
        assert!(
            (clean - io_storm).abs() / clean < 0.05,
            "float's admission moved under IO pressure: {clean} vs {io_storm}"
        );
    }
}
