//! The systems compared in the paper's evaluation (§VII).

/// Which system runs an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemVariant {
    /// Pure IaaS baseline — Nameko on peak-sized VMs, never switches.
    Nameko,
    /// Pure serverless baseline — everything in the shared OpenWhisk
    /// pool, never switches.
    OpenWhisk,
    /// The full system: controller + engine + monitor.
    Amoeba,
    /// Ablation (§VII-C): the monitor's PCA correction is disabled; the
    /// controller pessimistically accumulates per-resource degradations
    /// (uniform weights in Eq. 6), so it switches to serverless late.
    AmoebaNoM,
    /// Ablation (§VII-D): no container prewarming; on a switch to
    /// serverless, queries are routed immediately and eat cold starts.
    AmoebaNoP,
    /// Extension beyond the paper: the full system plus a load
    /// forecaster — switch decisions evaluate Eq. 5 against the upper
    /// forecast bound at the switch latency instead of the current load.
    AmoebaPro,
}

impl SystemVariant {
    /// All variants, in the order the paper's figures list them (the
    /// Amoeba-Pro extension appended last).
    pub const ALL: [SystemVariant; 6] = [
        SystemVariant::Amoeba,
        SystemVariant::Nameko,
        SystemVariant::OpenWhisk,
        SystemVariant::AmoebaNoM,
        SystemVariant::AmoebaNoP,
        SystemVariant::AmoebaPro,
    ];

    /// Display name as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            SystemVariant::Nameko => "Nameko",
            SystemVariant::OpenWhisk => "OpenWhisk",
            SystemVariant::Amoeba => "Amoeba",
            SystemVariant::AmoebaNoM => "Amoeba-NoM",
            SystemVariant::AmoebaNoP => "Amoeba-NoP",
            SystemVariant::AmoebaPro => "Amoeba-Pro",
        }
    }

    /// Does this variant ever switch deployment modes?
    pub fn switches(self) -> bool {
        !matches!(self, SystemVariant::Nameko | SystemVariant::OpenWhisk)
    }

    /// Does this variant use the PCA weight correction?
    pub fn uses_pca(self) -> bool {
        matches!(
            self,
            SystemVariant::Amoeba | SystemVariant::AmoebaNoP | SystemVariant::AmoebaPro
        )
    }

    /// Does this variant prewarm containers before switching?
    pub fn prewarms(self) -> bool {
        matches!(
            self,
            SystemVariant::Amoeba | SystemVariant::AmoebaNoM | SystemVariant::AmoebaPro
        )
    }

    /// Does this variant forecast load and decide proactively?
    pub fn proactive(self) -> bool {
        matches!(self, SystemVariant::AmoebaPro)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemVariant::Amoeba.label(), "Amoeba");
        assert_eq!(SystemVariant::AmoebaNoM.label(), "Amoeba-NoM");
        assert_eq!(SystemVariant::AmoebaNoP.label(), "Amoeba-NoP");
    }

    #[test]
    fn feature_matrix() {
        use SystemVariant::*;
        assert!(!Nameko.switches() && !OpenWhisk.switches());
        assert!(Amoeba.switches() && AmoebaNoM.switches() && AmoebaNoP.switches());
        assert!(Amoeba.uses_pca() && !AmoebaNoM.uses_pca());
        assert!(Amoeba.prewarms() && !AmoebaNoP.prewarms());
        // The ablations differ from Amoeba in exactly one feature each.
        assert!(AmoebaNoM.prewarms());
        assert!(AmoebaNoP.uses_pca());
        // Amoeba-Pro is Amoeba plus the forecaster, nothing removed.
        assert!(AmoebaPro.switches() && AmoebaPro.uses_pca() && AmoebaPro.prewarms());
        assert!(AmoebaPro.proactive());
        assert!(!Amoeba.proactive() && !AmoebaNoM.proactive() && !AmoebaNoP.proactive());
    }

    #[test]
    fn all_contains_every_variant_once() {
        let mut labels: Vec<&str> = SystemVariant::ALL.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
