//! N-dimensional contention monitor — the §VI-A production extension.
//!
//! "In our experiment, three resource dimensions were involved. In a
//! production environment, Cloud vendors may take more diverse resources
//! contention into consideration. PCA will significantly reduce the cost
//! of the training process" (§VI-A). The main pipeline is hard-wired to
//! the paper's three metered resources for clarity; this module is the
//! generalisation a vendor would deploy with additional meters (memory
//! bandwidth, L3, network PPS, …): one profiled curve per dimension,
//! pressure inversion, and PCA weight merging over an arbitrary number
//! of dimensions.

use crate::monitor::{median_filter, Monitor, MonitorConfig};
use amoeba_linalg::{Matrix, Pca};
use amoeba_meters::ProfileCurve;

/// A contention monitor over `R` arbitrary resource dimensions.
pub struct NdContentionMonitor {
    cfg: MonitorConfig,
    curves: Vec<ProfileCurve>,
    names: Vec<String>,
    smoothed_latency: Vec<Option<f64>>,
    recent: Vec<Vec<f64>>,
    heartbeats: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

impl NdContentionMonitor {
    /// A monitor with one named, profiled meter curve per dimension.
    /// Panics on empty input or mismatched lengths.
    pub fn new(cfg: MonitorConfig, meters: Vec<(String, ProfileCurve)>) -> Self {
        assert!(!meters.is_empty(), "need at least one dimension");
        let (names, curves): (Vec<_>, Vec<_>) = meters.into_iter().unzip();
        let r = curves.len();
        NdContentionMonitor {
            cfg,
            curves,
            names,
            smoothed_latency: vec![None; r],
            recent: vec![Vec::new(); r],
            heartbeats: Vec::new(),
            weights: vec![1.0; r],
        }
    }

    /// Number of monitored dimensions.
    pub fn dimensions(&self) -> usize {
        self.curves.len()
    }

    /// Dimension names, in weight order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Record one observed meter latency for dimension `r`.
    pub fn observe_meter_latency(&mut self, r: usize, latency_s: f64) {
        assert!(r < self.curves.len());
        if !(latency_s.is_finite() && latency_s > 0.0) {
            return;
        }
        let filtered = median_filter(&mut self.recent[r], self.cfg.median_window, latency_s);
        let s = &mut self.smoothed_latency[r];
        *s = Some(match *s {
            None => filtered,
            Some(prev) => prev + self.cfg.ewma_alpha * (filtered - prev),
        });
    }

    /// Current pressure estimate per dimension (curve inversion).
    pub fn pressures(&self) -> Vec<f64> {
        self.smoothed_latency
            .iter()
            .enumerate()
            .map(|(r, lat)| lat.map_or(0.0, |l| self.curves[r].pressure_at(l)))
            .collect()
    }

    /// Deliver one heartbeat: append the pressure vector and refresh the
    /// PCA weights.
    pub fn heartbeat(&mut self) {
        let p = self.pressures();
        self.heartbeats.push(p);
        if self.heartbeats.len() > self.cfg.pca_window {
            let excess = self.heartbeats.len() - self.cfg.pca_window;
            self.heartbeats.drain(0..excess);
        }
        self.refresh_weights();
    }

    fn refresh_weights(&mut self) {
        let r = self.curves.len();
        if !self.cfg.use_pca {
            self.weights = vec![1.0; r];
            return;
        }
        if self.heartbeats.len() < self.cfg.pca_min_samples {
            return;
        }
        let data = Matrix::from_nested(&self.heartbeats);
        if let Some(model) = Pca::default().fit(&data) {
            self.weights = model.variable_importance();
        }
    }

    /// The current Eq. 6-style weights, one per dimension (sum 1 once
    /// PCA is active).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The smoothed meter latencies in seconds, one per dimension
    /// (`None` where a meter has not reported yet).
    pub fn smoothed_latencies(&self) -> &[Option<f64>] {
        &self.smoothed_latency
    }

    /// Number of heartbeat samples currently in the PCA window.
    pub fn heartbeat_count(&self) -> usize {
        self.heartbeats.len()
    }

    /// How many principal components the last PCA retained — the
    /// "merge correlated variables into as few new variables as
    /// possible" count. `None` before enough heartbeats arrived.
    pub fn retained_components(&self) -> Option<usize> {
        if self.heartbeats.len() < self.cfg.pca_min_samples || !self.cfg.use_pca {
            return None;
        }
        let data = Matrix::from_nested(&self.heartbeats);
        Pca::default().fit(&data).map(|m| m.retained)
    }
}

impl Monitor for NdContentionMonitor {
    fn dimensions(&self) -> usize {
        NdContentionMonitor::dimensions(self)
    }
    fn observe_meter_latency(&mut self, resource: usize, latency_s: f64) {
        NdContentionMonitor::observe_meter_latency(self, resource, latency_s);
    }
    fn heartbeat(&mut self) {
        NdContentionMonitor::heartbeat(self);
    }
    fn pressure_vec(&self) -> Vec<f64> {
        self.pressures()
    }
    fn weight_vec(&self) -> Vec<f64> {
        self.weights().to_vec()
    }
    fn heartbeat_count(&self) -> usize {
        NdContentionMonitor::heartbeat_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(base: f64) -> ProfileCurve {
        ProfileCurve::from_sweep(vec![
            (0.0, base),
            (0.3, base * 1.3),
            (0.6, base * 2.0),
            (0.9, base * 6.0),
        ])
    }

    fn monitor(r: usize) -> NdContentionMonitor {
        let meters = (0..r)
            .map(|i| (format!("res{i}"), curve(0.05 + 0.01 * i as f64)))
            .collect();
        NdContentionMonitor::new(MonitorConfig::default(), meters)
    }

    /// Latency of the test curve at pressure u (linear segments).
    fn lat(base: f64, u: f64) -> f64 {
        let pts = [(0.0, 1.0), (0.3, 1.3), (0.6, 2.0), (0.9, 6.0)];
        for w in pts.windows(2) {
            if u <= w[1].0 {
                let f = (u - w[0].0) / (w[1].0 - w[0].0);
                return base * (w[0].1 * (1.0 - f) + w[1].1 * f);
            }
        }
        base * 6.0
    }

    #[test]
    fn construction_and_dimensions() {
        let m = monitor(5);
        assert_eq!(m.dimensions(), 5);
        assert_eq!(m.names().len(), 5);
        assert_eq!(m.pressures(), vec![0.0; 5]);
        assert_eq!(m.weights(), &[1.0; 5][..]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn rejects_zero_dimensions() {
        NdContentionMonitor::new(MonitorConfig::default(), Vec::new());
    }

    #[test]
    fn pressures_invert_per_dimension() {
        let mut m = monitor(4);
        for _ in 0..60 {
            m.observe_meter_latency(0, lat(0.05, 0.3));
            m.observe_meter_latency(2, lat(0.07, 0.6));
        }
        let p = m.pressures();
        assert!((p[0] - 0.3).abs() < 0.02, "{p:?}");
        assert_eq!(p[1], 0.0);
        assert!((p[2] - 0.6).abs() < 0.02, "{p:?}");
        assert_eq!(p[3], 0.0);
    }

    #[test]
    fn pca_merges_two_correlated_clusters_out_of_six_dimensions() {
        // Dimensions 0-2 move together (e.g. cpu / memory-bandwidth /
        // L3), dimensions 3-4 move together (disk / disk-iops), 5 idle.
        let mut m = monitor(6);
        for i in 0..120 {
            let a = ((i % 10) as f64 / 10.0) * 0.6;
            let b = (((i / 10) % 6) as f64 / 6.0) * 0.6;
            for r in 0..3 {
                m.observe_meter_latency(r, lat(0.05 + 0.01 * r as f64, a));
            }
            for r in 3..5 {
                m.observe_meter_latency(r, lat(0.05 + 0.01 * r as f64, b));
            }
            m.observe_meter_latency(5, lat(0.10, 0.01));
            m.heartbeat();
        }
        // Two independent clusters ⇒ PCA retains ~2 components despite
        // 6 dimensions: the §VI-A cost reduction.
        let retained = m.retained_components().unwrap();
        assert!(retained <= 3, "retained {retained} of 6");
        let w = m.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The idle dimension carries the least weight.
        let max_other = w[..5].iter().cloned().fold(0.0, f64::max);
        assert!(w[5] < max_other, "{w:?}");
    }

    #[test]
    fn three_dimensions_match_the_fixed_monitor_behaviour() {
        use crate::monitor::ContentionMonitor;
        let cfg = MonitorConfig::default();
        let fixed_curves = [curve(0.05), curve(0.06), curve(0.07)];
        let mut fixed = ContentionMonitor::new(cfg, fixed_curves.clone());
        let mut nd = NdContentionMonitor::new(
            cfg,
            fixed_curves
                .iter()
                .enumerate()
                .map(|(i, c)| (format!("r{i}"), c.clone()))
                .collect(),
        );
        for i in 0..80 {
            let u = [
                (i % 7) as f64 / 7.0 * 0.5,
                (i % 5) as f64 / 5.0 * 0.5,
                (i % 3) as f64 / 3.0 * 0.5,
            ];
            #[allow(clippy::needless_range_loop)] // r indexes two monitors + u
            for r in 0..3 {
                let l = lat(0.05 + 0.01 * r as f64, u[r]);
                fixed.observe_meter_latency(r, l);
                nd.observe_meter_latency(r, l);
            }
            fixed.heartbeat();
            nd.heartbeat();
        }
        let wf = fixed.weights();
        let wn = nd.weights();
        for r in 0..3 {
            assert!((wf[r] - wn[r]).abs() < 1e-9, "{wf:?} vs {wn:?}");
        }
        let pf = fixed.pressures();
        let pn = nd.pressures();
        for r in 0..3 {
            assert!((pf[r] - pn[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn median_filter_is_mirrored_from_the_fixed_monitor() {
        use crate::monitor::ContentionMonitor;
        let cfg = MonitorConfig {
            median_window: 3,
            ..Default::default()
        };
        let fixed_curves = [curve(0.05), curve(0.06), curve(0.07)];
        let mut fixed = ContentionMonitor::new(cfg, fixed_curves.clone());
        let mut nd = NdContentionMonitor::new(
            cfg,
            fixed_curves
                .iter()
                .enumerate()
                .map(|(i, c)| (format!("r{i}"), c.clone()))
                .collect(),
        );
        for i in 0..90 {
            // Every 11th sample is a wild outlier both filters must drop.
            let l = if i % 11 == 0 {
                2.5
            } else {
                lat(0.05, (i % 6) as f64 / 6.0 * 0.5)
            };
            for r in 0..3 {
                fixed.observe_meter_latency(r, l);
                nd.observe_meter_latency(r, l);
            }
        }
        let pf = fixed.pressures();
        let pn = nd.pressures();
        for r in 0..3 {
            assert!((pf[r] - pn[r]).abs() < 1e-12, "{pf:?} vs {pn:?}");
        }
    }

    #[test]
    fn no_pca_keeps_uniform_weights_at_any_dimension() {
        let cfg = MonitorConfig {
            use_pca: false,
            ..Default::default()
        };
        let meters = (0..8).map(|i| (format!("r{i}"), curve(0.05))).collect();
        let mut m = NdContentionMonitor::new(cfg, meters);
        for i in 0..50 {
            m.observe_meter_latency(i % 8, lat(0.05, 0.4));
            m.heartbeat();
        }
        assert_eq!(m.weights(), &[1.0; 8][..]);
        assert!(m.retained_components().is_none());
    }
}
