#![warn(missing_docs)]
//! Amoeba: the runtime system of the paper.
//!
//! Three components (§III, Fig. 6):
//!
//! * [`controller`] — the contention-aware deployment controller. Every
//!   control period it estimates each service's load, asks the monitor
//!   for the current platform pressure, predicts the per-container
//!   processing capacity `μ` (Eq. 6) from the profiled latency surfaces,
//!   evaluates the M/M/N discriminant `λ(μ)` (Eq. 5), and decides which
//!   deployment mode the service should be in.
//! * [`engine`] — the hybrid execution engine. Routes queries to the
//!   active platform, and on a switch first *prepares* the target side
//!   (prewarms Eq. 7's container count, or boots the VM group), waits
//!   for the acknowledgement, flips the router, and finally releases the
//!   old side after it drains (§V-B).
//! * [`monitor`] — the multi-resource contention monitor. Runs the three
//!   contention meters in the background, inverts their profiled curves
//!   into pressure estimates, aggregates heartbeat samples over the
//!   Eq. 8 sample period, and updates the Eq. 6 weights by PCA (§VI-A).
//!
//! [`runtime`] wires the components to the simulated platforms and runs
//! full experiments; [`baselines`] defines the comparison systems
//! (Nameko, OpenWhisk) and ablations (Amoeba-NoM, Amoeba-NoP).

pub mod baselines;
pub mod controller;
pub mod engine;
pub mod monitor;
pub mod monitor_nd;
pub mod profiler;
pub mod runtime;

pub use baselines::SystemVariant;
pub use controller::{ControllerConfig, Decision, DeployMode, DeploymentController};
pub use engine::{EngineAction, HybridEngine, RouteTarget};
pub use monitor::{
    median_filter, sample_period_lower_bound, ContentionMonitor, Monitor, MonitorConfig,
};
pub use monitor_nd::NdContentionMonitor;
pub use runtime::{
    BreakdownMeans, EpochRun, Experiment, ExperimentBuilder, RunResult, ServiceResult,
    ServiceSetup, WorkflowResult, WorkflowSetup,
};
