//! Offline profiling against the simulated platform (§IV-B step 1).
//!
//! The paper profiles each contention meter (and each microservice) by
//! actually running it on the serverless platform while sweeping the
//! pressure. The analytic builders in `amoeba-meters` use the
//! closed-form slowdown model directly; this module provides the
//! *empirical* path — drive the real (simulated) platform with a filler
//! workload that holds a target utilisation, probe with the subject
//! function, and measure. It validates that the closed forms and the
//! platform agree, and is the path a deployment against a real OpenWhisk
//! would use.

use amoeba_meters::{meter_for, LatencySurface, ProfileCurve};
use amoeba_platform::{
    ClusterEvent, Effect, Query, QueryId, ServerlessConfig, ServerlessPlatform, ServiceId,
};
use amoeba_sim::{Distributions, EventQueue, SimDuration, SimRng, SimTime};
use amoeba_workload::{DemandVector, MicroserviceSpec, ResourceKind};

/// A filler workload that stresses exactly one resource, used to hold the
/// pool at a target utilisation while a subject is probed.
fn filler_spec(resource: usize) -> MicroserviceSpec {
    let demand = match resource {
        0 => DemandVector {
            cpu_s: 0.5,
            mem_mb: 64.0,
            io_mb: 0.0,
            net_mb: 0.0,
        },
        1 => DemandVector {
            cpu_s: 0.002,
            mem_mb: 64.0,
            io_mb: 150.0,
            net_mb: 0.0,
        },
        _ => DemandVector {
            cpu_s: 0.002,
            mem_mb: 64.0,
            io_mb: 0.0,
            net_mb: 100.0,
        },
    };
    MicroserviceSpec {
        name: format!("filler_{resource}"),
        demand,
        qos_target_s: 30.0,
        qos_percentile: 0.95,
        peak_qps: 100.0,
        container_mem_mb: 256.0,
    }
}

/// Mean warm-hit latency (seconds) of `subject` probes while a filler
/// holds `pressure` utilisation on `resource`. Deterministic for a given
/// seed.
pub fn measure_latency_under_pressure(
    cfg: &ServerlessConfig,
    subject: &MicroserviceSpec,
    resource: usize,
    pressure: f64,
    probes: usize,
    seed: u64,
) -> f64 {
    assert!(resource < 3 && (0.0..1.0).contains(&pressure) && probes > 0);
    let mut platform = ServerlessPlatform::new(*cfg);
    let mut rng = SimRng::seed_from_u64(seed);
    let subject_id = platform.register(subject.clone());
    let filler = filler_spec(resource);
    let filler_id = platform.register(filler.clone());

    // Filler rate to hold the target utilisation.
    let capacity = match resource {
        0 => cfg.node.cores,
        1 => cfg.node.disk_bw_mbps,
        _ => cfg.node.nic_bw_mbps,
    };
    let per_query = match resource {
        0 => filler.demand.cpu_s,
        1 => filler.demand.io_mb,
        _ => filler.demand.net_mb,
    };
    // Per-invocation resource totals are work-conserving in the
    // platform, so the pool's utilisation is offered-load / capacity and
    // this rate lands exactly on the target pressure. Executions still
    // stretch under contention, so container residency (and the warm
    // pool we need) grows by the slowdown factor.
    let filler_qps = pressure * capacity / per_query;
    let kappa = cfg.slowdown_kappa[resource];
    let slowdown = 1.0 + kappa * pressure * pressure / (1.0 - pressure);
    let filler_busy_s = platform.solo_latency_seconds(filler_id) * slowdown;
    let filler_containers = ((filler_qps * filler_busy_s).ceil() as u32 + 4)
        .min(cfg.tenant_container_cap)
        .max(1);

    let t0 = SimTime::ZERO;
    // The pool needs one full (contention-stretched) busy period to ramp
    // to its steady concurrency before probes are representative.
    let warmup = SimDuration::from_secs(8) + SimDuration::from_secs_f64(3.0 * filler_busy_s);
    let probe_gap = SimDuration::from_millis(500);
    let horizon = t0 + warmup + probe_gap * (probes as u64 + 4);

    // Warm both tenants up front so probes measure contention, not cold
    // starts.
    let mut initial = platform.prewarm(subject_id, 2, t0, &mut rng);
    initial.extend(platform.prewarm(filler_id, filler_containers, t0, &mut rng));

    // Precompute both arrival schedules: filler at deterministic uniform
    // spacing (a steady pressure plateau, not Poisson noise), probes
    // every `probe_gap` after warmup.
    let mut arrivals: Vec<(SimTime, ServiceId, u64)> = Vec::new();
    if filler_qps > 0.0 {
        let gap = SimDuration::from_secs_f64(1.0 / filler_qps);
        let mut t = t0 + SimDuration::from_secs(2);
        let mut id = 0u64;
        while t < horizon {
            arrivals.push((t, filler_id, 1 << 40 | id));
            id += 1;
            t += gap;
        }
    }
    for k in 0..probes {
        let t = t0 + warmup + probe_gap * k as u64;
        arrivals.push((t, subject_id, k as u64));
    }
    arrivals.sort_by_key(|&(t, _, id)| (t, id));

    let mut queue: EventQueue<ClusterEvent> = EventQueue::new();
    let mut latencies: Vec<f64> = Vec::new();
    let absorb = |effects: Vec<Effect>,
                  now: SimTime,
                  queue: &mut EventQueue<ClusterEvent>,
                  latencies: &mut Vec<f64>| {
        for e in effects {
            match e {
                Effect::Schedule { after, event } => {
                    queue.push(now + after, event);
                }
                Effect::Completed(o)
                    if o.query.service == subject_id
                        && o.breakdown.cold_start == SimDuration::ZERO =>
                {
                    latencies.push(o.latency().as_secs_f64());
                }
                _ => {}
            }
        }
    };
    absorb(initial, t0, &mut queue, &mut latencies);

    // Single loop interleaving platform events and the arrival schedule.
    let mut next_arrival = 0usize;
    loop {
        let next_event_t = queue.peek_time();
        let next_arr_t = arrivals.get(next_arrival).map(|&(t, _, _)| t);
        let take_event = match (next_event_t, next_arr_t) {
            (None, None) => break,
            (Some(et), Some(at)) => et <= at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if take_event {
            let ev = queue.pop().unwrap();
            // Keep warm pools alive during the measurement window.
            if matches!(ev.payload, ClusterEvent::ContainerExpire { .. }) && ev.time < horizon {
                continue;
            }
            let eff = platform.handle(ev.payload, ev.time, &mut rng);
            absorb(eff, ev.time, &mut queue, &mut latencies);
        } else {
            let (t, sid, raw) = arrivals[next_arrival];
            next_arrival += 1;
            let q = Query {
                id: QueryId(raw),
                service: sid,
                submitted: t,
            };
            let eff = platform.submit(q, t, &mut rng);
            absorb(eff, t, &mut queue, &mut latencies);
        }
    }

    assert!(!latencies.is_empty(), "no warm probe completed");
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

/// Empirically profile a contention meter's latency-vs-pressure curve by
/// sweeping the platform (the measured counterpart of
/// [`ProfileCurve::analytic`]).
pub fn profile_meter_empirical(
    cfg: &ServerlessConfig,
    resource: usize,
    pressures: &[f64],
    probes: usize,
    seed: u64,
) -> ProfileCurve {
    let kind = [ResourceKind::Cpu, ResourceKind::Io, ResourceKind::Network][resource];
    let meter = meter_for(kind);
    let samples: Vec<(f64, f64)> = pressures
        .iter()
        .map(|&u| {
            (
                u,
                measure_latency_under_pressure(cfg, &meter, resource, u, probes, seed),
            )
        })
        .collect();
    ProfileCurve::from_sweep(samples)
}

/// Measured p95 latency of `subject` driven at `load_qps` while a filler
/// holds `pressure` on `resource` — one grid point of an empirical
/// latency surface (§IV-B: "adjust the loads of the microservice and the
/// pressure of the contention meter").
pub fn measure_p95_at_load(
    cfg: &ServerlessConfig,
    subject: &MicroserviceSpec,
    load_qps: f64,
    resource: usize,
    pressure: f64,
    window_s: f64,
    seed: u64,
) -> f64 {
    assert!(resource < 3 && (0.0..1.0).contains(&pressure));
    assert!(load_qps > 0.0 && window_s > 1.0);
    let mut platform = ServerlessPlatform::new(*cfg);
    let mut rng = SimRng::seed_from_u64(seed);
    let subject_id = platform.register(subject.clone());
    let filler = filler_spec(resource);
    let filler_id = platform.register(filler.clone());

    let capacity = match resource {
        0 => cfg.node.cores,
        1 => cfg.node.disk_bw_mbps,
        _ => cfg.node.nic_bw_mbps,
    };
    let per_query = match resource {
        0 => filler.demand.cpu_s,
        1 => filler.demand.io_mb,
        _ => filler.demand.net_mb,
    };
    let filler_qps = pressure * capacity / per_query;
    let kappa = cfg.slowdown_kappa[resource];
    let slowdown = 1.0 + kappa * pressure * pressure / (1.0 - pressure);
    let filler_busy_s = platform.solo_latency_seconds(filler_id) * slowdown;
    let filler_containers = ((filler_qps * filler_busy_s).ceil() as u32 + 4)
        .min(cfg.tenant_container_cap)
        .max(1);
    let subject_busy_s = platform.solo_latency_seconds(subject_id) * slowdown;
    let subject_containers = ((load_qps * subject_busy_s).ceil() as u32 + 2)
        .min(cfg.tenant_container_cap)
        .max(1);

    let t0 = SimTime::ZERO;
    let warmup = SimDuration::from_secs(6) + SimDuration::from_secs_f64(3.0 * filler_busy_s);
    let horizon = t0 + warmup + SimDuration::from_secs_f64(window_s);

    let mut initial = platform.prewarm(subject_id, subject_containers, t0, &mut rng);
    initial.extend(platform.prewarm(filler_id, filler_containers, t0, &mut rng));

    // Both streams at deterministic uniform spacing.
    let mut arrivals: Vec<(SimTime, ServiceId, u64)> = Vec::new();
    if filler_qps > 0.0 {
        let gap = SimDuration::from_secs_f64(1.0 / filler_qps);
        let mut t = t0 + SimDuration::from_secs(2);
        let mut id = 0u64;
        while t < horizon {
            arrivals.push((t, filler_id, (1 << 40) | id));
            id += 1;
            t += gap;
        }
    }
    {
        // Subject arrivals are Poisson — the M/M/N surface this grid
        // point is compared against assumes exponential inter-arrivals,
        // and deterministic spacing would queue far less (D/M/n).
        let mut t = t0 + warmup;
        let mut id = 0u64;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(load_qps));
            if t >= horizon {
                break;
            }
            arrivals.push((t, subject_id, id));
            id += 1;
        }
    }
    arrivals.sort_by_key(|&(t, _, id)| (t, id));

    let mut queue: EventQueue<ClusterEvent> = EventQueue::new();
    let mut recorder = amoeba_metrics::LatencyRecorder::new();
    let absorb = |effects: Vec<Effect>,
                  now: SimTime,
                  queue: &mut EventQueue<ClusterEvent>,
                  recorder: &mut amoeba_metrics::LatencyRecorder| {
        for e in effects {
            match e {
                Effect::Schedule { after, event } => {
                    queue.push(now + after, event);
                }
                Effect::Completed(o) if o.query.service.raw() == 0 => {
                    recorder.record(o.latency());
                }
                _ => {}
            }
        }
    };
    absorb(initial, t0, &mut queue, &mut recorder);
    let mut next_arrival = 0usize;
    loop {
        let next_event_t = queue.peek_time();
        let next_arr_t = arrivals.get(next_arrival).map(|&(t, _, _)| t);
        let take_event = match (next_event_t, next_arr_t) {
            (None, None) => break,
            (Some(et), Some(at)) => et <= at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if take_event {
            let ev = queue.pop().unwrap();
            if matches!(ev.payload, ClusterEvent::ContainerExpire { .. }) && ev.time < horizon {
                continue;
            }
            let eff = platform.handle(ev.payload, ev.time, &mut rng);
            absorb(eff, ev.time, &mut queue, &mut recorder);
        } else {
            let (t, sid, raw) = arrivals[next_arrival];
            next_arrival += 1;
            let q = Query {
                id: QueryId(raw),
                service: sid,
                submitted: t,
            };
            let eff = platform.submit(q, t, &mut rng);
            absorb(eff, t, &mut queue, &mut recorder);
        }
    }
    recorder
        .quantile(subject.qos_percentile)
        .expect("subject queries completed")
        .as_secs_f64()
}

/// Empirically build a full latency surface by measurement — the
/// measured counterpart of [`LatencySurface::analytic`] and the paper's
/// offline profiling step for Fig. 9. Expensive: one simulation per grid
/// point.
pub fn latency_surface_empirical(
    cfg: &ServerlessConfig,
    subject: &MicroserviceSpec,
    resource: usize,
    loads: Vec<f64>,
    pressures: Vec<f64>,
    window_s: f64,
    seed: u64,
) -> LatencySurface {
    let values: Vec<Vec<f64>> = loads
        .iter()
        .map(|&load| {
            pressures
                .iter()
                .map(|&u| measure_p95_at_load(cfg, subject, load, resource, u, window_s, seed))
                .collect()
        })
        .collect();
    LatencySurface::from_grid(loads, pressures, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_workload::benchmarks;

    fn quiet_cfg() -> ServerlessConfig {
        ServerlessConfig {
            exec_jitter_sigma: 0.0,
            tenant_container_cap: 2000,
            pool_memory_mb: 512.0 * 1024.0,
            ..Default::default()
        }
    }

    #[test]
    fn zero_pressure_matches_solo_latency() {
        let cfg = quiet_cfg();
        let spec = benchmarks::float();
        let measured = measure_latency_under_pressure(&cfg, &spec, 0, 0.0, 20, 7);
        let mut p2 = ServerlessPlatform::new(cfg);
        let sid = p2.register(spec);
        let solo = p2.solo_latency_seconds(sid);
        assert!(
            (measured - solo).abs() / solo < 0.1,
            "measured {measured} vs solo {solo}"
        );
    }

    #[test]
    fn latency_grows_with_pressure() {
        let cfg = quiet_cfg();
        let spec = benchmarks::float();
        let low = measure_latency_under_pressure(&cfg, &spec, 0, 0.1, 15, 7);
        let high = measure_latency_under_pressure(&cfg, &spec, 0, 0.7, 15, 7);
        assert!(high > low * 1.3, "low {low} high {high}");
    }

    #[test]
    fn io_pressure_does_not_hurt_cpu_bound_subject() {
        let cfg = quiet_cfg();
        let spec = benchmarks::float(); // no IO phase
        let idle = measure_latency_under_pressure(&cfg, &spec, 1, 0.0, 15, 7);
        let pressed = measure_latency_under_pressure(&cfg, &spec, 1, 0.7, 15, 7);
        assert!(
            (pressed - idle).abs() / idle < 0.15,
            "idle {idle} pressed {pressed}"
        );
    }

    #[test]
    fn p95_at_load_grows_with_both_axes() {
        let cfg = quiet_cfg();
        let spec = benchmarks::float();
        let base = measure_p95_at_load(&cfg, &spec, 2.0, 0, 0.0, 20.0, 7);
        let loaded = measure_p95_at_load(&cfg, &spec, 40.0, 0, 0.0, 20.0, 7);
        let pressed = measure_p95_at_load(&cfg, &spec, 2.0, 0, 0.6, 20.0, 7);
        assert!(loaded >= base * 0.95, "load axis: {base} -> {loaded}");
        assert!(pressed > base * 1.2, "pressure axis: {base} -> {pressed}");
    }

    #[test]
    fn empirical_surface_matches_analytic_shape() {
        let cfg = quiet_cfg();
        let spec = benchmarks::float();
        let loads = vec![2.0, 20.0];
        let pressures = vec![0.0, 0.5];
        let measured =
            latency_surface_empirical(&cfg, &spec, 0, loads.clone(), pressures.clone(), 20.0, 11);
        let phases = [
            spec.demand.cpu_s,
            spec.demand.io_mb / cfg.per_flow_io_mbps,
            spec.demand.net_mb / cfg.per_flow_net_mbps,
        ];
        let overhead = cfg.auth_s
            + cfg.code_load_base_s
            + cfg.code_load_s_per_mb * spec.demand.mem_mb
            + cfg.result_post_s;
        let analytic = LatencySurface::analytic(
            phases,
            overhead,
            0,
            cfg.slowdown_kappa[0],
            cfg.tenant_container_cap,
            spec.qos_percentile,
            loads.clone(),
            pressures.clone(),
        );
        for &l in &loads {
            for &u in &pressures {
                let m = measured.predict(l, u);
                let a = analytic.predict(l, u);
                assert!(
                    (m - a).abs() / a < 0.4,
                    "at ({l}, {u}): measured {m} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn empirical_meter_curve_roughly_matches_analytic() {
        let cfg = quiet_cfg();
        let pressures = vec![0.0, 0.3, 0.6];
        let measured = profile_meter_empirical(&cfg, 0, &pressures, 15, 11);
        let meter = meter_for(ResourceKind::Cpu);
        let phases = [
            meter.demand.cpu_s,
            meter.demand.io_mb / cfg.per_flow_io_mbps,
            meter.demand.net_mb / cfg.per_flow_net_mbps,
        ];
        let overhead = cfg.auth_s
            + cfg.code_load_base_s
            + cfg.code_load_s_per_mb * meter.demand.mem_mb
            + cfg.result_post_s;
        let analytic = ProfileCurve::analytic(phases, 0, overhead, cfg.slowdown_kappa[0], 0.95, 20);
        for &u in &pressures {
            let m = measured.latency_at(u);
            let a = analytic.latency_at(u);
            assert!(
                (m - a).abs() / a < 0.25,
                "at u={u}: measured {m} vs analytic {a}"
            );
        }
    }
}
