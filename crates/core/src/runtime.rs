// Indexing `0..3` over the fixed [cpu, io, net] resource axes reads
// better than zipped iterators here.
#![allow(clippy::needless_range_loop)]

//! The experiment runtime: wires the controller, engine and monitor to
//! the simulated platforms and runs a full workload.
//!
//! One [`Experiment`] describes a scenario — which services run, their
//! diurnal traces, which [`SystemVariant`] manages them — and
//! [`Experiment::run`] executes it deterministically for the given seed,
//! producing per-service latency recordings, resource-usage integrals
//! and the timelines behind the paper's figures.

use crate::baselines::SystemVariant;
use crate::controller::{
    prewarm_count, ControllerConfig, Decision, DecisionTrace, DeployMode, DeploymentController,
    ProactiveConfig, ServiceModel,
};
use crate::engine::{
    dispatch_actions, DeadlineAction, EngineAction, HybridEngine, PlatformCommands, RouteTarget,
};
use crate::monitor::{sample_period_lower_bound, ContentionMonitor, MonitorConfig};
use amoeba_chaos::{BootOutcome, FaultInjector, FaultPlan, TimedFault};
use amoeba_forecast::HoltWintersDiurnal;
use amoeba_meters::{cpu_meter, io_meter, net_meter, LatencySurface, ProfileCurve, METER_QPS};
use amoeba_metrics::{BillableUsage, LatencyRecorder, TimeSeries, UsageMeter, UsageSummary};
use amoeba_platform::{
    ClusterEvent, Effect, ExecutedOn, IaasConfig, IaasPlatform, LatencyBreakdown, Query, QueryId,
    ServerlessConfig, ServerlessPlatform, ServiceId,
};
use amoeba_sim::{EventQueue, SimDuration, SimRng, SimTime};
use amoeba_telemetry::{
    FaultKind, FaultRecord, ForecastRecord, HeartbeatRecord, MemorySink, NoopSink, RecoveryKind,
    RecoveryRecord, ServiceInfo, SwitchPhase, SwitchRecord, TelemetryEvent, TelemetrySink,
    TickReason, TickRecord, Trace, ViolationCause, ViolationRecord, WarmSampleRecord,
};
use amoeba_workload::{ArrivalProcess, LoadTrace, MicroserviceSpec, PoissonArrivals};
use std::collections::BTreeMap;

/// Shadow queries (§III step 1: queries mirrored to the serverless
/// platform while a service runs on IaaS, to keep the calibration fed)
/// carry this bit in their id and are excluded from QoS accounting.
const SHADOW_BIT: u64 = 1 << 63;

/// Chaos-injected pressure-spike queries carry this marker in bits
/// 48..56 of their id (shadow calibration traffic uses `0xFF` there).
/// They exist only to load the shared pool and are excluded from every
/// account, calibration included.
const SPIKE_MARK: u64 = 0xFE;

/// How long the runtime waits for the old IaaS side's `IaasDrained`
/// ack after a switch completes before forcibly reclaiming the group.
/// The §V shutdown step must terminate even if completions are lost.
const DRAIN_TIMEOUT_S: f64 = 60.0;

/// Emit the tick's forecast as a telemetry event, when the decision
/// carried one (proactive variants with an attached forecaster only).
/// `realized_qps` stays `None` here — only the report layer, replaying
/// the trace after the fact, knows what λ turned out to be.
fn record_forecast(sink: &mut dyn TelemetrySink, now: SimTime, idx: usize, tr: &DecisionTrace) {
    if let Some(fc) = tr.forecast {
        sink.record(TelemetryEvent::Forecast(ForecastRecord {
            t: now,
            service: idx,
            horizon_s: fc.horizon.as_secs_f64(),
            mean_qps: fc.mean,
            lo_qps: fc.lo,
            hi_qps: fc.hi,
            realized_qps: None,
        }));
    }
}

/// One service in an experiment.
pub struct ServiceSetup {
    /// The microservice.
    pub spec: MicroserviceSpec,
    /// Its load trace.
    pub trace: LoadTrace,
    /// Background services are pinned to the serverless platform and
    /// exist to create contention (§VII-A: float, dd and cloud_stor run
    /// "with a lower peak load as the background service").
    pub background: bool,
}

/// A full experiment description.
pub struct Experiment {
    /// Serverless platform configuration.
    pub serverless_cfg: ServerlessConfig,
    /// IaaS platform configuration.
    pub iaas_cfg: IaasConfig,
    /// Controller tuning.
    pub controller_cfg: ControllerConfig,
    /// Monitor tuning.
    pub monitor_cfg: MonitorConfig,
    /// Which system manages the services.
    pub variant: SystemVariant,
    /// The services and their traces.
    pub services: Vec<ServiceSetup>,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// Time at the start excluded from latency/QoS accounting (VM boot
    /// and calibration transients).
    pub warmup: SimDuration,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Controller tick period.
    pub control_period: SimDuration,
    /// Usage/timeline sampling period.
    pub usage_sample_period: SimDuration,
    /// Run the background contention meters (disable to measure their
    /// overhead by difference).
    pub run_meters: bool,
    /// Multiplier on the Eq. 7 prewarm count (1.0 = the paper's rule;
    /// the prewarm ablation sweeps this to expose §V-A's tradeoff:
    /// too few containers → cold-start violations, too many → wasted
    /// resources).
    pub prewarm_factor: f64,
    /// Optional deterministic fault plan. `None` (the default) runs
    /// fault-free and is bit-identical to a run without the chaos
    /// subsystem: the injector draws from its own RNG stream, so it
    /// never perturbs arrival or platform randomness.
    pub fault_plan: Option<FaultPlan>,
    /// How long the engine waits for a prewarm/boot ack before its
    /// first retry (the per-retry deadline doubles).
    pub ack_timeout: SimDuration,
    /// Ack retries before a switch is rolled back as `Aborted`.
    pub max_ack_retries: u32,
}

impl Experiment {
    /// Start describing an experiment. The three arguments every run
    /// needs are taken up front; everything else defaults and can be
    /// overridden fluently:
    ///
    /// ```ignore
    /// let exp = Experiment::builder(SystemVariant::Amoeba, horizon, 42)
    ///     .service(setup)
    ///     .prewarm_factor(1.5)
    ///     .build();
    /// ```
    pub fn builder(variant: SystemVariant, horizon: SimDuration, seed: u64) -> ExperimentBuilder {
        ExperimentBuilder {
            inner: Experiment {
                serverless_cfg: ServerlessConfig::default(),
                iaas_cfg: IaasConfig::default(),
                controller_cfg: ControllerConfig::default(),
                monitor_cfg: MonitorConfig::default(),
                variant,
                services: Vec::new(),
                horizon,
                warmup: SimDuration::from_secs(20),
                seed,
                control_period: SimDuration::from_secs(1),
                usage_sample_period: SimDuration::from_millis(500),
                run_meters: true,
                prewarm_factor: 1.0,
                fault_plan: None,
                ack_timeout: SimDuration::from_secs(30),
                max_ack_retries: 2,
            },
        }
    }
}

/// Fluent constructor for [`Experiment`], from [`Experiment::builder`].
///
/// Field-by-field struct updates made every new experiment knob a
/// breaking change at each call site; the builder keeps construction
/// stable as knobs accrue. Setters may be called in any order and
/// later calls win.
pub struct ExperimentBuilder {
    inner: Experiment,
}

impl ExperimentBuilder {
    /// Add one service to the scenario (in registration order).
    pub fn service(mut self, setup: ServiceSetup) -> Self {
        self.inner.services.push(setup);
        self
    }

    /// Add a batch of services (appended after any added so far).
    pub fn services(mut self, setups: Vec<ServiceSetup>) -> Self {
        self.inner.services.extend(setups);
        self
    }

    /// Override the serverless platform configuration.
    pub fn serverless_cfg(mut self, cfg: ServerlessConfig) -> Self {
        self.inner.serverless_cfg = cfg;
        self
    }

    /// Override the IaaS platform configuration.
    pub fn iaas_cfg(mut self, cfg: IaasConfig) -> Self {
        self.inner.iaas_cfg = cfg;
        self
    }

    /// Override the controller tuning.
    pub fn controller_cfg(mut self, cfg: ControllerConfig) -> Self {
        self.inner.controller_cfg = cfg;
        self
    }

    /// Override the monitor tuning.
    pub fn monitor_cfg(mut self, cfg: MonitorConfig) -> Self {
        self.inner.monitor_cfg = cfg;
        self
    }

    /// Time at the start excluded from latency/QoS accounting.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.inner.warmup = warmup;
        self
    }

    /// Controller tick period.
    pub fn control_period(mut self, period: SimDuration) -> Self {
        self.inner.control_period = period;
        self
    }

    /// Usage/timeline sampling period.
    pub fn usage_sample_period(mut self, period: SimDuration) -> Self {
        self.inner.usage_sample_period = period;
        self
    }

    /// Run (or disable) the background contention meters.
    pub fn run_meters(mut self, run: bool) -> Self {
        self.inner.run_meters = run;
        self
    }

    /// Multiplier on the Eq. 7 prewarm count.
    pub fn prewarm_factor(mut self, factor: f64) -> Self {
        self.inner.prewarm_factor = factor;
        self
    }

    /// Attach a deterministic fault plan (see [`amoeba_chaos`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.inner.fault_plan = Some(plan);
        self
    }

    /// Override the switch-protocol ack deadline policy: the first
    /// retry fires `timeout` after the request (doubling per retry),
    /// and after `max_retries` retries the switch is rolled back.
    pub fn ack_policy(mut self, timeout: SimDuration, max_retries: u32) -> Self {
        self.inner.ack_timeout = timeout;
        self.inner.max_ack_retries = max_retries;
        self
    }

    /// Finish: the described experiment, ready to [`Experiment::run`].
    pub fn build(self) -> Experiment {
        self.inner
    }
}

/// Mean serverless latency breakdown (warm executions only) — Fig. 4.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BreakdownMeans {
    /// Samples aggregated.
    pub count: usize,
    /// Mean auth/processing overhead, s.
    pub auth_s: f64,
    /// Mean code-loading overhead, s.
    pub code_load_s: f64,
    /// Mean result-posting overhead, s.
    pub result_post_s: f64,
    /// Mean execution time, s.
    pub exec_s: f64,
    /// Mean queueing time, s.
    pub queue_s: f64,
}

impl BreakdownMeans {
    fn add(&mut self, b: &LatencyBreakdown) {
        let n = self.count as f64;
        let upd = |mean: &mut f64, v: f64| *mean = (*mean * n + v) / (n + 1.0);
        upd(&mut self.auth_s, b.auth.as_secs_f64());
        upd(&mut self.code_load_s, b.code_load.as_secs_f64());
        upd(&mut self.result_post_s, b.result_post.as_secs_f64());
        upd(&mut self.exec_s, b.exec.as_secs_f64());
        upd(&mut self.queue_s, b.queue_wait.as_secs_f64());
        self.count += 1;
    }

    /// Rebuild the Fig. 4 means from a telemetry trace's warm samples.
    /// Uses the same incremental fold as the in-run accumulation, so for
    /// a full-run trace the values are bit-identical to
    /// [`ServiceResult::breakdown`].
    pub fn from_warm_samples<'a>(samples: impl Iterator<Item = &'a WarmSampleRecord>) -> Self {
        let mut out = BreakdownMeans::default();
        for s in samples {
            let n = out.count as f64;
            let upd = |mean: &mut f64, v: f64| *mean = (*mean * n + v) / (n + 1.0);
            upd(&mut out.auth_s, s.auth_s);
            upd(&mut out.code_load_s, s.code_load_s);
            upd(&mut out.result_post_s, s.result_post_s);
            upd(&mut out.exec_s, s.exec_s);
            out.count += 1;
        }
        out
    }

    /// The Fig. 4 overhead share: (auth + code load + post) / total
    /// (queueing excluded, as in the paper's breakdown experiment).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.auth_s + self.code_load_s + self.result_post_s + self.exec_s;
        if total <= 0.0 {
            return 0.0;
        }
        (self.auth_s + self.code_load_s + self.result_post_s) / total
    }
}

/// Per-service results of a run.
pub struct ServiceResult {
    /// Service name.
    pub name: String,
    /// Was it a background service?
    pub background: bool,
    /// QoS target, seconds.
    pub qos_target_s: f64,
    /// QoS percentile.
    pub qos_percentile: f64,
    /// All end-to-end latencies (post-warmup).
    pub latency: LatencyRecorder,
    /// Resource usage integrals.
    pub usage: UsageSummary,
    /// Deploy-mode switches: (time, new mode, load at switch) — Fig. 12.
    pub switch_history: Vec<(SimTime, DeployMode, f64)>,
    /// Estimated load over time.
    pub load_timeline: TimeSeries<f64>,
    /// Allocated cores over time — Fig. 13.
    pub cores_timeline: TimeSeries<f64>,
    /// Allocated memory (MB) over time — Fig. 13.
    pub mem_timeline: TimeSeries<f64>,
    /// Deploy mode over time (0 = IaaS, 1 = serverless).
    pub mode_timeline: TimeSeries<f64>,
    /// Mean serverless warm-execution breakdown — Fig. 4.
    pub breakdown: BreakdownMeans,
    /// Queries submitted (post-warmup).
    pub submitted: usize,
    /// Queries completed (post-warmup submissions).
    pub completed: usize,
    /// Queries explicitly lost to injected faults (post-warmup): a
    /// container crash whose in-flight query was dropped rather than
    /// re-queued. Always zero without a fault plan; conservation is
    /// `submitted == completed + failed`.
    pub failed: usize,
    /// Completed queries that executed on the serverless platform.
    pub serverless_queries: usize,
    /// Serverless-executed queries over the QoS target — where cold
    /// starts and pool contention land (Fig. 16's effect lives here).
    pub serverless_violations: usize,
    /// Billing-relevant aggregates split by platform (IaaS rent vs
    /// per-invocation serverless), for the maintainer-cost experiments.
    pub billable: BillableUsage,
}

impl ServiceResult {
    /// Fraction of queries over the QoS target.
    pub fn violation_ratio(&self) -> f64 {
        self.latency
            .violation_ratio(SimDuration::from_secs_f64(self.qos_target_s))
    }

    /// Violation ratio among serverless-executed queries only.
    pub fn serverless_violation_ratio(&self) -> f64 {
        if self.serverless_queries == 0 {
            return 0.0;
        }
        self.serverless_violations as f64 / self.serverless_queries as f64
    }

    /// The r-ile latency in seconds (r = the spec's QoS percentile).
    pub fn qos_latency(&mut self) -> Option<f64> {
        let q = self.qos_percentile;
        self.latency.quantile(q).map(|d| d.as_secs_f64())
    }

    /// Does the run meet the paper's QoS definition (r-ile ≤ target)?
    pub fn qos_met(&mut self) -> bool {
        match self.qos_latency() {
            Some(l) => l <= self.qos_target_s,
            None => true,
        }
    }
}

/// The result of one experiment run.
pub struct RunResult {
    /// Which system ran.
    pub variant: SystemVariant,
    /// Per-service results, in the order of [`Experiment::services`].
    pub services: Vec<ServiceResult>,
    /// Mean CPU fraction of the node consumed by the three contention
    /// meters (§VII-E overhead accounting).
    pub meter_cpu_overhead: f64,
    /// Final Eq. 6 weights.
    pub final_weights: [f64; 3],
    /// Mean measured pressures over the run.
    pub mean_pressures: [f64; 3],
    /// Total cold starts on the serverless platform.
    pub cold_starts: u64,
    /// Final per-service calibration gains (diagnostics).
    pub final_gains: Vec<f64>,
    /// The simulated horizon.
    pub horizon: SimDuration,
    /// Prewarmed containers thrown away by ack-deadline retries and
    /// rollbacks (each retry re-issues the full prewarm).
    pub wasted_prewarms: u64,
    /// Switches rolled back (`Aborted`) after exhausting ack retries.
    pub failed_switches: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Platform(ClusterEvent),
    Arrival {
        idx: usize,
    },
    MeterArrival {
        meter: usize,
    },
    ControlTick,
    Heartbeat,
    UsageSample,
    /// A scheduled fault fires (only present when a plan is attached).
    Chaos(TimedFault),
    /// One query of an injected pressure spike arrives.
    SpikeQuery {
        sid: ServiceId,
    },
}

struct ServiceRt {
    sid: ServiceId,
    background: bool,
    pinned: bool,
    arrivals: PoissonArrivals,
    exhausted: bool,
    recorder: LatencyRecorder,
    usage: UsageMeter,
    load_timeline: TimeSeries<f64>,
    cores_timeline: TimeSeries<f64>,
    mem_timeline: TimeSeries<f64>,
    mode_timeline: TimeSeries<f64>,
    breakdown: BreakdownMeans,
    submitted: usize,
    completed: usize,
    failed: usize,
    serverless_queries: usize,
    serverless_violations: usize,
    billable: BillableUsage,
    next_query_id: u64,
}

/// Mutable chaos bookkeeping for one run, present only when a
/// [`FaultPlan`] is attached. Everything here is driven by the
/// injector's private RNG stream, so attaching a no-op plan leaves the
/// run bit-identical to a plan-free one.
struct ChaosRt {
    injector: FaultInjector,
    /// Meter heartbeats completing before this time are silently lost.
    meter_outage_until: [SimTime; 3],
    /// Pending one-shot latency corruptions per meter.
    meter_outlier_pending: [u32; 3],
    /// Queries re-queued after a container crash, keyed by
    /// (service, query id) — per-service query ids collide across
    /// services — with the time of the first crash, for recovery-time
    /// accounting.
    crash_requeued: BTreeMap<(u32, u64), SimTime>,
    /// First failed/slow boot per service since the last healthy one.
    boot_fault_since: Vec<Option<SimTime>>,
    /// Id counter for injected spike queries.
    spike_next_id: u64,
}

/// Handle the chaos-owned completions: spike traffic (swallowed
/// whole), meter heartbeats lost in an outage window, and meter
/// samples corrupted by a pending outlier. Returns true when the
/// outcome must not reach the normal accounting path.
fn chaos_completion(
    ch: &mut ChaosRt,
    outcome: &amoeba_platform::QueryOutcome,
    now: SimTime,
    meter_ids: &[ServiceId; 3],
    monitor: &mut ContentionMonitor,
) -> bool {
    let raw = outcome.query.id.raw();
    if raw & SHADOW_BIT != 0 && (raw >> 48) & 0xFF == SPIKE_MARK {
        return true;
    }
    if let Some(m) = meter_ids.iter().position(|&x| x == outcome.query.service) {
        if now < ch.meter_outage_until[m] {
            return true; // heartbeat lost in the blackout
        }
        if ch.meter_outlier_pending[m] > 0 {
            ch.meter_outlier_pending[m] -= 1;
            let factor = ch.injector.plan().outlier_factor;
            monitor.observe_meter_latency(m, outcome.latency().as_secs_f64() * factor);
            return true;
        }
    }
    false
}

/// Arm the drain watchdog for every `ReleaseVms` among `actions`: if
/// the group's `IaasDrained` ack never arrives, the first control tick
/// past the deadline reclaims it forcibly.
fn note_vm_releases(
    actions: &[EngineAction],
    now: SimTime,
    drain_deadline: &mut [Option<SimTime>],
) {
    for a in actions {
        if let EngineAction::ReleaseVms { service } = a {
            let idx = service.raw() as usize;
            if idx < drain_deadline.len() {
                drain_deadline[idx] = Some(now + SimDuration::from_secs_f64(DRAIN_TIMEOUT_S));
            }
        }
    }
}

impl Experiment {
    /// Execute the experiment with telemetry disabled. Identical to
    /// [`Experiment::run_with_sink`] with a [`NoopSink`] — same seeds,
    /// same decisions, same results.
    pub fn run(&self) -> RunResult {
        self.run_with_sink(&mut NoopSink)
    }

    /// Execute the experiment recording the full telemetry stream in
    /// memory, returning it as a [`Trace`] alongside the results.
    pub fn run_traced(&self) -> (RunResult, Trace) {
        let mut sink = MemorySink::new();
        let result = self.run_with_sink(&mut sink);
        (result, sink.into_trace())
    }

    /// Execute the experiment, streaming telemetry events into `sink`.
    ///
    /// Every emission is guarded by [`TelemetrySink::enabled`], so a
    /// disabled sink costs one inlined boolean check per site and no
    /// allocation; the event stream never feeds back into the run, so
    /// results are bit-identical whatever sink is attached.
    pub fn run_with_sink(&self, sink: &mut dyn TelemetrySink) -> RunResult {
        let mut master_rng = SimRng::seed_from_u64(self.seed);
        let mut platform_rng = master_rng.fork();
        let mut iaas_rng = master_rng.fork();

        let mut serverless = ServerlessPlatform::new(self.serverless_cfg);
        let mut iaas = IaasPlatform::new(self.iaas_cfg);
        // Proactive variants look ahead by exactly the switch latency in
        // each direction: a switch up waits on the VM boot, a switch
        // down on the container prewarm, and either decision lands one
        // control period after it is made.
        let mut controller_cfg = self.controller_cfg;
        if self.variant.proactive() && controller_cfg.proactive.is_none() {
            controller_cfg.proactive = Some(ProactiveConfig {
                up_horizon: SimDuration::from_secs_f64(self.iaas_cfg.boot_time_s)
                    + self.control_period,
                down_horizon: SimDuration::from_secs_f64(self.serverless_cfg.cold_start_median_s)
                    + self.control_period,
            });
        }
        let mut controller = DeploymentController::new(controller_cfg);

        let n_max = self
            .serverless_cfg
            .tenant_container_cap
            .min(self.serverless_cfg.memory_container_cap());
        let caps = [
            self.serverless_cfg.node.cores,
            self.serverless_cfg.node.disk_bw_mbps,
            self.serverless_cfg.node.nic_bw_mbps,
        ];

        // Register every service on both platforms (ids must align) and
        // build its controller model from analytic profiling.
        let mut services: Vec<ServiceRt> = Vec::new();
        for setup in &self.services {
            let sid = serverless.register(setup.spec.clone());
            let iid = iaas.register(setup.spec.clone());
            assert_eq!(sid, iid, "platform id mismatch");
            let phases = serverless.service_phases(sid);
            let overhead = serverless.overhead_seconds(sid);
            let l0 = serverless.solo_latency_seconds(sid);
            let rates = serverless.service_rates(sid);
            let rate_arr = [rates.cpu_cores, rates.io_mbps, rates.net_mbps];
            let mut loads: Vec<f64> = vec![
                0.5,
                setup.spec.peak_qps * 0.25,
                setup.spec.peak_qps * 0.5,
                setup.spec.peak_qps * 0.75,
                setup.spec.peak_qps,
                setup.spec.peak_qps * 1.25,
            ];
            loads.sort_by(|a, b| a.partial_cmp(b).unwrap());
            loads.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            let pressures = vec![0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9];
            let surfaces: [LatencySurface; 3] = [0, 1, 2].map(|r| {
                LatencySurface::analytic(
                    phases,
                    overhead,
                    r,
                    self.serverless_cfg.slowdown_kappa[r],
                    n_max,
                    setup.spec.qos_percentile,
                    loads.clone(),
                    pressures.clone(),
                )
            });
            let util_per_qps = [0, 1, 2].map(|r| l0 * rate_arr[r] / caps[r]);
            let idx = controller.register(ServiceModel {
                spec: setup.spec.clone(),
                l0_s: l0,
                surfaces,
                util_per_qps,
                n_max,
            });
            if self.variant.proactive() && !setup.background {
                // Seasonal buckets at roughly half the tick cadence keep
                // several observations per bucket while still resolving
                // the diurnal shoulders.
                let day_s = setup.trace.day_seconds();
                let control_s = self.control_period.as_secs_f64().max(1e-3);
                let buckets = ((day_s / control_s / 2.0).round() as usize).clamp(24, 240);
                controller.attach_forecaster(
                    idx,
                    Box::new(HoltWintersDiurnal::new(
                        SimDuration::from_secs_f64(day_s),
                        buckets,
                    )),
                );
            }
            let arrivals = PoissonArrivals::from_trace(
                setup.trace.clone(),
                SimTime::ZERO + self.horizon,
                master_rng.fork(),
            );
            let pinned = setup.background || !self.variant.switches();
            services.push(ServiceRt {
                sid,
                background: setup.background,
                pinned,
                arrivals,
                exhausted: false,
                recorder: LatencyRecorder::new(),
                usage: UsageMeter::new(10.0),
                load_timeline: TimeSeries::new(),
                cores_timeline: TimeSeries::new(),
                mem_timeline: TimeSeries::new(),
                mode_timeline: TimeSeries::new(),
                breakdown: BreakdownMeans::default(),
                submitted: 0,
                completed: 0,
                failed: 0,
                serverless_queries: 0,
                serverless_violations: 0,
                billable: BillableUsage::default(),
                next_query_id: 0,
            });
        }

        // Register the three contention meters (serverless only — they
        // never run on IaaS, and their ids come after all services).
        let meter_specs = [cpu_meter(), io_meter(), net_meter()];
        let meter_ids: [ServiceId; 3] = [
            serverless.register(meter_specs[0].clone()),
            serverless.register(meter_specs[1].clone()),
            serverless.register(meter_specs[2].clone()),
        ];
        let meter_curves: [ProfileCurve; 3] = [0, 1, 2].map(|r| {
            let m = &meter_specs[r];
            let phases = [
                m.demand.cpu_s,
                m.demand.io_mb / self.serverless_cfg.per_flow_io_mbps,
                m.demand.net_mb / self.serverless_cfg.per_flow_net_mbps,
            ];
            let overhead = self.serverless_cfg.auth_s
                + self.serverless_cfg.code_load_base_s
                + self.serverless_cfg.code_load_s_per_mb * m.demand.mem_mb
                + self.serverless_cfg.result_post_s;
            ProfileCurve::analytic(
                phases,
                r,
                overhead,
                self.serverless_cfg.slowdown_kappa[r],
                self.serverless_cfg.max_utilization,
                40,
            )
        });
        let mut monitor = ContentionMonitor::new(
            MonitorConfig {
                use_pca: self.variant.uses_pca(),
                ..self.monitor_cfg
            },
            meter_curves,
        );

        // Initial modes: background pinned serverless; foreground starts
        // on IaaS (Amoeba's safe default, §III) except under OpenWhisk.
        let initial_fg_mode = if self.variant == SystemVariant::OpenWhisk {
            DeployMode::Serverless
        } else {
            DeployMode::Iaas
        };
        let mut engine =
            HybridEngine::new(services.len(), initial_fg_mode, self.variant.prewarms());
        engine.set_ack_policy(self.ack_timeout, self.max_ack_retries);

        if sink.enabled() {
            sink.record(TelemetryEvent::RunStarted {
                variant: self.variant.label().to_string(),
                seed: self.seed,
                horizon_s: self.horizon.as_secs_f64(),
                services: self
                    .services
                    .iter()
                    .map(|setup| ServiceInfo {
                        name: setup.spec.name.clone(),
                        background: setup.background,
                        initial_mode: if setup.background {
                            DeployMode::Serverless
                        } else {
                            initial_fg_mode
                        }
                        .into(),
                    })
                    .collect(),
            });
        }

        // Event calendar.
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let t0 = SimTime::ZERO;
        let horizon_t = t0 + self.horizon;

        // Heartbeat period per Eq. 8 (worst case over foreground specs).
        let mut hb_s: f64 = 2.0;
        for setup in &self.services {
            let t_exec = setup.spec.demand.solo_exec_seconds(
                self.serverless_cfg.per_flow_io_mbps,
                self.serverless_cfg.per_flow_net_mbps,
            );
            let lb = sample_period_lower_bound(
                self.serverless_cfg.cold_start_median_s,
                setup.spec.qos_target_s,
                t_exec,
                0.1,
            );
            hb_s = hb_s.max(lb * 1.1);
        }
        let heartbeat_period = SimDuration::from_secs_f64(hb_s.clamp(2.0, 30.0));

        // Pending effects worklist shared across the run.
        let mut effects: Vec<Effect> = Vec::new();

        // Boot IaaS groups for services starting there; pin background
        // to serverless (engine rows exist for them but are never
        // consulted for switching).
        for (idx, s) in services.iter().enumerate() {
            let mode = if s.background {
                DeployMode::Serverless
            } else {
                initial_fg_mode
            };
            if s.background {
                // Override the engine's initial mode for background rows.
                engine.force_mode(ServiceId(idx as u32), DeployMode::Serverless);
            }
            if mode == DeployMode::Iaas {
                effects.extend(iaas.activate(s.sid, t0));
            }
        }

        // First arrivals.
        for idx in 0..services.len() {
            if let Some(t) = services[idx].arrivals.next_after(t0) {
                queue.push(t, Ev::Arrival { idx });
            } else {
                services[idx].exhausted = true;
            }
        }
        if self.run_meters {
            for (m, _) in meter_ids.iter().enumerate() {
                // Deterministic 1 Hz per meter, phase-shifted so the
                // three never collide (§VII-E: "scheduled in a round
                // time trip").
                queue.push(
                    t0 + SimDuration::from_millis(100 + 333 * m as u64),
                    Ev::MeterArrival { meter: m },
                );
            }
        }
        queue.push(t0 + self.control_period, Ev::ControlTick);
        queue.push(t0 + heartbeat_period, Ev::Heartbeat);
        queue.push(t0 + self.usage_sample_period, Ev::UsageSample);

        // Fault injection: pre-draw the whole timed-fault calendar from
        // the injector's independent RNG stream, so the runtime RNG
        // fork order is untouched whether or not a plan is attached.
        let mut chaos: Option<ChaosRt> = self.fault_plan.clone().map(|plan| {
            let mut injector = FaultInjector::new(plan, self.seed);
            for (t, f) in injector.schedule(self.horizon, 3) {
                queue.push(t, Ev::Chaos(f));
            }
            ChaosRt {
                injector,
                meter_outage_until: [t0; 3],
                meter_outlier_pending: [0; 3],
                crash_requeued: BTreeMap::new(),
                boot_fault_since: vec![None; services.len()],
                spike_next_id: 0,
            }
        });

        // Resilience accounting and the drain watchdog (armed whenever
        // a `ReleaseVms` goes out; disarmed by its `IaasDrained` ack).
        let mut wasted_prewarms: u64 = 0;
        let mut failed_switches: u64 = 0;
        let mut drain_deadline: Vec<Option<SimTime>> = vec![None; services.len()];

        // Meter usage accounting.
        let mut meter_core_seconds = 0.0f64;
        let mut last_usage_sample = t0;
        let mut pressure_sum = [0.0f64; 3];
        let mut pressure_samples = 0usize;
        let mut meter_next_id: u64 = 0;

        // The warmup cutoff: outcomes of queries submitted before it are
        // not recorded.
        let warmup_t = t0 + self.warmup;

        // ---- main loop ------------------------------------------------
        while let Some(fired) = queue.pop() {
            let now = fired.time;
            match fired.payload {
                Ev::Arrival { idx } => {
                    let sid = services[idx].sid;
                    controller.record_arrival(idx, now);
                    let qid = QueryId(services[idx].next_query_id);
                    services[idx].next_query_id += 1;
                    if now >= warmup_t {
                        services[idx].submitted += 1;
                    }
                    let query = Query {
                        id: qid,
                        service: sid,
                        submitted: now,
                    };
                    let target = if services[idx].background {
                        RouteTarget::Serverless
                    } else {
                        engine.route(sid)
                    };
                    match target {
                        RouteTarget::Serverless => {
                            // Real traffic ends any drain (the NoP path
                            // switches with no prewarm ack).
                            serverless.resume_service(sid);
                            effects.extend(serverless.submit(query, now, &mut platform_rng));
                        }
                        RouteTarget::Iaas => {
                            effects.extend(iaas.submit(query, now, &mut iaas_rng));
                        }
                    }
                    if !services[idx].exhausted {
                        if let Some(t) = services[idx].arrivals.next_after(now) {
                            queue.push(t, Ev::Arrival { idx });
                        } else {
                            services[idx].exhausted = true;
                        }
                    }
                }
                Ev::MeterArrival { meter } => {
                    let sid = meter_ids[meter];
                    let query = Query {
                        id: QueryId(SHADOW_BIT | (meter as u64) << 56 | meter_next_id),
                        service: sid,
                        submitted: now,
                    };
                    meter_next_id += 1;
                    effects.extend(serverless.submit(query, now, &mut platform_rng));
                    let next = now + SimDuration::from_secs_f64(1.0 / METER_QPS);
                    if next < horizon_t {
                        queue.push(next, Ev::MeterArrival { meter });
                    }
                }
                Ev::ControlTick => {
                    // Drain watchdog: a released IaaS group whose
                    // drained ack is overdue is reclaimed forcibly and
                    // its in-flight queries re-queued on serverless.
                    for idx in 0..services.len() {
                        let overdue = matches!(drain_deadline[idx], Some(dl) if now >= dl);
                        if !overdue {
                            continue;
                        }
                        drain_deadline[idx] = None;
                        let sid = services[idx].sid;
                        let (eff, displaced) = iaas.force_drain(sid, now);
                        effects.extend(eff);
                        if sink.enabled() {
                            sink.record(TelemetryEvent::Fault(FaultRecord {
                                t: now,
                                kind: FaultKind::DrainTimeout,
                                service: Some(idx),
                                queries_displaced: displaced.len() as u64,
                                queries_dropped: 0,
                            }));
                            sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                                t: now,
                                kind: RecoveryKind::DrainForced,
                                service: Some(idx),
                                after_s: DRAIN_TIMEOUT_S,
                            }));
                        }
                        for q in displaced {
                            serverless.resume_service(q.service);
                            effects.extend(serverless.submit(q, now, &mut platform_rng));
                        }
                    }
                    let pressures = monitor.pressures();
                    pressure_sum[0] += pressures[0];
                    pressure_sum[1] += pressures[1];
                    pressure_sum[2] += pressures[2];
                    pressure_samples += 1;
                    let weights = monitor.weights();
                    if self.variant.switches() {
                        // Feed each unpinned service's forecaster before
                        // any decision this tick. Unconditional (not
                        // sink-gated): the forecast is control-plane
                        // state, so traced and untraced runs stay
                        // bit-identical. A no-op for reactive variants.
                        for idx in 0..services.len() {
                            if !services[idx].pinned {
                                controller.observe_load(idx, now);
                            }
                        }
                        // Current serverless co-tenants with their loads.
                        let others: Vec<(usize, f64)> = (0..services.len())
                            .filter(|&j| {
                                services[j].background
                                    || engine.mode(services[j].sid) == DeployMode::Serverless
                            })
                            .map(|j| (j, controller.estimated_load(j, now)))
                            .collect();
                        for idx in 0..services.len() {
                            if services[idx].pinned {
                                continue;
                            }
                            let sid = services[idx].sid;
                            let mode = engine.mode(sid);
                            if engine.in_transition(sid) {
                                // Ack deadline: a lost prewarm/boot ack
                                // must not park the switch forever — retry
                                // with backoff, then roll back (the router
                                // keeps serving from the old platform
                                // throughout, so nothing is dropped).
                                if let Some(act) = engine.poll_deadline(sid, now, sink) {
                                    let (actions, prewarm, rolled_back_after) = match act {
                                        DeadlineAction::Retried {
                                            actions, prewarm, ..
                                        } => (actions, prewarm, None),
                                        DeadlineAction::Aborted {
                                            actions,
                                            prewarm,
                                            requested_at,
                                        } => {
                                            failed_switches += 1;
                                            (
                                                actions,
                                                prewarm,
                                                Some(now.duration_since(requested_at)),
                                            )
                                        }
                                    };
                                    wasted_prewarms += prewarm as u64;
                                    if sink.enabled() {
                                        sink.record(TelemetryEvent::Fault(FaultRecord {
                                            t: now,
                                            kind: FaultKind::AckTimeout,
                                            service: Some(idx),
                                            queries_displaced: 0,
                                            queries_dropped: 0,
                                        }));
                                        if let Some(after) = rolled_back_after {
                                            sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                                                t: now,
                                                kind: RecoveryKind::SwitchRolledBack,
                                                service: Some(idx),
                                                after_s: after.as_secs_f64(),
                                            }));
                                        }
                                    }
                                    note_vm_releases(&actions, now, &mut drain_deadline);
                                    dispatch_actions(
                                        actions,
                                        now,
                                        &mut SimPlatforms {
                                            serverless: &mut serverless,
                                            iaas: &mut iaas,
                                            rng: &mut platform_rng,
                                            effects: &mut effects,
                                        },
                                    );
                                    continue;
                                }
                                // The controller is not consulted while a
                                // switch is in flight, but the tick is
                                // still recorded (decide_explained is
                                // pure, so this costs nothing when the
                                // sink is disabled).
                                if sink.enabled() {
                                    let (_, tr) = controller.decide_explained(
                                        idx,
                                        mode,
                                        now,
                                        engine.last_switch(sid),
                                        pressures,
                                        weights,
                                        &others,
                                    );
                                    sink.record(TelemetryEvent::Tick(TickRecord {
                                        t: now,
                                        service: idx,
                                        mode: mode.into(),
                                        load_qps: tr.load_qps,
                                        mu: tr.mu,
                                        lambda_max: tr.lambda_max,
                                        pressures: tr.pressures,
                                        weights,
                                        decision: Decision::Stay.into(),
                                        reason: TickReason::InTransition,
                                    }));
                                    record_forecast(sink, now, idx, &tr);
                                }
                                continue;
                            }
                            let (decision, tr) = controller.decide_explained(
                                idx,
                                mode,
                                now,
                                engine.last_switch(sid),
                                pressures,
                                weights,
                                &others,
                            );
                            if sink.enabled() {
                                sink.record(TelemetryEvent::Tick(TickRecord {
                                    t: now,
                                    service: idx,
                                    mode: mode.into(),
                                    load_qps: tr.load_qps,
                                    mu: tr.mu,
                                    lambda_max: tr.lambda_max,
                                    pressures: tr.pressures,
                                    weights,
                                    decision: decision.into(),
                                    reason: tr.reason,
                                }));
                                record_forecast(sink, now, idx, &tr);
                            }
                            let load = tr.load_qps;
                            let actions = match decision {
                                Decision::Stay => Vec::new(),
                                Decision::SwitchToServerless => {
                                    let spec = &controller.model(idx).spec;
                                    // Prewarm for the load the decision
                                    // was evaluated at — in proactive
                                    // mode the forecast upper bound, so
                                    // the pool is sized for the load
                                    // arriving by the time it is warm.
                                    let n = prewarm_count(tr.eval_qps, spec.qos_target_s);
                                    let n = ((n as f64 * self.prewarm_factor).ceil() as u32)
                                        .max(1)
                                        .min(n_max);
                                    engine.begin_switch(
                                        sid,
                                        DeployMode::Serverless,
                                        n,
                                        load,
                                        now,
                                        sink,
                                    )
                                }
                                Decision::SwitchToIaas => {
                                    engine.begin_switch(sid, DeployMode::Iaas, 0, load, now, sink)
                                }
                            };
                            note_vm_releases(&actions, now, &mut drain_deadline);
                            dispatch_actions(
                                actions,
                                now,
                                &mut SimPlatforms {
                                    serverless: &mut serverless,
                                    iaas: &mut iaas,
                                    rng: &mut platform_rng,
                                    effects: &mut effects,
                                },
                            );
                        }
                        // Shadow traffic: one mirrored query per IaaS-mode
                        // service per tick keeps calibration fed (§III).
                        if self.variant.uses_pca() {
                            for idx in 0..services.len() {
                                let sid = services[idx].sid;
                                if services[idx].background
                                    || engine.mode(sid) != DeployMode::Iaas
                                    || controller.estimated_load(idx, now) <= 0.0
                                {
                                    continue;
                                }
                                let query = Query {
                                    id: QueryId(
                                        SHADOW_BIT | (0xFF << 48) | services[idx].next_query_id,
                                    ),
                                    service: sid,
                                    submitted: now,
                                };
                                services[idx].next_query_id += 1;
                                effects.extend(serverless.submit(query, now, &mut platform_rng));
                            }
                        }
                    }
                    let next = now + self.control_period;
                    if next < horizon_t {
                        queue.push(next, Ev::ControlTick);
                    }
                }
                Ev::Heartbeat => {
                    monitor.heartbeat();
                    if sink.enabled() {
                        sink.record(TelemetryEvent::Heartbeat(HeartbeatRecord {
                            t: now,
                            meter_latency_s: monitor.smoothed_latencies(),
                            pressures: monitor.pressures(),
                            weights: monitor.weights(),
                        }));
                    }
                    let next = now + heartbeat_period;
                    if next < horizon_t {
                        queue.push(next, Ev::Heartbeat);
                    }
                }
                Ev::UsageSample => {
                    let dt = now.duration_since(last_usage_sample).as_secs_f64();
                    last_usage_sample = now;
                    for (idx, s) in services.iter_mut().enumerate() {
                        let (iaas_cores, iaas_mem) = iaas.allocation(s.sid);
                        s.billable.iaas_core_seconds += iaas_cores * dt;
                        s.billable.iaas_mem_mb_seconds += iaas_mem * dt;
                        s.billable.serverless_mem_mb_seconds += serverless.busy_count(s.sid) as f64
                            * self.serverless_cfg.container_memory_mb
                            * dt;
                        let containers = serverless.container_count(s.sid) as f64;
                        let cores =
                            iaas_cores + containers * self.serverless_cfg.container_core_share;
                        let mem = iaas_mem + containers * self.serverless_cfg.container_memory_mb;
                        s.usage.set_allocation(now, cores, mem);
                        let rates = serverless.service_rates(s.sid);
                        let busy_sl = serverless.busy_count(s.sid) as f64 * rates.cpu_cores;
                        s.usage
                            .set_consumption(now, iaas.busy_cores(s.sid) + busy_sl);
                        s.cores_timeline.push(now, cores);
                        s.mem_timeline.push(now, mem);
                        let mode = if s.background {
                            DeployMode::Serverless
                        } else {
                            engine.mode(s.sid)
                        };
                        s.mode_timeline.push(
                            now,
                            if mode == DeployMode::Serverless {
                                1.0
                            } else {
                                0.0
                            },
                        );
                        s.load_timeline
                            .push(now, controller.estimated_load(idx, now));
                    }
                    for (m, &mid) in meter_ids.iter().enumerate() {
                        let rates = serverless.service_rates(mid);
                        meter_core_seconds +=
                            serverless.busy_count(mid) as f64 * rates.cpu_cores * dt;
                        let _ = m;
                    }
                    let next = now + self.usage_sample_period;
                    if next < horizon_t {
                        queue.push(next, Ev::UsageSample);
                    }
                }
                Ev::Platform(ev) => {
                    let eff = match ev {
                        ClusterEvent::ColdStartDone { .. }
                        | ClusterEvent::ServerlessExecDone { .. }
                        | ClusterEvent::ContainerExpire { .. } => {
                            serverless.handle(ev, now, &mut platform_rng)
                        }
                        ClusterEvent::VmBootDone { service } => {
                            // Chaos may fail or delay a boot in flight;
                            // past the horizon boots always land so the
                            // calendar drains.
                            let mut fate = match chaos.as_mut() {
                                Some(ch) if now < horizon_t && iaas.is_booting(service) => {
                                    ch.injector.vm_boot_outcome()
                                }
                                _ => BootOutcome::Healthy,
                            };
                            let mult = chaos
                                .as_ref()
                                .map_or(1.0, |c| c.injector.plan().slow_boot_multiplier);
                            if fate == BootOutcome::Slow && mult <= 1.0 {
                                fate = BootOutcome::Healthy;
                            }
                            let idx = service.raw() as usize;
                            match fate {
                                BootOutcome::Fail => {
                                    if let Some(ch) = chaos.as_mut() {
                                        if idx < ch.boot_fault_since.len()
                                            && ch.boot_fault_since[idx].is_none()
                                        {
                                            ch.boot_fault_since[idx] = Some(now);
                                        }
                                    }
                                    if sink.enabled() {
                                        sink.record(TelemetryEvent::Fault(FaultRecord {
                                            t: now,
                                            kind: FaultKind::VmBootFailure,
                                            service: Some(idx),
                                            queries_displaced: 0,
                                            queries_dropped: 0,
                                        }));
                                    }
                                    iaas.fail_boot(service, now)
                                }
                                BootOutcome::Slow => {
                                    let extra = self.iaas_cfg.boot_time_s * (mult - 1.0);
                                    queue.push(
                                        now + SimDuration::from_secs_f64(extra),
                                        Ev::Platform(ev),
                                    );
                                    if sink.enabled() {
                                        sink.record(TelemetryEvent::Fault(FaultRecord {
                                            t: now,
                                            kind: FaultKind::VmSlowBoot,
                                            service: Some(idx),
                                            queries_displaced: 0,
                                            queries_dropped: 0,
                                        }));
                                    }
                                    Vec::new()
                                }
                                BootOutcome::Healthy => {
                                    if let Some(ch) = chaos.as_mut() {
                                        if idx < ch.boot_fault_since.len() {
                                            if let Some(since) = ch.boot_fault_since[idx].take() {
                                                if sink.enabled() {
                                                    sink.record(TelemetryEvent::Recovery(
                                                        RecoveryRecord {
                                                            t: now,
                                                            kind: RecoveryKind::VmBootSucceeded,
                                                            service: Some(idx),
                                                            after_s: now
                                                                .duration_since(since)
                                                                .as_secs_f64(),
                                                        },
                                                    ));
                                                }
                                            }
                                        }
                                    }
                                    iaas.handle(ev, now, &mut iaas_rng)
                                }
                            }
                        }
                        ClusterEvent::IaasExecDone { .. } => iaas.handle(ev, now, &mut iaas_rng),
                    };
                    effects.extend(eff);
                }
                Ev::Chaos(fault) => {
                    if let Some(ch) = chaos.as_mut() {
                        match fault {
                            TimedFault::ContainerCrash => {
                                let total = serverless.total_containers() as usize;
                                let report = if total > 0 {
                                    let victim = ch.injector.pick(total);
                                    let (eff, report) =
                                        serverless.crash_container(victim, now, &mut platform_rng);
                                    effects.extend(eff);
                                    report
                                } else {
                                    None // empty pool: the crash is a no-op
                                };
                                if let Some(rep) = report {
                                    let idx = rep.service.raw() as usize;
                                    let mut displaced = 0u64;
                                    let mut dropped = 0u64;
                                    if let Some(q) = rep.displaced {
                                        if q.id.raw() & SHADOW_BIT != 0 {
                                            // Shadow, meter or spike work:
                                            // nothing waits on it.
                                        } else if ch.injector.drop_crashed_query() {
                                            dropped = 1;
                                            if idx < services.len() && q.submitted >= warmup_t {
                                                services[idx].failed += 1;
                                            }
                                        } else {
                                            // Re-queue on the current route,
                                            // keeping the original submit time
                                            // so the lost work shows up as
                                            // latency, not as a vanished query.
                                            displaced = 1;
                                            ch.crash_requeued
                                                .entry((q.service.raw(), q.id.raw()))
                                                .or_insert(now);
                                            let target = if idx < services.len()
                                                && !services[idx].background
                                            {
                                                engine.route(q.service)
                                            } else {
                                                RouteTarget::Serverless
                                            };
                                            match target {
                                                RouteTarget::Serverless => {
                                                    serverless.resume_service(q.service);
                                                    effects.extend(serverless.submit(
                                                        q,
                                                        now,
                                                        &mut platform_rng,
                                                    ));
                                                }
                                                RouteTarget::Iaas => {
                                                    effects.extend(iaas.submit(
                                                        q,
                                                        now,
                                                        &mut iaas_rng,
                                                    ));
                                                }
                                            }
                                        }
                                    }
                                    if sink.enabled() {
                                        sink.record(TelemetryEvent::Fault(FaultRecord {
                                            t: now,
                                            kind: FaultKind::ContainerCrash,
                                            service: (idx < services.len()).then_some(idx),
                                            queries_displaced: displaced,
                                            queries_dropped: dropped,
                                        }));
                                    }
                                }
                            }
                            TimedFault::MeterOutage => {
                                let m = ch.injector.pick(3);
                                ch.meter_outage_until[m] = now
                                    + SimDuration::from_secs_f64(
                                        ch.injector.plan().meter_outage_duration_s,
                                    );
                                if sink.enabled() {
                                    sink.record(TelemetryEvent::Fault(FaultRecord {
                                        t: now,
                                        kind: FaultKind::MeterOutage,
                                        service: None,
                                        queries_displaced: 0,
                                        queries_dropped: 0,
                                    }));
                                }
                            }
                            TimedFault::MeterOutlier { meter } => {
                                if meter < 3 {
                                    ch.meter_outlier_pending[meter] += 1;
                                }
                                if sink.enabled() {
                                    sink.record(TelemetryEvent::Fault(FaultRecord {
                                        t: now,
                                        kind: FaultKind::MeterOutlier,
                                        service: None,
                                        queries_displaced: 0,
                                        queries_dropped: 0,
                                    }));
                                }
                            }
                            TimedFault::PressureSpike if !services.is_empty() => {
                                let victim = ch.injector.pick(services.len());
                                let sid = services[victim].sid;
                                let plan = ch.injector.plan();
                                let n = (plan.spike_qps * plan.spike_duration_s).ceil() as u64;
                                let qps = plan.spike_qps.max(1e-9);
                                for i in 0..n {
                                    queue.push(
                                        now + SimDuration::from_secs_f64(i as f64 / qps),
                                        Ev::SpikeQuery { sid },
                                    );
                                }
                                if sink.enabled() {
                                    sink.record(TelemetryEvent::Fault(FaultRecord {
                                        t: now,
                                        kind: FaultKind::PressureSpike,
                                        service: Some(victim),
                                        queries_displaced: 0,
                                        queries_dropped: 0,
                                    }));
                                }
                            }
                            TimedFault::PressureSpike => {}
                        }
                    }
                }
                Ev::SpikeQuery { sid } => {
                    if let Some(ch) = chaos.as_mut() {
                        let q = Query {
                            id: QueryId(SHADOW_BIT | (SPIKE_MARK << 48) | ch.spike_next_id),
                            service: sid,
                            submitted: now,
                        };
                        ch.spike_next_id += 1;
                        effects.extend(serverless.submit(q, now, &mut platform_rng));
                    }
                }
            }

            // Drain the effects worklist (acks can trigger actions that
            // produce further effects).
            while !effects.is_empty() {
                let batch = std::mem::take(&mut effects);
                for e in batch {
                    match e {
                        Effect::Schedule { after, event } => {
                            queue.push(now + after, Ev::Platform(event));
                        }
                        Effect::Completed(outcome) => {
                            let mut swallowed = false;
                            if let Some(ch) = chaos.as_mut() {
                                swallowed =
                                    chaos_completion(ch, &outcome, now, &meter_ids, &mut monitor);
                                let key = (outcome.query.service.raw(), outcome.query.id.raw());
                                if let Some(t_crash) = ch.crash_requeued.remove(&key) {
                                    if sink.enabled() {
                                        sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                                            t: now,
                                            kind: RecoveryKind::RequeuedQueryCompleted,
                                            service: Some(outcome.query.service.raw() as usize),
                                            after_s: now.duration_since(t_crash).as_secs_f64(),
                                        }));
                                    }
                                }
                            }
                            if !swallowed {
                                self.on_completion(
                                    outcome,
                                    now,
                                    warmup_t,
                                    &meter_ids,
                                    &mut services,
                                    &mut controller,
                                    &mut monitor,
                                    sink,
                                );
                            }
                        }
                        Effect::PrewarmReady { service } => {
                            if (service.raw() as usize) < services.len() {
                                let idx = service.raw() as usize;
                                // Chaos can lose the ack on the wire; the
                                // engine's deadline retry recovers it.
                                if let Some(ch) = chaos.as_mut() {
                                    if engine.in_transition(service)
                                        && ch.injector.drop_prewarm_ack()
                                    {
                                        if sink.enabled() {
                                            sink.record(TelemetryEvent::Fault(FaultRecord {
                                                t: now,
                                                kind: FaultKind::AckDropped,
                                                service: Some(idx),
                                                queries_displaced: 0,
                                                queries_dropped: 0,
                                            }));
                                        }
                                        continue;
                                    }
                                }
                                let load = controller.estimated_load(idx, now);
                                let actions = engine.on_ready(
                                    service,
                                    DeployMode::Serverless,
                                    load,
                                    now,
                                    sink,
                                );
                                note_vm_releases(&actions, now, &mut drain_deadline);
                                dispatch_actions(
                                    actions,
                                    now,
                                    &mut SimPlatforms {
                                        serverless: &mut serverless,
                                        iaas: &mut iaas,
                                        rng: &mut platform_rng,
                                        effects: &mut effects,
                                    },
                                );
                            }
                        }
                        Effect::VmGroupReady { service } => {
                            if (service.raw() as usize) < services.len() {
                                let idx = service.raw() as usize;
                                let load = controller.estimated_load(idx, now);
                                let actions =
                                    engine.on_ready(service, DeployMode::Iaas, load, now, sink);
                                note_vm_releases(&actions, now, &mut drain_deadline);
                                dispatch_actions(
                                    actions,
                                    now,
                                    &mut SimPlatforms {
                                        serverless: &mut serverless,
                                        iaas: &mut iaas,
                                        rng: &mut platform_rng,
                                        effects: &mut effects,
                                    },
                                );
                            }
                        }
                        Effect::IaasDrained { service } => {
                            // The old IaaS side has finished its in-flight
                            // queries: the span's terminal step.
                            if (service.raw() as usize) < services.len() {
                                drain_deadline[service.raw() as usize] = None;
                            }
                            if sink.enabled() && (service.raw() as usize) < services.len() {
                                let idx = service.raw() as usize;
                                sink.record(TelemetryEvent::Switch(SwitchRecord {
                                    t: now,
                                    service: idx,
                                    from: DeployMode::Iaas.into(),
                                    to: DeployMode::Serverless.into(),
                                    phase: SwitchPhase::Drained,
                                    prewarm_count: 0,
                                    load_qps: controller.estimated_load(idx, now),
                                }));
                            }
                        }
                    }
                }
            }
        }

        // ---- wrap up ---------------------------------------------------
        let final_weights = monitor.weights();
        let mean_pressures = if pressure_samples > 0 {
            [
                pressure_sum[0] / pressure_samples as f64,
                pressure_sum[1] / pressure_samples as f64,
                pressure_sum[2] / pressure_samples as f64,
            ]
        } else {
            [0.0; 3]
        };
        let node_core_seconds = self.serverless_cfg.node.cores * self.horizon.as_secs_f64();
        let results: Vec<ServiceResult> = services
            .into_iter()
            .enumerate()
            .map(|(idx, s)| ServiceResult {
                name: self.services[idx].spec.name.clone(),
                background: s.background,
                qos_target_s: self.services[idx].spec.qos_target_s,
                qos_percentile: self.services[idx].spec.qos_percentile,
                latency: s.recorder,
                usage: s.usage.finish(horizon_t),
                switch_history: engine.history(s.sid).to_vec(),
                load_timeline: s.load_timeline,
                cores_timeline: s.cores_timeline,
                mem_timeline: s.mem_timeline,
                mode_timeline: s.mode_timeline,
                breakdown: s.breakdown,
                submitted: s.submitted,
                completed: s.completed,
                failed: s.failed,
                serverless_queries: s.serverless_queries,
                serverless_violations: s.serverless_violations,
                billable: BillableUsage {
                    invocations: s.serverless_queries as u64,
                    ..s.billable
                },
            })
            .collect();
        let final_gains = (0..results.len()).map(|i| controller.gain(i)).collect();
        RunResult {
            variant: self.variant,
            services: results,
            meter_cpu_overhead: meter_core_seconds / node_core_seconds,
            final_weights,
            mean_pressures,
            cold_starts: serverless.cold_start_count(),
            final_gains,
            horizon: self.horizon,
            wasted_prewarms,
            failed_switches,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_completion(
        &self,
        outcome: amoeba_platform::QueryOutcome,
        now: SimTime,
        warmup_t: SimTime,
        meter_ids: &[ServiceId; 3],
        services: &mut [ServiceRt],
        controller: &mut DeploymentController,
        monitor: &mut ContentionMonitor,
        sink: &mut dyn TelemetrySink,
    ) {
        let sid = outcome.query.service;
        // Meter completion: feed the monitor.
        if let Some(m) = meter_ids.iter().position(|&x| x == sid) {
            monitor.observe_meter_latency(m, outcome.latency().as_secs_f64());
            return;
        }
        let idx = sid.raw() as usize;
        if idx >= services.len() {
            return;
        }
        let is_shadow = outcome.query.id.raw() & SHADOW_BIT != 0;
        // Serverless executions calibrate the controller (real and
        // shadow alike); the service time excludes queueing and cold
        // start.
        if outcome.executed_on == ExecutedOn::Serverless && self.variant.uses_pca() {
            let b = &outcome.breakdown;
            let service_time = (b.auth + b.code_load + b.result_post + b.exec).as_secs_f64();
            let pressures = monitor.pressures();
            let weights = monitor.weights();
            let own_load = 0.0; // service time is per-query; no load axis
            let _ = own_load;
            controller.observe_service_time(idx, service_time, pressures, weights);
        }
        if is_shadow {
            return;
        }
        if outcome.query.submitted < warmup_t {
            return;
        }
        let s = &mut services[idx];
        s.recorder.record(outcome.latency());
        s.completed += 1;
        let target = self.services[idx].spec.qos_target_s;
        let latency_s = outcome.latency().as_secs_f64();
        if outcome.executed_on == ExecutedOn::Serverless {
            s.serverless_queries += 1;
            if latency_s > target {
                s.serverless_violations += 1;
            }
        }
        if sink.enabled() && latency_s > target {
            let cold_start_s = outcome.breakdown.cold_start.as_secs_f64();
            let queue_wait_s = outcome.breakdown.queue_wait.as_secs_f64();
            sink.record(TelemetryEvent::Violation(ViolationRecord {
                t: now,
                service: idx,
                platform: match outcome.executed_on {
                    ExecutedOn::Serverless => DeployMode::Serverless,
                    ExecutedOn::Iaas => DeployMode::Iaas,
                }
                .into(),
                latency_s,
                target_s: target,
                cold_start_s,
                queue_wait_s,
                cause: ViolationCause::attribute(cold_start_s, queue_wait_s),
            }));
        }
        if outcome.executed_on == ExecutedOn::Serverless
            && outcome.breakdown.cold_start == SimDuration::ZERO
            && outcome.breakdown.queue_wait == SimDuration::ZERO
        {
            s.breakdown.add(&outcome.breakdown);
            if sink.enabled() {
                let b = &outcome.breakdown;
                sink.record(TelemetryEvent::WarmSample(WarmSampleRecord {
                    t: now,
                    service: idx,
                    auth_s: b.auth.as_secs_f64(),
                    code_load_s: b.code_load.as_secs_f64(),
                    result_post_s: b.result_post.as_secs_f64(),
                    exec_s: b.exec.as_secs_f64(),
                }));
            }
        }
    }
}

/// The simulated platforms wired up as the engine's command target.
struct SimPlatforms<'a> {
    serverless: &'a mut ServerlessPlatform,
    iaas: &'a mut IaasPlatform,
    rng: &'a mut SimRng,
    effects: &'a mut Vec<Effect>,
}

impl PlatformCommands for SimPlatforms<'_> {
    fn prewarm(&mut self, service: ServiceId, count: u32, now: SimTime) {
        self.effects
            .extend(self.serverless.prewarm(service, count, now, self.rng));
    }

    fn activate_vms(&mut self, service: ServiceId, now: SimTime) {
        self.effects.extend(self.iaas.activate(service, now));
    }

    fn release_containers(&mut self, service: ServiceId, _now: SimTime) {
        self.serverless.release_service(service);
    }

    fn release_vms(&mut self, service: ServiceId, now: SimTime) {
        self.effects.extend(self.iaas.release(service, now));
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use amoeba_workload::{benchmarks, DiurnalPattern};

    /// The standard scenario: one foreground benchmark plus the paper's
    /// three background services at low peak (§VII-A), on a compressed
    /// day.
    fn scenario(fg: MicroserviceSpec, day_s: f64) -> Vec<ServiceSetup> {
        let fg_trace = LoadTrace::new(DiurnalPattern::didi(), fg.peak_qps, day_s);
        let mut setups = vec![ServiceSetup {
            spec: fg,
            trace: fg_trace,
            background: false,
        }];
        for (spec, frac) in [
            (benchmarks::float(), 0.2),
            (benchmarks::dd(), 0.15),
            (benchmarks::cloud_stor(), 0.2),
        ] {
            let peak = spec.peak_qps * frac;
            let mut bg = spec;
            bg.name = format!("bg_{}", bg.name);
            setups.push(ServiceSetup {
                trace: LoadTrace::new(DiurnalPattern::didi(), peak, day_s),
                spec: bg,
                background: true,
            });
        }
        setups
    }

    fn run(variant: SystemVariant, day_s: f64, seed: u64) -> RunResult {
        run_pub(variant, day_s, seed)
    }

    pub(crate) fn run_pub(variant: SystemVariant, day_s: f64, seed: u64) -> RunResult {
        let services = scenario(benchmarks::float(), day_s);
        let horizon = SimDuration::from_secs_f64(day_s);
        Experiment::builder(variant, horizon, seed)
            .services(services)
            .build()
            .run()
    }

    #[test]
    fn nameko_meets_qos_and_never_switches() {
        let mut r = run(SystemVariant::Nameko, 240.0, 1);
        let fg = &mut r.services[0];
        assert!(fg.completed > 1000, "completed {}", fg.completed);
        assert!(
            fg.qos_met(),
            "p95 {:?} target {}",
            fg.qos_latency(),
            fg.qos_target_s
        );
        assert!(fg.switch_history.is_empty());
        // All queries ran on IaaS => no serverless breakdown samples.
        assert_eq!(fg.breakdown.count, 0);
    }

    #[test]
    fn openwhisk_runs_everything_serverless() {
        let mut r = run(SystemVariant::OpenWhisk, 240.0, 2);
        let fg = &mut r.services[0];
        assert!(fg.completed > 1000);
        assert!(fg.breakdown.count > 0, "serverless executions recorded");
        assert!(fg.switch_history.is_empty());
        // OpenWhisk allocates no IaaS cores for the foreground service;
        // usage must be far below the Nameko run.
        let mut nameko = run(SystemVariant::Nameko, 240.0, 2);
        let ratio = fg.usage.cpu_relative_to(&nameko.services[0].usage);
        assert!(ratio < 0.6, "openwhisk/nameko cpu ratio {ratio}");
        let _ = &mut nameko;
    }

    #[test]
    fn amoeba_switches_and_saves_resources_while_meeting_qos() {
        let mut amoeba = run(SystemVariant::Amoeba, 360.0, 3);
        let mut nameko = run(SystemVariant::Nameko, 360.0, 3);
        let fg = &mut amoeba.services[0];
        assert!(
            !fg.switch_history.is_empty(),
            "Amoeba should switch at least once on a diurnal day"
        );
        assert!(
            fg.qos_met(),
            "p95 {:?} target {}",
            fg.qos_latency(),
            fg.qos_target_s
        );
        let nk = &mut nameko.services[0];
        assert!(nk.qos_met());
        let cpu_ratio = fg.usage.cpu_relative_to(&nk.usage);
        let mem_ratio = fg.usage.mem_relative_to(&nk.usage);
        assert!(cpu_ratio < 0.95, "Amoeba cpu ratio vs Nameko: {cpu_ratio}");
        assert!(mem_ratio < 0.95, "Amoeba mem ratio vs Nameko: {mem_ratio}");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(SystemVariant::Amoeba, 120.0, 7);
        let b = run(SystemVariant::Amoeba, 120.0, 7);
        assert_eq!(a.services[0].completed, b.services[0].completed);
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(
            a.services[0].switch_history.len(),
            b.services[0].switch_history.len()
        );
        let c = run(SystemVariant::Amoeba, 120.0, 8);
        // Different seed: almost surely different counts.
        assert_ne!(a.services[0].completed, c.services[0].completed);
    }

    #[test]
    fn conservation_of_queries() {
        let r = run(SystemVariant::Amoeba, 240.0, 11);
        for s in &r.services {
            // Everything submitted post-warmup eventually completes (the
            // loop drains all events past the horizon), and nothing can
            // fail without an injected fault.
            assert_eq!(s.submitted, s.completed, "{}", s.name);
            assert_eq!(s.failed, 0, "{}", s.name);
        }
        assert_eq!(r.failed_switches, 0);
        assert_eq!(r.wasted_prewarms, 0);
    }

    fn run_with_plan(
        variant: SystemVariant,
        day_s: f64,
        seed: u64,
        plan: Option<FaultPlan>,
    ) -> RunResult {
        let services = scenario(benchmarks::float(), day_s);
        let horizon = SimDuration::from_secs_f64(day_s);
        let mut b = Experiment::builder(variant, horizon, seed).services(services);
        if let Some(p) = plan {
            b = b.fault_plan(p);
        }
        b.build().run()
    }

    #[test]
    fn noop_fault_plan_is_bit_identical_to_no_plan() {
        // A zero-rate plan builds the injector (which draws only from
        // its private stream) but schedules nothing: the run must match
        // a plan-free run exactly.
        let bare = run_with_plan(SystemVariant::Amoeba, 240.0, 23, None);
        let noop = run_with_plan(SystemVariant::Amoeba, 240.0, 23, Some(FaultPlan::default()));
        for (a, b) in bare.services.iter().zip(&noop.services) {
            assert_eq!(a.submitted, b.submitted, "{}", a.name);
            assert_eq!(a.completed, b.completed, "{}", a.name);
        }
        assert_eq!(bare.cold_starts, noop.cold_starts);
        assert_eq!(bare.final_weights, noop.final_weights);
    }

    #[test]
    fn chaos_runs_conserve_queries_and_stay_deterministic() {
        let plan = FaultPlan::mixed();
        let a = run_with_plan(SystemVariant::Amoeba, 240.0, 29, Some(plan.clone()));
        for s in &a.services {
            assert_eq!(s.submitted, s.completed + s.failed, "{}", s.name);
        }
        let b = run_with_plan(SystemVariant::Amoeba, 240.0, 29, Some(plan));
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.completed, y.completed, "{}", x.name);
            assert_eq!(x.failed, y.failed, "{}", x.name);
        }
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.failed_switches, b.failed_switches);
        assert_eq!(a.wasted_prewarms, b.wasted_prewarms);
    }

    #[test]
    fn meter_overhead_is_small() {
        let r = run(SystemVariant::Amoeba, 240.0, 13);
        assert!(
            r.meter_cpu_overhead < 0.02,
            "meter overhead {} should be ~1% as in §VII-E",
            r.meter_cpu_overhead
        );
        assert!(r.meter_cpu_overhead > 0.0, "meters did run");
    }

    #[test]
    fn weights_depart_from_uniform_with_pca() {
        let r = run(SystemVariant::Amoeba, 240.0, 17);
        let w = r.final_weights;
        assert!(
            (w.iter().sum::<f64>() - 1.0).abs() < 1e-6,
            "PCA weights normalised: {w:?}"
        );
        let nom = run(SystemVariant::AmoebaNoM, 240.0, 17);
        assert_eq!(nom.final_weights, [1.0; 3], "NoM keeps uniform weights");
    }

    #[test]
    fn nop_violates_qos_via_cold_starts() {
        // The NoP ablation routes queries to serverless with no prewarm;
        // right after each switch a batch of queries eats 1-3 s cold
        // starts, which a 0.2 s QoS target cannot absorb.
        let mut nop = run(SystemVariant::AmoebaNoP, 360.0, 19);
        let mut amoeba = run(SystemVariant::Amoeba, 360.0, 19);
        let v_nop = nop.services[0].violation_ratio();
        let v_amoeba = amoeba.services[0].violation_ratio();
        let sw = nop.services[0].switch_history.len();
        if sw > 0 {
            assert!(
                v_nop > v_amoeba,
                "NoP ({v_nop}) must violate more than Amoeba ({v_amoeba})"
            );
        }
        let _ = (&mut nop, &mut amoeba);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::tests::*;
    use super::*;

    #[test]
    #[ignore]
    fn dump_amoeba_run() {
        let mut r = run_pub(SystemVariant::Amoeba, 360.0, 3);
        let nameko = run_pub(SystemVariant::Nameko, 360.0, 3);
        let fg = &mut r.services[0];
        println!("switches: {:?}", fg.switch_history);
        println!(
            "weights: {:?}, pressures: {:?}",
            r.final_weights, r.mean_pressures
        );
        println!("violations: {}", fg.violation_ratio());
        println!("p95: {:?} target {}", fg.qos_latency(), fg.qos_target_s);
        println!("cold starts: {}", r.cold_starts);
        for (t, m) in fg.mode_timeline.samples().iter().step_by(20) {
            let c = fg.cores_timeline.at(*t).copied().unwrap_or(0.0);
            let mem = fg.mem_timeline.at(*t).copied().unwrap_or(0.0);
            let l = fg.load_timeline.at(*t).copied().unwrap_or(0.0);
            println!(
                "t={:>8} mode={} cores={:>6.1} mem={:>8.0} load={:>6.1}",
                format!("{t}"),
                m,
                c,
                mem,
                l
            );
        }
        println!(
            "amoeba core-s {} mem-s {}",
            fg.usage.core_seconds, fg.usage.mem_mb_seconds
        );
        let nk = &nameko.services[0];
        println!(
            "nameko core-s {} mem-s {}",
            nk.usage.core_seconds, nk.usage.mem_mb_seconds
        );
    }
}
