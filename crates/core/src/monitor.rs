//! The multi-resource contention monitor (§VI).
//!
//! Responsibilities, mapped to the paper:
//!
//! * hold the profiled latency-vs-pressure curves of the three contention
//!   meters (Fig. 8) and invert observed meter latencies into pressure
//!   estimates (`P = {P_cpu, P_io, P_net}`, §IV-B step 2);
//! * collect heartbeat samples of per-resource pressure over the sample
//!   period `T` (Eq. 8) and run PCA over them to update the Eq. 6
//!   weights `w₀ → w₁ … wₙ` (§VI-A);
//! * calibrate the scalar gain of the latency prediction from observed
//!   serverless latencies so `μₙ` "converges to the real processing
//!   capacity of containers" (§VI-A).

use crate::monitor_nd::NdContentionMonitor;
use amoeba_meters::ProfileCurve;

/// Eq. 8: the lower bound on the sample period so that one accidental
/// cold start inside a period cannot trick the controller into seeing a
/// QoS violation:
///
/// ```text
/// T > (cold_start − QoS_t + t_exec) / ((1 − e)·QoS_t)
/// ```
///
/// All arguments in seconds; `e` is the allowed error fraction. Returns
/// 0 when the numerator is non-positive (a cold start fits inside the
/// QoS budget — any period works).
pub fn sample_period_lower_bound(
    cold_start_s: f64,
    qos_target_s: f64,
    t_exec_s: f64,
    e: f64,
) -> f64 {
    assert!(qos_target_s > 0.0 && (0.0..1.0).contains(&e));
    let numerator = cold_start_s - qos_target_s + t_exec_s;
    if numerator <= 0.0 {
        return 0.0;
    }
    numerator / ((1.0 - e) * qos_target_s)
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// EWMA smoothing factor for meter latencies (0 < α ≤ 1; higher =
    /// more reactive).
    pub ewma_alpha: f64,
    /// Use the PCA weight correction (false = Amoeba-NoM's pessimistic
    /// uniform weights).
    pub use_pca: bool,
    /// Heartbeat samples kept for PCA (sliding window).
    pub pca_window: usize,
    /// Minimum samples before PCA replaces the initial weights.
    pub pca_min_samples: usize,
    /// Median filter over the last `median_window` raw meter samples
    /// before the EWMA sees them: a dropped/corrupted meter sample
    /// (GC pause, scheduling stall, chaos-injected outlier) then
    /// cannot yank the pressure estimate or the PCA weight update.
    /// `1` (the default) disables the filter and reproduces the
    /// plain-EWMA behaviour bit for bit.
    pub median_window: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            ewma_alpha: 0.3,
            use_pca: true,
            pca_window: 240,
            pca_min_samples: 12,
            median_window: 1,
        }
    }
}

/// The common surface of the contention monitors: the paper's fixed
/// three-meter [`ContentionMonitor`] and the production-oriented
/// [`NdContentionMonitor`] over arbitrary dimensions. Everything the
/// runtime plumbs through a monitor — meter observations, heartbeat
/// sample periods, pressure and weight readout — goes through here, so
/// new monitor variants slot in without touching the kernel.
pub trait Monitor {
    /// Number of metered resource dimensions.
    fn dimensions(&self) -> usize;
    /// Record one observed meter-query latency for dimension `resource`.
    fn observe_meter_latency(&mut self, resource: usize, latency_s: f64);
    /// Deliver one heartbeat package (end of an Eq. 8 sample period):
    /// append the current pressure vector to the PCA window and refresh
    /// the Eq. 6 weights.
    fn heartbeat(&mut self);
    /// Current pressure estimate, one entry per dimension.
    fn pressure_vec(&self) -> Vec<f64>;
    /// Current Eq. 6 weights, one entry per dimension.
    fn weight_vec(&self) -> Vec<f64>;
    /// Number of heartbeat samples currently in the PCA window.
    fn heartbeat_count(&self) -> usize;
}

/// Median of the last `window` raw samples in `buf` after pushing
/// `raw` (the shared pre-EWMA filter of both monitor variants; even
/// counts average the middle pair). `window <= 1` bypasses the buffer
/// entirely.
pub fn median_filter(buf: &mut Vec<f64>, window: usize, raw: f64) -> f64 {
    if window <= 1 {
        return raw;
    }
    buf.push(raw);
    if buf.len() > window {
        buf.remove(0);
    }
    let mut sorted = buf.clone();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// The paper's monitor: exactly the three Fig. 8 meters `[cpu, io,
/// net]`, with fixed-size array accessors for the controller. One
/// instance serves the whole platform (pressures are global); the
/// per-service calibration gain lives in the controller's per-service
/// state.
///
/// All the actual plumbing — median pre-filter, EWMA, curve inversion,
/// PCA weight refresh — is the dimension-generic
/// [`NdContentionMonitor`]; this type only pins the dimension count to
/// three and narrows the vector readouts back to `[f64; 3]`.
pub struct ContentionMonitor {
    inner: NdContentionMonitor,
}

/// The fixed meter names, in id order (§IV-B).
const METER_NAMES: [&str; 3] = ["cpu", "io", "net"];

impl ContentionMonitor {
    /// A monitor with the given profiled curves `[cpu, io, net]`.
    ///
    /// Initial weights: uniform `(1, 1, 1)` — §IV-B: "previous queries
    /// routed to the serverless platform serve to estimate the value of
    /// the weight w₀"; until enough heartbeats arrive the monitor stays
    /// at the pessimistic prior (which is also exactly the Amoeba-NoM
    /// behaviour when PCA is disabled).
    pub fn new(cfg: MonitorConfig, curves: [ProfileCurve; 3]) -> Self {
        let meters = METER_NAMES
            .iter()
            .zip(curves)
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        ContentionMonitor {
            inner: NdContentionMonitor::new(cfg, meters),
        }
    }

    /// Record one observed meter query latency for the `resource`-th
    /// meter (0 = cpu, 1 = io, 2 = net).
    pub fn observe_meter_latency(&mut self, resource: usize, latency_s: f64) {
        self.inner.observe_meter_latency(resource, latency_s);
    }

    /// Current pressure estimate `P = {P_cpu, P_io, P_net}` — observed
    /// meter latencies inverted through the Fig. 8 curves. Resources
    /// with no observation yet read as zero pressure.
    pub fn pressures(&self) -> [f64; 3] {
        let p = self.inner.pressures();
        [p[0], p[1], p[2]]
    }

    /// Deliver one heartbeat package (end of a sample period): the
    /// current pressure vector is appended to the PCA window and the
    /// weights are refreshed (§VI-A).
    pub fn heartbeat(&mut self) {
        self.inner.heartbeat();
    }

    /// The current Eq. 6 weights `w = (w_cpu, w_io, w_net)`.
    pub fn weights(&self) -> [f64; 3] {
        let w = self.inner.weights();
        [w[0], w[1], w[2]]
    }

    /// The smoothed meter latencies `[cpu, io, net]` in seconds (`None`
    /// where a meter has not reported yet). These are the raw inputs the
    /// pressure inversion reads; telemetry heartbeats record them.
    pub fn smoothed_latencies(&self) -> [Option<f64>; 3] {
        let s = self.inner.smoothed_latencies();
        [s[0], s[1], s[2]]
    }

    /// Number of heartbeat samples currently in the PCA window.
    pub fn heartbeat_count(&self) -> usize {
        self.inner.heartbeat_count()
    }
}

impl Monitor for ContentionMonitor {
    fn dimensions(&self) -> usize {
        3
    }
    fn observe_meter_latency(&mut self, resource: usize, latency_s: f64) {
        ContentionMonitor::observe_meter_latency(self, resource, latency_s);
    }
    fn heartbeat(&mut self) {
        ContentionMonitor::heartbeat(self);
    }
    fn pressure_vec(&self) -> Vec<f64> {
        self.pressures().to_vec()
    }
    fn weight_vec(&self) -> Vec<f64> {
        self.weights().to_vec()
    }
    fn heartbeat_count(&self) -> usize {
        ContentionMonitor::heartbeat_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curves() -> [ProfileCurve; 3] {
        let mk = |base: f64| {
            ProfileCurve::from_sweep(vec![
                (0.0, base),
                (0.3, base * 1.2),
                (0.6, base * 1.8),
                (0.9, base * 5.0),
            ])
        };
        [mk(0.05), mk(0.08), mk(0.07)]
    }

    #[test]
    fn eq8_sample_period() {
        // cold_start 1.5s, QoS 0.2s, exec 0.1s, e = 0.1:
        // T > (1.5 - 0.2 + 0.1) / (0.9 * 0.2) = 1.4 / 0.18.
        let t = sample_period_lower_bound(1.5, 0.2, 0.1, 0.1);
        assert!((t - 1.4 / 0.18).abs() < 1e-12);
    }

    #[test]
    fn eq8_zero_when_cold_start_fits() {
        assert_eq!(sample_period_lower_bound(0.5, 1.0, 0.1, 0.1), 0.0);
    }

    #[test]
    fn eq8_smaller_error_means_more_frequent_sampling() {
        // "If the allowed error is small, Amoeba has to sample the
        // contention on the serverless platform more frequently" — i.e.
        // a smaller allowed error e yields a smaller lower bound on T.
        let loose = sample_period_lower_bound(2.0, 0.3, 0.1, 0.3);
        let tight = sample_period_lower_bound(2.0, 0.3, 0.1, 0.05);
        assert!(
            tight < loose,
            "smaller e ⇒ shorter sample period: {tight} vs {loose}"
        );
    }

    #[test]
    fn pressures_invert_meter_latency() {
        let mut m = ContentionMonitor::new(MonitorConfig::default(), curves());
        assert_eq!(m.pressures(), [0.0; 3]);
        // Feed the cpu meter its latency at pressure 0.6 repeatedly so
        // the EWMA converges there.
        for _ in 0..50 {
            m.observe_meter_latency(0, 0.05 * 1.8);
        }
        let p = m.pressures();
        assert!((p[0] - 0.6).abs() < 0.01, "{p:?}");
        assert_eq!(p[1], 0.0);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut m = ContentionMonitor::new(MonitorConfig::default(), curves());
        for _ in 0..50 {
            m.observe_meter_latency(0, 0.05); // idle
        }
        m.observe_meter_latency(0, 0.25); // one cold-start outlier
        let p = m.pressures();
        assert!(p[0] < 0.9, "one outlier must not read as saturation: {p:?}");
        // A few more idle observations wash the outlier out again.
        for _ in 0..15 {
            m.observe_meter_latency(0, 0.05);
        }
        let p = m.pressures();
        assert!(p[0] < 0.1, "EWMA must recover after the outlier: {p:?}");
    }

    #[test]
    fn median_filter_rejects_a_single_outlier_outright() {
        let cfg = MonitorConfig {
            median_window: 3,
            ..Default::default()
        };
        let mut filtered = ContentionMonitor::new(cfg, curves());
        let mut plain = ContentionMonitor::new(MonitorConfig::default(), curves());
        for _ in 0..50 {
            filtered.observe_meter_latency(0, 0.05);
            plain.observe_meter_latency(0, 0.05);
        }
        // One corrupted sample (chaos outlier, 25× the idle latency).
        filtered.observe_meter_latency(0, 0.05 * 25.0);
        plain.observe_meter_latency(0, 0.05 * 25.0);
        // The median over {0.05, 0.05, 1.25} is 0.05: the outlier never
        // reaches the EWMA, whereas the plain monitor absorbs a bite.
        let pf = filtered.pressures()[0];
        let pp = plain.pressures()[0];
        assert!(pf < 1e-9, "median-filtered pressure moved: {pf}");
        assert!(pp > 0.1, "plain EWMA should have absorbed it: {pp}");
    }

    #[test]
    fn median_window_one_is_bit_identical_to_the_plain_path() {
        let explicit = MonitorConfig {
            median_window: 1,
            ..Default::default()
        };
        let mut a = ContentionMonitor::new(explicit, curves());
        let mut b = ContentionMonitor::new(MonitorConfig::default(), curves());
        for i in 0..200 {
            let l = 0.05 * (1.0 + (i % 13) as f64 * 0.07);
            a.observe_meter_latency(i % 3, l);
            b.observe_meter_latency(i % 3, l);
            if i % 4 == 0 {
                a.heartbeat();
                b.heartbeat();
            }
        }
        assert_eq!(a.pressures(), b.pressures());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn median_filter_still_tracks_sustained_contention() {
        // A real pressure shift is not an outlier: after `window`
        // consecutive high samples the median follows the shift and the
        // EWMA converges as usual.
        let cfg = MonitorConfig {
            median_window: 5,
            ..Default::default()
        };
        let mut m = ContentionMonitor::new(cfg, curves());
        for _ in 0..60 {
            m.observe_meter_latency(0, 0.05 * 1.8); // pressure 0.6 latency
        }
        let p = m.pressures();
        assert!((p[0] - 0.6).abs() < 0.01, "{p:?}");
    }

    #[test]
    fn median_filter_window_one_is_a_pass_through() {
        let mut buf = Vec::new();
        assert_eq!(median_filter(&mut buf, 1, 0.42), 0.42);
        assert_eq!(median_filter(&mut buf, 0, 7.0), 7.0);
        assert!(buf.is_empty(), "window <= 1 must not buffer samples");
    }

    #[test]
    fn median_filter_odd_window_takes_the_middle() {
        let mut buf = Vec::new();
        median_filter(&mut buf, 3, 0.1);
        median_filter(&mut buf, 3, 9.0); // outlier
        assert_eq!(median_filter(&mut buf, 3, 0.2), 0.2);
        // Window slides: {9.0, 0.2, 0.3} → median 0.3.
        assert_eq!(median_filter(&mut buf, 3, 0.3), 0.3);
    }

    #[test]
    fn median_filter_even_count_averages_the_middle_pair() {
        let mut buf = Vec::new();
        median_filter(&mut buf, 4, 0.1);
        let m = median_filter(&mut buf, 4, 0.3);
        assert!((m - 0.2).abs() < 1e-12, "median of {{0.1, 0.3}}: {m}");
    }

    #[test]
    fn median_filter_evicts_oldest_sample_first() {
        let mut buf = Vec::new();
        for x in [1.0, 2.0, 3.0] {
            median_filter(&mut buf, 3, x);
        }
        median_filter(&mut buf, 3, 4.0);
        assert_eq!(buf, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn monitor_trait_objects_unify_fixed_and_nd() {
        use crate::monitor_nd::NdContentionMonitor;
        let nd_meters = curves()
            .iter()
            .enumerate()
            .map(|(i, c)| (format!("r{i}"), c.clone()))
            .collect();
        let mut monitors: Vec<Box<dyn Monitor>> = vec![
            Box::new(ContentionMonitor::new(MonitorConfig::default(), curves())),
            Box::new(NdContentionMonitor::new(
                MonitorConfig::default(),
                nd_meters,
            )),
        ];
        for m in &mut monitors {
            assert_eq!(m.dimensions(), 3);
            for _ in 0..50 {
                m.observe_meter_latency(0, 0.05 * 1.8);
            }
            m.heartbeat();
        }
        // Same inputs through either implementation: same readouts.
        let p0 = monitors[0].pressure_vec();
        let p1 = monitors[1].pressure_vec();
        assert_eq!(p0, p1);
        assert_eq!(monitors[0].weight_vec(), monitors[1].weight_vec());
        assert_eq!(monitors[0].heartbeat_count(), 1);
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut m = ContentionMonitor::new(MonitorConfig::default(), curves());
        m.observe_meter_latency(1, f64::NAN);
        m.observe_meter_latency(1, -1.0);
        assert_eq!(m.pressures()[1], 0.0);
    }

    #[test]
    fn weights_start_uniform() {
        let m = ContentionMonitor::new(MonitorConfig::default(), curves());
        assert_eq!(m.weights(), [1.0; 3]);
    }

    #[test]
    fn nom_variant_keeps_uniform_weights() {
        let cfg = MonitorConfig {
            use_pca: false,
            ..Default::default()
        };
        let mut m = ContentionMonitor::new(cfg, curves());
        for i in 0..100 {
            m.observe_meter_latency(0, 0.05 + (i % 7) as f64 * 0.01);
            m.observe_meter_latency(1, 0.08 + (i % 5) as f64 * 0.01);
            m.heartbeat();
        }
        assert_eq!(m.weights(), [1.0; 3], "NoM never departs from uniform");
    }

    #[test]
    fn pca_downweights_a_quiet_resource() {
        let mut m = ContentionMonitor::new(MonitorConfig::default(), curves());
        // CPU and IO pressures move (correlated); network stays silent.
        for i in 0..60 {
            let level = (i % 10) as f64 / 10.0 * 0.6;
            m.observe_meter_latency(0, m_curve_lat(0.05, level));
            m.observe_meter_latency(1, m_curve_lat(0.08, level));
            m.observe_meter_latency(2, 0.07); // idle network
            m.heartbeat();
        }
        let w = m.weights();
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "PCA weights normalised: {w:?}");
        assert!(
            w[2] < w[0] && w[2] < w[1],
            "quiet resource downweighted: {w:?}"
        );
        // Correlated cpu/io share the weight roughly equally.
        assert!((w[0] - w[1]).abs() < 0.15, "{w:?}");
    }

    /// Latency of the test curve (base latency scaled like `curves()`)
    /// at a given pressure, linear between the control points.
    fn m_curve_lat(base: f64, u: f64) -> f64 {
        let pts = [(0.0, 1.0), (0.3, 1.2), (0.6, 1.8), (0.9, 5.0)];
        for w in pts.windows(2) {
            if u <= w[1].0 {
                let f = (u - w[0].0) / (w[1].0 - w[0].0);
                return base * (w[0].1 * (1.0 - f) + w[1].1 * f);
            }
        }
        base * 5.0
    }

    #[test]
    fn heartbeat_window_is_bounded() {
        let cfg = MonitorConfig {
            pca_window: 10,
            ..Default::default()
        };
        let mut m = ContentionMonitor::new(cfg, curves());
        for _ in 0..50 {
            m.heartbeat();
        }
        assert_eq!(m.heartbeat_count(), 10);
    }

    #[test]
    fn weights_sum_to_one_after_pca_kicks_in() {
        let mut m = ContentionMonitor::new(MonitorConfig::default(), curves());
        for i in 0..40 {
            m.observe_meter_latency(0, 0.05 * (1.0 + (i % 9) as f64 * 0.1));
            m.observe_meter_latency(1, 0.08 * (1.0 + ((i * 3) % 7) as f64 * 0.1));
            m.observe_meter_latency(2, 0.07 * (1.0 + ((i * 5) % 4) as f64 * 0.1));
            m.heartbeat();
        }
        let w = m.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{w:?}");
        assert!(w.iter().all(|&x| x >= 0.0));
    }
}
