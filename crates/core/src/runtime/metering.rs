//! Metering and sampling: the contention meters' heartbeat queries,
//! the monitor's Eq. 8 sample periods, and the usage/timeline sampler.

use super::{Ev, Experiment, SimWorld};
use crate::controller::DeployMode;
use amoeba_meters::METER_QPS;
use amoeba_platform::{Query, QueryId};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{HeartbeatRecord, TelemetryEvent, TelemetrySink};

/// One contention-meter query goes out (deterministic 1 Hz per meter,
/// phase-shifted so the three never collide, §VII-E).
pub(crate) fn on_meter_arrival(world: &mut SimWorld, meter: usize, now: SimTime) {
    let SimWorld {
        serverless,
        platform_rng,
        bus,
        queue,
        meter_ids,
        meter_next_id,
        horizon_t,
        ..
    } = world;
    let sid = meter_ids[meter];
    let query = Query {
        id: QueryId::meter(meter, *meter_next_id),
        service: sid,
        submitted: now,
    };
    *meter_next_id += 1;
    bus.extend(serverless.submit(query, now, platform_rng));
    let next = now + SimDuration::from_secs_f64(1.0 / METER_QPS);
    if next < *horizon_t {
        queue.push(next, Ev::MeterArrival { meter });
    }
}

/// End of one Eq. 8 sample period: deliver the heartbeat package to
/// the monitor (pressure snapshot into the PCA window, weight refresh).
pub(crate) fn on_heartbeat<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        monitor,
        queue,
        horizon_t,
        heartbeat_period,
        ..
    } = world;
    monitor.heartbeat();
    if sink.enabled() {
        sink.record(TelemetryEvent::Heartbeat(HeartbeatRecord {
            t: now,
            meter_latency_s: monitor.smoothed_latencies(),
            pressures: monitor.pressures(),
            weights: monitor.weights(),
        }));
    }
    let next = now + *heartbeat_period;
    if next < *horizon_t {
        queue.push(next, Ev::Heartbeat);
    }
}

/// Periodic usage sample: integrate billable core/memory seconds per
/// service, push the Fig. 13 timelines, and account the meters' own
/// CPU consumption (§VII-E overhead).
pub(crate) fn on_usage_sample(exp: &Experiment, world: &mut SimWorld, now: SimTime) {
    let SimWorld {
        services,
        serverless,
        iaas,
        engine,
        controller,
        queue,
        fabric,
        meter_ids,
        meter_core_seconds,
        last_usage_sample,
        horizon_t,
        ..
    } = world;
    let dt = now.duration_since(*last_usage_sample).as_secs_f64();
    *last_usage_sample = now;
    for (idx, s) in services.iter_mut().enumerate() {
        // Fleet-wide aggregates: node 0 plus every fabric node (the
        // single-node path sums over nothing extra and stays
        // bit-identical).
        let (mut iaas_cores, mut iaas_mem) = iaas.allocation(s.sid);
        let mut busy_iaas = iaas.busy_cores(s.sid);
        let mut containers = serverless.container_count(s.sid) as f64;
        let mut busy_count = serverless.busy_count(s.sid) as f64;
        if let Some(f) = fabric.as_ref() {
            for rt in &f.nodes {
                let (c, m) = rt.iaas.allocation(s.sid);
                iaas_cores += c;
                iaas_mem += m;
                busy_iaas += rt.iaas.busy_cores(s.sid);
                containers += rt.serverless.container_count(s.sid) as f64;
                busy_count += rt.serverless.busy_count(s.sid) as f64;
            }
        }
        s.billable.iaas_core_seconds += iaas_cores * dt;
        s.billable.iaas_mem_mb_seconds += iaas_mem * dt;
        s.billable.serverless_mem_mb_seconds +=
            busy_count * exp.serverless_cfg.container_memory_mb * dt;
        let cores = iaas_cores + containers * exp.serverless_cfg.container_core_share;
        let mem = iaas_mem + containers * exp.serverless_cfg.container_memory_mb;
        s.usage.set_allocation(now, cores, mem);
        let rates = serverless.service_rates(s.sid);
        let busy_sl = busy_count * rates.cpu_cores;
        s.usage.set_consumption(now, busy_iaas + busy_sl);
        s.cores_timeline.push(now, cores);
        s.mem_timeline.push(now, mem);
        let mode = if s.background {
            DeployMode::Serverless
        } else {
            engine.mode(s.sid)
        };
        s.mode_timeline.push(
            now,
            if mode == DeployMode::Serverless {
                1.0
            } else {
                0.0
            },
        );
        s.load_timeline
            .push(now, controller.estimated_load(idx, now));
    }
    for (m, &mid) in meter_ids.iter().enumerate() {
        let rates = serverless.service_rates(mid);
        *meter_core_seconds += serverless.busy_count(mid) as f64 * rates.cpu_cores * dt;
        let _ = m;
    }
    let next = now + exp.usage_sample_period;
    if next < *horizon_t {
        queue.push(next, Ev::UsageSample);
    }
}
