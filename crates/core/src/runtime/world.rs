//! [`SimWorld`]: the mutable state of one run, plus its construction.
//!
//! Every event handler receives `&mut SimWorld` and destructures the
//! fields it needs, so the borrow checker sees disjoint field borrows
//! instead of one opaque blob — the property that lets the kernel's
//! match arms live in separate modules without cloning state around.

use super::effects::EffectBus;
use super::fabric::{self, Fabric, NodeRt};
use super::faults::ChaosRt;
use super::tenancy::{interference_spec, TenancyRt};
use super::workflow::WorkflowRt;
use super::{Ev, Experiment};
use crate::baselines::SystemVariant;
use crate::controller::{DeployMode, DeploymentController, ProactiveConfig, ServiceModel};
use crate::engine::{HybridEngine, TwoPlatformCommands};
use crate::monitor::{sample_period_lower_bound, ContentionMonitor, MonitorConfig};
use crate::runtime::results::BreakdownMeans;
use amoeba_chaos::FaultInjector;
use amoeba_forecast::HoltWintersDiurnal;
use amoeba_meters::{cpu_meter, io_meter, net_meter, LatencySurface, ProfileCurve};
use amoeba_metrics::{BillableUsage, LatencyRecorder, TimeSeries, UsageMeter};
use amoeba_platform::{Effect, IaasPlatform, NodeId, Scheduler, ServerlessPlatform, ServiceId};
use amoeba_sim::{Distributions, EventQueue, SimDuration, SimRng, SimTime};
use amoeba_telemetry::{AdmissionRecord, ServiceInfo, TelemetryEvent, TelemetrySink};
use amoeba_tenancy::PoolCapacity;
use amoeba_workload::{ArrivalProcess, LoadTrace, MicroserviceSpec, PoissonArrivals, WorkflowSpec};
use std::collections::BTreeMap;

/// Serverless container memory for lowered workflow stages, MB
/// (Table II's standard container size).
const STAGE_CONTAINER_MEM_MB: f64 = 256.0;

/// Per-service mutable run state: arrival stream, recorders, counters.
pub(crate) struct ServiceRt {
    pub(crate) sid: ServiceId,
    /// The registered spec — for plain services a clone of the setup's,
    /// for workflow stages the lowered per-stage spec (split budget).
    pub(crate) spec: MicroserviceSpec,
    pub(crate) background: bool,
    pub(crate) pinned: bool,
    /// Jittered control phase: this service's decision fires this long
    /// after the shared control tick. Zero (always, when
    /// [`Experiment::control_jitter_frac`] is zero) runs the synchronous
    /// in-tick decision path bit-identically.
    pub(crate) control_offset: SimDuration,
    pub(crate) arrivals: PoissonArrivals,
    pub(crate) exhausted: bool,
    pub(crate) recorder: LatencyRecorder,
    pub(crate) usage: UsageMeter,
    pub(crate) load_timeline: TimeSeries<f64>,
    pub(crate) cores_timeline: TimeSeries<f64>,
    pub(crate) mem_timeline: TimeSeries<f64>,
    pub(crate) mode_timeline: TimeSeries<f64>,
    pub(crate) breakdown: BreakdownMeans,
    pub(crate) submitted: usize,
    pub(crate) completed: usize,
    pub(crate) failed: usize,
    pub(crate) serverless_queries: usize,
    pub(crate) serverless_violations: usize,
    pub(crate) billable: BillableUsage,
    pub(crate) next_query_id: u64,
}

/// All mutable state of one experiment run. Built by [`setup`],
/// consumed by `results::finish`.
pub(crate) struct SimWorld {
    pub(crate) serverless: ServerlessPlatform,
    pub(crate) iaas: IaasPlatform,
    pub(crate) controller: DeploymentController,
    pub(crate) monitor: ContentionMonitor,
    pub(crate) engine: HybridEngine,
    pub(crate) services: Vec<ServiceRt>,
    pub(crate) meter_ids: [ServiceId; 3],
    /// The event calendar driving the run.
    pub(crate) queue: EventQueue<Ev>,
    /// Pending platform effects, drained after every dispatched event.
    pub(crate) bus: EffectBus,
    pub(crate) platform_rng: SimRng,
    pub(crate) iaas_rng: SimRng,
    /// Chaos bookkeeping, present only when a fault plan is attached.
    pub(crate) chaos: Option<ChaosRt>,
    /// Multi-node fabric, present only when the topology has more than
    /// one node. `None` runs the legacy single-node path bit-identically.
    pub(crate) fabric: Option<Fabric>,
    /// Workflow DAG bookkeeping, present only when a multi-stage
    /// workflow is attached. `None` runs the legacy path bit-identically.
    pub(crate) workflow: Option<WorkflowRt>,
    /// Multi-tenant bookkeeping, present only when a non-no-op tenancy
    /// setup is attached. `None` runs the legacy path bit-identically.
    pub(crate) tenancy: Option<TenancyRt>,
    /// Drain watchdog deadlines, armed per `ReleaseVms`.
    pub(crate) drain_deadline: Vec<Option<SimTime>>,
    pub(crate) wasted_prewarms: u64,
    pub(crate) failed_switches: u64,
    pub(crate) meter_core_seconds: f64,
    /// Cross-cell pool pressure injected by the fleet executor's epoch
    /// exchange, added to the locally measured pressures at decision
    /// time. All-zero (the default, and the only state serial runs ever
    /// observe) is a no-op.
    pub(crate) external_pressure: [f64; 3],
    pub(crate) last_usage_sample: SimTime,
    pub(crate) pressure_sum: [f64; 3],
    pub(crate) pressure_samples: usize,
    pub(crate) meter_next_id: u64,
    /// End of the simulated horizon (no periodic event re-arms past it).
    pub(crate) horizon_t: SimTime,
    /// Outcomes of queries submitted before this are not recorded.
    pub(crate) warmup_t: SimTime,
    pub(crate) heartbeat_period: SimDuration,
    /// The per-tenant container cap, for the Eq. 7 prewarm clamp.
    pub(crate) n_max: u32,
}

/// One managed service to register: a plain [`super::ServiceSetup`] or
/// one lowered workflow stage.
struct SvcDesc {
    spec: MicroserviceSpec,
    background: bool,
    /// External arrival trace; `None` for internal (non-root) workflow
    /// stages, fed by upstream stage completions instead.
    trace: Option<LoadTrace>,
    /// Diurnal period for the forecaster's seasonal buckets.
    day_s: f64,
}

/// Build the world: fork the RNG streams, register services and meters
/// on both platforms, construct controller/monitor/engine, seed the
/// event calendar and pre-draw the chaos fault calendar. The RNG fork
/// and registration order here is part of the determinism contract —
/// reordering anything reshuffles every downstream draw.
pub(crate) fn setup<S: TelemetrySink + ?Sized>(exp: &Experiment, sink: &mut S) -> SimWorld {
    let mut master_rng = SimRng::seed_from_u64(exp.seed);
    let platform_rng = master_rng.fork();
    let iaas_rng = master_rng.fork();

    // Node 0 takes its topology scale only in multi-node runs, so the
    // legacy path never re-derives its config through a multiply.
    let mut serverless = ServerlessPlatform::new(if exp.topology.node_count() > 1 {
        exp.topology.scaled(&exp.serverless_cfg, NodeId::ZERO)
    } else {
        exp.serverless_cfg
    });
    let mut iaas = IaasPlatform::new(exp.iaas_cfg);
    // Proactive variants look ahead by exactly the switch latency in
    // each direction: a switch up waits on the VM boot, a switch
    // down on the container prewarm, and either decision lands one
    // control period after it is made.
    let mut controller_cfg = exp.controller_cfg;
    if exp.variant.proactive() && controller_cfg.proactive.is_none() {
        controller_cfg.proactive = Some(ProactiveConfig {
            up_horizon: SimDuration::from_secs_f64(exp.iaas_cfg.boot_time_s) + exp.control_period,
            down_horizon: SimDuration::from_secs_f64(exp.serverless_cfg.cold_start_median_s)
                + exp.control_period,
        });
    }
    let mut controller = DeploymentController::new(controller_cfg);

    let n_max = exp
        .serverless_cfg
        .tenant_container_cap
        .min(exp.serverless_cfg.memory_container_cap());
    let caps = [
        exp.serverless_cfg.node.cores,
        exp.serverless_cfg.node.disk_bw_mbps,
        exp.serverless_cfg.node.nic_bw_mbps,
    ];

    // Flatten plain services and lowered workflow stages into one
    // registration list. Stage budgets come from the analytic solo
    // latency (execution phases plus serverless overheads), computed
    // *before* registration because registering a spec consumes its
    // QoS target for IaaS capacity sizing.
    let mut descs: Vec<SvcDesc> = exp
        .services
        .iter()
        .map(|s| SvcDesc {
            spec: s.spec.clone(),
            background: s.background,
            day_s: s.trace.day_seconds(),
            trace: Some(s.trace.clone()),
        })
        .collect();
    let mut wf_meta: Vec<(WorkflowSpec, Vec<usize>, Vec<f64>)> = Vec::new();
    for wf in &exp.workflows {
        let spec = &wf.spec;
        let l0_est: Vec<f64> = spec
            .stages()
            .iter()
            .map(|st| {
                st.demand.solo_exec_seconds(
                    exp.serverless_cfg.per_flow_io_mbps,
                    exp.serverless_cfg.per_flow_net_mbps,
                ) + exp.serverless_cfg.auth_s
                    + exp.serverless_cfg.code_load_base_s
                    + exp.serverless_cfg.code_load_s_per_mb * st.demand.mem_mb
                    + exp.serverless_cfg.result_post_s
            })
            .collect();
        let budgets = spec.stage_budgets(&l0_est);
        if spec.is_single_stage() {
            // A single-stage DAG is a plain foreground service: full
            // budget, legacy arrival path, no instance tracking.
            descs.push(SvcDesc {
                spec: MicroserviceSpec {
                    name: spec.name().to_string(),
                    demand: spec.stages()[0].demand,
                    qos_target_s: spec.qos_target_s(),
                    qos_percentile: spec.qos_percentile(),
                    peak_qps: spec.peak_qps(),
                    container_mem_mb: STAGE_CONTAINER_MEM_MB,
                },
                background: false,
                day_s: wf.trace.day_seconds(),
                trace: Some(wf.trace.clone()),
            });
            continue;
        }
        let first = descs.len();
        for (i, st) in spec.stages().iter().enumerate() {
            descs.push(SvcDesc {
                spec: MicroserviceSpec {
                    name: format!("{}.{}", spec.name(), st.name),
                    demand: st.demand,
                    qos_target_s: budgets[i],
                    qos_percentile: spec.qos_percentile(),
                    // Every instance visits every stage once, so each
                    // stage is provisioned for the workflow's full peak.
                    peak_qps: spec.peak_qps(),
                    container_mem_mb: STAGE_CONTAINER_MEM_MB,
                },
                background: false,
                day_s: wf.trace.day_seconds(),
                trace: (i == spec.root()).then(|| wf.trace.clone()),
            });
        }
        wf_meta.push((spec.clone(), (first..descs.len()).collect(), budgets));
    }

    // Tenant lowering: run vendor admission against the pool, then
    // append admitted tenants as ordinary foreground services — each
    // gets its own controller row, so "every tenant runs its own
    // Amoeba" falls out of the per-service independence that already
    // exists. Appending after every plain service and workflow stage
    // keeps the master-RNG fork prefix untouched (the determinism
    // contract above); a no-op setup builds no `TenancyRt` at all.
    let tenancy_setup = exp.tenancy.as_ref().filter(|t| !t.is_noop());
    let mut tenancy: Option<TenancyRt> = None;
    if let Some(tn) = tenancy_setup {
        let pool = PoolCapacity {
            cores: exp.serverless_cfg.node.cores,
            mem_mb: exp.serverless_cfg.pool_memory_mb,
            io_mbps: exp.serverless_cfg.node.disk_bw_mbps,
            net_mbps: exp.serverless_cfg.node.nic_bw_mbps,
            solo_io_mbps: exp.serverless_cfg.per_flow_io_mbps,
            solo_net_mbps: exp.serverless_cfg.per_flow_net_mbps,
        };
        let decisions = tn.policy.admit(&tn.tenants, &pool);
        // The tenant's diurnal day spans the run: phase heterogeneity
        // unfolds inside the horizon whatever its length.
        let day_s = exp.horizon.as_secs_f64();
        let mut svc = Vec::with_capacity(tn.tenants.len());
        for (t, d) in tn.tenants.iter().zip(&decisions) {
            if d.admitted {
                svc.push(Some(descs.len()));
                descs.push(SvcDesc {
                    spec: t.spec.clone(),
                    background: false,
                    day_s,
                    trace: Some(LoadTrace::new(t.pattern.clone(), t.spec.peak_qps, day_s)),
                });
            } else {
                svc.push(None);
            }
        }
        tenancy = Some(TenancyRt {
            decisions,
            svc,
            endogenous: tn.endogenous_pressure,
            reclamation: tn.reclamation,
            vendor_tick: SimDuration::from_secs_f64(tn.vendor_tick_s),
            throttled: false,
            reclamations: 0,
            interference_sid: None,
        });
    }

    // Register every service on both platforms (ids must align) and
    // build its controller model from analytic profiling.
    let mut services: Vec<ServiceRt> = Vec::new();
    for desc in &descs {
        let sid = serverless.register(desc.spec.clone());
        let iid = iaas.register(desc.spec.clone());
        assert_eq!(sid, iid, "platform id mismatch");
        let phases = serverless.service_phases(sid);
        let overhead = serverless.overhead_seconds(sid);
        let l0 = serverless.solo_latency_seconds(sid);
        let rates = serverless.service_rates(sid);
        let rate_arr = [rates.cpu_cores, rates.io_mbps, rates.net_mbps];
        let mut loads: Vec<f64> = vec![
            0.5,
            desc.spec.peak_qps * 0.25,
            desc.spec.peak_qps * 0.5,
            desc.spec.peak_qps * 0.75,
            desc.spec.peak_qps,
            desc.spec.peak_qps * 1.25,
        ];
        loads.sort_by(|a, b| a.partial_cmp(b).unwrap());
        loads.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let pressures = vec![0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9];
        let surfaces: [LatencySurface; 3] = [0, 1, 2].map(|r| {
            LatencySurface::analytic(
                phases,
                overhead,
                r,
                exp.serverless_cfg.slowdown_kappa[r],
                n_max,
                desc.spec.qos_percentile,
                loads.clone(),
                pressures.clone(),
            )
        });
        let util_per_qps = [0, 1, 2].map(|r| l0 * rate_arr[r] / caps[r]);
        let idx = controller.register(ServiceModel {
            spec: desc.spec.clone(),
            l0_s: l0,
            surfaces,
            util_per_qps,
            n_max,
        });
        if exp.variant.proactive() && !desc.background {
            // Seasonal buckets at roughly half the tick cadence keep
            // several observations per bucket while still resolving
            // the diurnal shoulders.
            let day_s = desc.day_s;
            let control_s = exp.control_period.as_secs_f64().max(1e-3);
            let buckets = ((day_s / control_s / 2.0).round() as usize).clamp(24, 240);
            controller.attach_forecaster(
                idx,
                Box::new(HoltWintersDiurnal::new(
                    SimDuration::from_secs_f64(day_s),
                    buckets,
                )),
            );
        }
        // Internal (non-root) workflow stages have no external arrival
        // stream: their queries come from upstream stage completions.
        // The placeholder process is exhausted at t0 and draws from a
        // fixed-seed RNG, so the master fork order — part of the
        // determinism contract — is untouched by how many stages a
        // workflow has.
        let arrivals = match &desc.trace {
            Some(trace) => PoissonArrivals::from_trace(
                trace.clone(),
                SimTime::ZERO + exp.horizon,
                master_rng.fork(),
            ),
            None => PoissonArrivals::constant(1.0, SimTime::ZERO, SimRng::seed_from_u64(0)),
        };
        let pinned = desc.background || !exp.variant.switches();
        services.push(ServiceRt {
            sid,
            spec: desc.spec.clone(),
            background: desc.background,
            pinned,
            control_offset: SimDuration::ZERO,
            arrivals,
            exhausted: false,
            recorder: LatencyRecorder::new(),
            usage: UsageMeter::new(10.0),
            load_timeline: TimeSeries::new(),
            cores_timeline: TimeSeries::new(),
            mem_timeline: TimeSeries::new(),
            mode_timeline: TimeSeries::new(),
            breakdown: BreakdownMeans::default(),
            submitted: 0,
            completed: 0,
            failed: 0,
            serverless_queries: 0,
            serverless_violations: 0,
            billable: BillableUsage::default(),
            next_query_id: 0,
        });
    }
    let workflow = WorkflowRt::new(wf_meta, services.len());

    // Jittered control phase: each unpinned service draws its decision
    // offset from its own fork of the master stream. The forks happen
    // *after* every arrival-stream fork, so turning jitter on leaves
    // the arrival randomness untouched — a jittered run sees exactly
    // the load of its synchronous twin and isolates pure phase
    // desynchronisation. The `> 0.0` gate draws nothing by default,
    // keeping the master fork sequence (and every golden trace) intact.
    if exp.control_jitter_frac > 0.0 {
        let span = exp.control_period.as_secs_f64() * exp.control_jitter_frac;
        for svc in services.iter_mut() {
            if !svc.pinned {
                let mut jitter_rng = master_rng.fork();
                svc.control_offset =
                    SimDuration::from_secs_f64(jitter_rng.uniform_range(0.0, span));
            }
        }
    }

    // Register the three contention meters (serverless only — they
    // never run on IaaS, and their ids come after all services).
    let meter_specs = [cpu_meter(), io_meter(), net_meter()];
    let meter_ids: [ServiceId; 3] = [
        serverless.register(meter_specs[0].clone()),
        serverless.register(meter_specs[1].clone()),
        serverless.register(meter_specs[2].clone()),
    ];
    let meter_curves: [ProfileCurve; 3] = [0, 1, 2].map(|r| {
        let m = &meter_specs[r];
        let phases = [
            m.demand.cpu_s,
            m.demand.io_mb / exp.serverless_cfg.per_flow_io_mbps,
            m.demand.net_mb / exp.serverless_cfg.per_flow_net_mbps,
        ];
        let overhead = exp.serverless_cfg.auth_s
            + exp.serverless_cfg.code_load_base_s
            + exp.serverless_cfg.code_load_s_per_mb * m.demand.mem_mb
            + exp.serverless_cfg.result_post_s;
        ProfileCurve::analytic(
            phases,
            r,
            overhead,
            exp.serverless_cfg.slowdown_kappa[r],
            exp.serverless_cfg.max_utilization,
            40,
        )
    });
    let monitor = ContentionMonitor::new(
        MonitorConfig {
            use_pca: exp.variant.uses_pca(),
            ..exp.monitor_cfg
        },
        meter_curves,
    );

    // The chaos interference service: in tenancy mode, pressure-spike
    // traffic lands here so it *adds* pool load instead of displacing
    // the victim's own containers at its tenant cap. Registered after
    // the meters so every existing service and meter id is unchanged;
    // registration draws no RNG, and the cap override lets a spike
    // occupy the pool's full memory headroom.
    if let Some(trt) = tenancy.as_mut() {
        let isid = serverless.register(interference_spec());
        serverless.set_tenant_cap(isid, Some(exp.serverless_cfg.memory_container_cap()));
        trt.interference_sid = Some(isid);
    }

    // Initial modes: background pinned serverless; foreground starts
    // on IaaS (Amoeba's safe default, §III) except under OpenWhisk.
    let initial_fg_mode = if exp.variant == SystemVariant::OpenWhisk {
        DeployMode::Serverless
    } else {
        DeployMode::Iaas
    };
    let mut engine = HybridEngine::new(services.len(), initial_fg_mode, exp.variant.prewarms());
    engine.set_ack_policy(exp.ack_timeout, exp.max_ack_retries);

    // Multi-node fabric: remote platform pairs (registered in the same
    // order as node 0, so service ids align), the per-service home map
    // and the scheduler. Platform construction draws no randomness, so
    // the RNG fork order above is untouched by the topology. Meters and
    // chaos stay on node 0.
    let n_nodes = exp.topology.node_count();
    let mut fabric: Option<Fabric> = (n_nodes > 1).then(|| {
        let nodes: Vec<NodeRt> = (1..n_nodes)
            .map(|i| {
                let cfg = exp.topology.scaled(&exp.serverless_cfg, NodeId::new(i));
                let mut sl = ServerlessPlatform::new(cfg);
                let mut ia = IaasPlatform::new(exp.iaas_cfg);
                for desc in &descs {
                    let a = sl.register(desc.spec.clone());
                    let b = ia.register(desc.spec.clone());
                    debug_assert_eq!(a, b, "remote platform id mismatch");
                }
                NodeRt {
                    serverless: sl,
                    iaas: ia,
                }
            })
            .collect();
        let home: Vec<NodeId> = match exp.scheduler {
            Scheduler::EdgeAware => {
                let demands: Vec<[f64; 3]> = descs
                    .iter()
                    .map(|s| {
                        [
                            s.spec.peak_qps * s.spec.demand.cpu_s,
                            s.spec.peak_qps * s.spec.demand.io_mb,
                            s.spec.peak_qps * s.spec.demand.net_mb,
                        ]
                    })
                    .collect();
                fabric::edge_aware_homes(&demands, &exp.topology, caps)
            }
            _ => (0..services.len())
                .map(|i| NodeId::new(i % n_nodes))
                .collect(),
        };
        for (idx, &h) in home.iter().enumerate() {
            engine.set_home(ServiceId(idx as u32), h);
        }
        Fabric {
            nodes,
            scheduler: exp.scheduler,
            topology: exp.topology.clone(),
            home,
            node_submitted: vec![0; n_nodes],
            node_completed: vec![0; n_nodes],
            node_failed: vec![0; n_nodes],
            node_spills: vec![0; n_nodes],
            spill_total: 0,
        }
    });

    if sink.enabled() {
        sink.record(TelemetryEvent::RunStarted {
            variant: exp.variant.label().to_string(),
            seed: exp.seed,
            horizon_s: exp.horizon.as_secs_f64(),
            services: descs
                .iter()
                .map(|desc| ServiceInfo {
                    name: desc.spec.name.clone(),
                    background: desc.background,
                    initial_mode: if desc.background {
                        DeployMode::Serverless
                    } else {
                        initial_fg_mode
                    }
                    .into(),
                })
                .collect(),
        });
        if let (Some(tn), Some(trt)) = (tenancy_setup, tenancy.as_ref()) {
            for (t, d) in tn.tenants.iter().zip(&trt.decisions) {
                sink.record(TelemetryEvent::Admission(AdmissionRecord {
                    t: SimTime::ZERO,
                    tenant: t.spec.name.clone(),
                    admitted: d.admitted,
                    reserved_share: d.reserved_share,
                    ratio: tn.policy.ratio,
                }));
            }
        }
    }

    // Event calendar.
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let t0 = SimTime::ZERO;
    let horizon_t = t0 + exp.horizon;

    // Heartbeat period per Eq. 8 (worst case over foreground specs).
    let mut hb_s: f64 = 2.0;
    for desc in &descs {
        let t_exec = desc.spec.demand.solo_exec_seconds(
            exp.serverless_cfg.per_flow_io_mbps,
            exp.serverless_cfg.per_flow_net_mbps,
        );
        let lb = sample_period_lower_bound(
            exp.serverless_cfg.cold_start_median_s,
            desc.spec.qos_target_s,
            t_exec,
            0.1,
        );
        hb_s = hb_s.max(lb * 1.1);
    }
    let heartbeat_period = SimDuration::from_secs_f64(hb_s.clamp(2.0, 30.0));

    // Pending effects worklist shared across the run.
    let mut bus = EffectBus::new();

    // Boot IaaS groups for services starting there; pin background
    // to serverless (engine rows exist for them but are never
    // consulted for switching).
    for (idx, s) in services.iter().enumerate() {
        let mode = if s.background {
            DeployMode::Serverless
        } else {
            initial_fg_mode
        };
        if s.background {
            // Override the engine's initial mode for background rows.
            engine.force_mode(ServiceId(idx as u32), DeployMode::Serverless);
        }
        if mode == DeployMode::Iaas {
            let h = fabric.as_ref().map_or(NodeId::ZERO, |f| f.home[idx]);
            if h == NodeId::ZERO {
                bus.extend(iaas.activate(s.sid, t0));
            } else {
                // Remote-homed services boot their VM group on their
                // home node; its schedule lands on the calendar as a
                // node-tagged platform event.
                let eff = fabric
                    .as_mut()
                    .unwrap()
                    .node_mut(h)
                    .iaas
                    .activate(s.sid, t0);
                for e in eff {
                    match e {
                        Effect::Schedule { after, event } => {
                            queue.push(t0 + after, Ev::NodePlatform { node: h, event });
                        }
                        ack => bus.extend([ack]),
                    }
                }
            }
        }
    }

    // First arrivals.
    for (idx, svc) in services.iter_mut().enumerate() {
        if let Some(t) = svc.arrivals.next_after(t0) {
            queue.push(t, Ev::Arrival { idx });
        } else {
            svc.exhausted = true;
        }
    }
    if exp.run_meters {
        for (m, _) in meter_ids.iter().enumerate() {
            // Deterministic 1 Hz per meter, phase-shifted so the
            // three never collide (§VII-E: "scheduled in a round
            // time trip").
            queue.push(
                t0 + SimDuration::from_millis(100 + 333 * m as u64),
                Ev::MeterArrival { meter: m },
            );
        }
    }
    queue.push(t0 + exp.control_period, Ev::ControlTick);
    queue.push(t0 + heartbeat_period, Ev::Heartbeat);
    queue.push(t0 + exp.usage_sample_period, Ev::UsageSample);
    if let Some(trt) = tenancy.as_ref() {
        queue.push(t0 + trt.vendor_tick, Ev::VendorTick);
    }

    // Fault injection: pre-draw the whole timed-fault calendar from
    // the injector's independent RNG stream, so the runtime RNG
    // fork order is untouched whether or not a plan is attached.
    let chaos: Option<ChaosRt> = exp.fault_plan.clone().map(|plan| {
        let mut injector = FaultInjector::new(plan, exp.seed);
        for (t, f) in injector.schedule(exp.horizon, 3) {
            queue.push(t, Ev::Chaos(f));
        }
        ChaosRt {
            injector,
            meter_outage_until: [t0; 3],
            meter_outlier_pending: [0; 3],
            crash_requeued: BTreeMap::new(),
            boot_fault_since: vec![None; services.len()],
            spike_next_id: 0,
        }
    });

    let n_services = services.len();
    SimWorld {
        serverless,
        iaas,
        controller,
        monitor,
        engine,
        services,
        meter_ids,
        queue,
        bus,
        platform_rng,
        iaas_rng,
        chaos,
        fabric,
        workflow,
        tenancy,
        drain_deadline: vec![None; n_services],
        wasted_prewarms: 0,
        failed_switches: 0,
        meter_core_seconds: 0.0,
        external_pressure: [0.0; 3],
        last_usage_sample: t0,
        pressure_sum: [0.0; 3],
        pressure_samples: 0,
        meter_next_id: 0,
        horizon_t,
        warmup_t: t0 + exp.warmup,
        heartbeat_period,
        n_max,
    }
}

/// The node-0 simulated platforms wired up as the engine's command
/// target: every `EngineAction` lands here through the
/// [`TwoPlatformCommands`] surface (lifted onto the placement-target
/// API by [`crate::engine::Legacy`]), and every platform response is
/// pushed onto the effect bus — the only route by which engine
/// decisions reach platform state.
pub(crate) struct SimPlatforms<'a> {
    pub(crate) serverless: &'a mut ServerlessPlatform,
    pub(crate) iaas: &'a mut IaasPlatform,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) effects: &'a mut Vec<Effect>,
}

impl TwoPlatformCommands for SimPlatforms<'_> {
    fn prewarm(&mut self, service: ServiceId, count: u32, now: SimTime) {
        self.effects
            .extend(self.serverless.prewarm(service, count, now, self.rng));
    }

    fn activate_vms(&mut self, service: ServiceId, now: SimTime) {
        self.effects.extend(self.iaas.activate(service, now));
    }

    fn release_containers(&mut self, service: ServiceId, _now: SimTime) {
        self.serverless.release_service(service);
    }

    fn release_vms(&mut self, service: ServiceId, now: SimTime) {
        self.effects.extend(self.iaas.release(service, now));
    }
}
