//! Chaos bookkeeping and fault-domain event handlers: the platform
//! event feed (whose VM boots chaos may fail or delay), the timed
//! fault calendar, and injected pressure-spike traffic.

use super::{Ev, Experiment, SimWorld};
use crate::engine::RouteTarget;
use crate::monitor::ContentionMonitor;
use amoeba_chaos::{BootOutcome, FaultInjector, TimedFault};
use amoeba_platform::{ClusterEvent, Query, QueryId, ServiceId};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{
    FaultKind, FaultRecord, RecoveryKind, RecoveryRecord, TelemetryEvent, TelemetrySink,
};
use std::collections::BTreeMap;

/// Mutable chaos bookkeeping for one run, present only when a
/// [`FaultPlan`] is attached. Everything here is driven by the
/// injector's private RNG stream, so attaching a no-op plan leaves the
/// run bit-identical to a plan-free one.
///
/// [`FaultPlan`]: amoeba_chaos::FaultPlan
pub(crate) struct ChaosRt {
    pub(crate) injector: FaultInjector,
    /// Meter heartbeats completing before this time are silently lost.
    pub(crate) meter_outage_until: [SimTime; 3],
    /// Pending one-shot latency corruptions per meter.
    pub(crate) meter_outlier_pending: [u32; 3],
    /// Queries re-queued after a container crash, keyed by
    /// (service, query id) — per-service query ids collide across
    /// services — with the time of the first crash, for recovery-time
    /// accounting.
    pub(crate) crash_requeued: BTreeMap<(u32, u64), SimTime>,
    /// First failed/slow boot per service since the last healthy one.
    pub(crate) boot_fault_since: Vec<Option<SimTime>>,
    /// Id counter for injected spike queries.
    pub(crate) spike_next_id: u64,
}

/// Handle the chaos-owned completions: spike traffic (swallowed
/// whole), meter heartbeats lost in an outage window, and meter
/// samples corrupted by a pending outlier. Returns true when the
/// outcome must not reach the normal accounting path.
pub(crate) fn chaos_completion(
    ch: &mut ChaosRt,
    outcome: &amoeba_platform::QueryOutcome,
    now: SimTime,
    meter_ids: &[ServiceId; 3],
    monitor: &mut ContentionMonitor,
) -> bool {
    if outcome.query.id.is_spike() {
        return true;
    }
    if let Some(m) = meter_ids.iter().position(|&x| x == outcome.query.service) {
        if now < ch.meter_outage_until[m] {
            return true; // heartbeat lost in the blackout
        }
        if ch.meter_outlier_pending[m] > 0 {
            ch.meter_outlier_pending[m] -= 1;
            let factor = ch.injector.plan().outlier_factor;
            monitor.observe_meter_latency(m, outcome.latency().as_secs_f64() * factor);
            return true;
        }
    }
    false
}

/// Deliver one platform-internal event. Serverless events pass
/// straight through; `VmBootDone` first runs the chaos boot gauntlet —
/// a boot in flight may fail outright or land late by the plan's
/// slow-boot multiplier (§V resilience).
pub(crate) fn on_platform_event<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    ev: ClusterEvent,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        serverless,
        iaas,
        platform_rng,
        iaas_rng,
        bus,
        queue,
        chaos,
        horizon_t,
        ..
    } = world;
    let eff = match ev {
        ClusterEvent::ColdStartDone { .. }
        | ClusterEvent::ServerlessExecDone { .. }
        | ClusterEvent::ContainerExpire { .. } => serverless.handle(ev, now, platform_rng),
        ClusterEvent::VmBootDone { service } => {
            // Chaos may fail or delay a boot in flight;
            // past the horizon boots always land so the
            // calendar drains.
            let mut fate = match chaos.as_mut() {
                Some(ch) if now < *horizon_t && iaas.is_booting(service) => {
                    ch.injector.vm_boot_outcome()
                }
                _ => BootOutcome::Healthy,
            };
            let mult = chaos
                .as_ref()
                .map_or(1.0, |c| c.injector.plan().slow_boot_multiplier);
            if fate == BootOutcome::Slow && mult <= 1.0 {
                fate = BootOutcome::Healthy;
            }
            let idx = service.raw() as usize;
            match fate {
                BootOutcome::Fail => {
                    if let Some(ch) = chaos.as_mut() {
                        if idx < ch.boot_fault_since.len() && ch.boot_fault_since[idx].is_none() {
                            ch.boot_fault_since[idx] = Some(now);
                        }
                    }
                    if sink.enabled() {
                        sink.record(TelemetryEvent::Fault(FaultRecord {
                            t: now,
                            kind: FaultKind::VmBootFailure,
                            service: Some(idx),
                            queries_displaced: 0,
                            queries_dropped: 0,
                        }));
                    }
                    iaas.fail_boot(service, now)
                }
                BootOutcome::Slow => {
                    let extra = exp.iaas_cfg.boot_time_s * (mult - 1.0);
                    queue.push(now + SimDuration::from_secs_f64(extra), Ev::Platform(ev));
                    if sink.enabled() {
                        sink.record(TelemetryEvent::Fault(FaultRecord {
                            t: now,
                            kind: FaultKind::VmSlowBoot,
                            service: Some(idx),
                            queries_displaced: 0,
                            queries_dropped: 0,
                        }));
                    }
                    Vec::new()
                }
                BootOutcome::Healthy => {
                    if let Some(ch) = chaos.as_mut() {
                        if idx < ch.boot_fault_since.len() {
                            if let Some(since) = ch.boot_fault_since[idx].take() {
                                if sink.enabled() {
                                    sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                                        t: now,
                                        kind: RecoveryKind::VmBootSucceeded,
                                        service: Some(idx),
                                        after_s: now.duration_since(since).as_secs_f64(),
                                    }));
                                }
                            }
                        }
                    }
                    iaas.handle(ev, now, iaas_rng)
                }
            }
        }
        ClusterEvent::IaasExecDone { .. } => iaas.handle(ev, now, iaas_rng),
    };
    bus.extend(eff);
}

/// A scheduled fault fires. Container crashes displace or drop the
/// victim's in-flight query; meter faults poison the monitor's inputs;
/// pressure spikes schedule a burst of synthetic queries.
pub(crate) fn on_chaos<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    fault: TimedFault,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        services,
        engine,
        serverless,
        iaas,
        platform_rng,
        iaas_rng,
        bus,
        queue,
        chaos,
        fabric,
        workflow,
        warmup_t,
        ..
    } = world;
    if let Some(ch) = chaos.as_mut() {
        match fault {
            TimedFault::ContainerCrash => {
                let total = serverless.total_containers() as usize;
                let report = if total > 0 {
                    let victim = ch.injector.pick(total);
                    let (eff, report) = serverless.crash_container(victim, now, platform_rng);
                    bus.extend(eff);
                    report
                } else {
                    None // empty pool: the crash is a no-op
                };
                if let Some(rep) = report {
                    let idx = rep.service.raw() as usize;
                    let mut displaced = 0u64;
                    let mut dropped = 0u64;
                    if let Some(q) = rep.displaced {
                        if q.id.is_shadow() {
                            // Shadow, meter or spike work:
                            // nothing waits on it.
                        } else if ch.injector.drop_crashed_query() {
                            dropped = 1;
                            if idx < services.len() && q.submitted >= *warmup_t {
                                services[idx].failed += 1;
                            }
                            // A dropped stage query fails its whole
                            // workflow instance; sibling branches
                            // short-circuit when they complete, so
                            // per-stage conservation holds.
                            if let Some(wrt) = workflow.as_mut() {
                                wrt.on_stage_query_lost(idx, q.id);
                            }
                            // Chaos only strikes node 0; the fabric's
                            // conservation counters track every user
                            // query, warmup included.
                            if let Some(f) = fabric.as_mut() {
                                f.note_failed(amoeba_platform::NodeId::ZERO);
                            }
                        } else {
                            // Re-queue on the current route,
                            // keeping the original submit time
                            // so the lost work shows up as
                            // latency, not as a vanished query.
                            displaced = 1;
                            ch.crash_requeued
                                .entry((q.service.raw(), q.id.raw()))
                                .or_insert(now);
                            let target = if idx < services.len() && !services[idx].background {
                                engine.route(q.service)
                            } else {
                                RouteTarget::Serverless
                            };
                            match target {
                                RouteTarget::Serverless => {
                                    serverless.resume_service(q.service);
                                    bus.extend(serverless.submit(q, now, platform_rng));
                                }
                                RouteTarget::Iaas => {
                                    bus.extend(iaas.submit(q, now, iaas_rng));
                                }
                            }
                        }
                    }
                    if sink.enabled() {
                        sink.record(TelemetryEvent::Fault(FaultRecord {
                            t: now,
                            kind: FaultKind::ContainerCrash,
                            service: (idx < services.len()).then_some(idx),
                            queries_displaced: displaced,
                            queries_dropped: dropped,
                        }));
                    }
                }
            }
            TimedFault::MeterOutage => {
                let m = ch.injector.pick(3);
                ch.meter_outage_until[m] =
                    now + SimDuration::from_secs_f64(ch.injector.plan().meter_outage_duration_s);
                if sink.enabled() {
                    sink.record(TelemetryEvent::Fault(FaultRecord {
                        t: now,
                        kind: FaultKind::MeterOutage,
                        service: None,
                        queries_displaced: 0,
                        queries_dropped: 0,
                    }));
                }
            }
            TimedFault::MeterOutlier { meter } => {
                if meter < 3 {
                    ch.meter_outlier_pending[meter] += 1;
                }
                if sink.enabled() {
                    sink.record(TelemetryEvent::Fault(FaultRecord {
                        t: now,
                        kind: FaultKind::MeterOutlier,
                        service: None,
                        queries_displaced: 0,
                        queries_dropped: 0,
                    }));
                }
            }
            TimedFault::PressureSpike if !services.is_empty() => {
                let victim = ch.injector.pick(services.len());
                let sid = services[victim].sid;
                let plan = ch.injector.plan();
                let n = (plan.spike_qps * plan.spike_duration_s).ceil() as u64;
                let qps = plan.spike_qps.max(1e-9);
                for i in 0..n {
                    queue.push(
                        now + SimDuration::from_secs_f64(i as f64 / qps),
                        Ev::SpikeQuery { sid },
                    );
                }
                if sink.enabled() {
                    sink.record(TelemetryEvent::Fault(FaultRecord {
                        t: now,
                        kind: FaultKind::PressureSpike,
                        service: Some(victim),
                        queries_displaced: 0,
                        queries_dropped: 0,
                    }));
                }
            }
            TimedFault::PressureSpike => {}
        }
    }
}

/// One query of an injected pressure spike arrives: pure synthetic
/// load on the shared pool, excluded from every account.
///
/// In tenancy mode the spike executes as the dedicated interference
/// service, so it *adds* pool load on top of the ambient signal; the
/// legacy path submits under the victim's own service id, where the
/// tenant container cap makes the spike displace the victim's ambient
/// traffic instead of composing with it (kept bit-identical for the
/// golden traces).
pub(crate) fn on_spike_query(world: &mut SimWorld, sid: ServiceId, now: SimTime) {
    let SimWorld {
        serverless,
        platform_rng,
        bus,
        chaos,
        tenancy,
        ..
    } = world;
    if let Some(ch) = chaos.as_mut() {
        let target = tenancy
            .as_ref()
            .and_then(|t| t.interference_sid)
            .unwrap_or(sid);
        let q = Query {
            id: QueryId::spike(ch.spike_next_id),
            service: target,
            submitted: now,
        };
        ch.spike_next_id += 1;
        bus.extend(serverless.submit(q, now, platform_rng));
    }
}
