//! The experiment runtime: a staged event-dispatch kernel that wires
//! the controller, engine and monitor to the simulated platforms and
//! runs a full workload.
//!
//! One [`Experiment`] describes a scenario — which services run, their
//! diurnal traces, which [`SystemVariant`] manages them — and
//! [`Experiment::run`] executes it deterministically for the given seed,
//! producing per-service latency recordings, resource-usage integrals
//! and the timelines behind the paper's figures.
//!
//! # Kernel structure
//!
//! The run is a thin loop over three stages (see DESIGN.md §12):
//!
//! ```text
//! queue.pop() → dispatch(&mut world, ev) → effects::apply(...)
//! ```
//!
//! `world::SimWorld` owns every piece of mutable run state; each
//! event class is handled by its own module (`arrivals`, `control`,
//! `metering`, `faults`); platform effects are carried on the
//! `effects::EffectBus` and applied by `effects::apply`, which
//! routes completions to `completions` and switch-protocol acks to
//! `switching`. Handlers never mutate platforms behind the engine's
//! back: engine decisions go through the `PlatformCommands` trait and
//! every platform response returns as an effect on the bus.

mod arrivals;
mod completions;
mod control;
mod effects;
mod fabric;
mod faults;
mod metering;
mod results;
mod shard;
mod switching;
mod tenancy;
mod workflow;
mod world;

pub use results::{
    BreakdownMeans, MultiNodeSummary, NodeTotals, RunResult, ServiceResult, WorkflowResult,
};
pub use shard::EpochRun;

use crate::baselines::SystemVariant;
use crate::controller::{ControllerConfig, DecisionTrace};
use crate::engine::RouteTarget;
use crate::monitor::MonitorConfig;
use amoeba_chaos::{FaultPlan, TimedFault};
use amoeba_platform::{
    ClusterEvent, IaasConfig, NodeId, Query, Scheduler, ServerlessConfig, ServiceId, TopologyConfig,
};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{
    ForecastRecord, MemorySink, NoopSink, TelemetryEvent, TelemetrySink, Trace,
};
use amoeba_tenancy::TenancySetup;
use amoeba_workload::{LoadTrace, MicroserviceSpec, WorkflowSpec};

// Re-imports for the submodules and the test module (which glob-import
// `super::*`): the kernel's shared vocabulary.
pub(crate) use world::SimWorld;

/// Emit the tick's forecast as a telemetry event, when the decision
/// carried one (proactive variants with an attached forecaster only).
/// `realized_qps` stays `None` here — only the report layer, replaying
/// the trace after the fact, knows what λ turned out to be.
fn record_forecast<S: TelemetrySink + ?Sized>(
    sink: &mut S,
    now: SimTime,
    idx: usize,
    tr: &DecisionTrace,
) {
    if let Some(fc) = tr.forecast {
        sink.record(TelemetryEvent::Forecast(ForecastRecord {
            t: now,
            service: idx,
            horizon_s: fc.horizon.as_secs_f64(),
            mean_qps: fc.mean,
            lo_qps: fc.lo,
            hi_qps: fc.hi,
            realized_qps: None,
        }));
    }
}

/// One service in an experiment.
pub struct ServiceSetup {
    /// The microservice.
    pub spec: MicroserviceSpec,
    /// Its load trace.
    pub trace: LoadTrace,
    /// Background services are pinned to the serverless platform and
    /// exist to create contention (§VII-A: float, dd and cloud_stor run
    /// "with a lower peak load as the background service").
    pub background: bool,
}

/// One workflow DAG service in an experiment.
///
/// The runtime lowers each stage to its own managed service: the
/// end-to-end budget is split across stages in proportion to their
/// solo latencies along the critical path
/// ([`WorkflowSpec::stage_budgets`]), the load trace drives the root
/// stage, and stage completions enqueue successor arrivals through
/// the effect bus (fan-in joins on the slowest branch). A
/// single-stage workflow lowers to a plain foreground service and
/// runs the legacy path bit-identically.
pub struct WorkflowSetup {
    /// The validated DAG definition.
    pub spec: WorkflowSpec,
    /// The load trace driving the root stage. Every instance visits
    /// every stage once, so each stage sees this full λ (time-shifted
    /// by upstream latency).
    pub trace: LoadTrace,
}

/// A full experiment description.
pub struct Experiment {
    /// Serverless platform configuration.
    pub serverless_cfg: ServerlessConfig,
    /// IaaS platform configuration.
    pub iaas_cfg: IaasConfig,
    /// Controller tuning.
    pub controller_cfg: ControllerConfig,
    /// Monitor tuning.
    pub monitor_cfg: MonitorConfig,
    /// Which system manages the services.
    pub variant: SystemVariant,
    /// The services and their traces.
    pub services: Vec<ServiceSetup>,
    /// Workflow DAG services, lowered to per-stage managed services
    /// after `services` (stage ids follow the plain service ids).
    pub workflows: Vec<WorkflowSetup>,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// Time at the start excluded from latency/QoS accounting (VM boot
    /// and calibration transients).
    pub warmup: SimDuration,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Controller tick period.
    pub control_period: SimDuration,
    /// Usage/timeline sampling period.
    pub usage_sample_period: SimDuration,
    /// Run the background contention meters (disable to measure their
    /// overhead by difference).
    pub run_meters: bool,
    /// Multiplier on the Eq. 7 prewarm count (1.0 = the paper's rule;
    /// the prewarm ablation sweeps this to expose §V-A's tradeoff:
    /// too few containers → cold-start violations, too many → wasted
    /// resources).
    pub prewarm_factor: f64,
    /// Optional deterministic fault plan. `None` (the default) runs
    /// fault-free and is bit-identical to a run without the chaos
    /// subsystem: the injector draws from its own RNG stream, so it
    /// never perturbs arrival or platform randomness.
    pub fault_plan: Option<FaultPlan>,
    /// How long the engine waits for a prewarm/boot ack before its
    /// first retry (the per-retry deadline doubles).
    pub ack_timeout: SimDuration,
    /// Ack retries before a switch is rolled back as `Aborted`.
    pub max_ack_retries: u32,
    /// Node topology. The default single-node shape runs the legacy
    /// path bit-identically; more than one node activates the
    /// multi-node fabric (per-node platforms, placement, spill).
    pub topology: TopologyConfig,
    /// Placement scheduler for multi-node runs (ignored single-node).
    pub scheduler: Scheduler,
    /// Multi-tenant population and vendor policy. `None` (the default)
    /// — or a no-op setup (empty fleet, exogenous pressure) — runs the
    /// legacy single-maintainer path bit-identically.
    pub tenancy: Option<TenancySetup>,
    /// Jittered control phase: each unpinned service's decision fires
    /// this fraction of a control period after the shared tick, at an
    /// offset drawn once from the service's own RNG stream. `0.0` (the
    /// default) draws nothing and keeps every trace byte-identical to
    /// the synchronous path; nonzero values desynchronise the per-tenant
    /// controllers (the herding knob of the multitenant report).
    pub control_jitter_frac: f64,
}

impl Experiment {
    /// Start describing an experiment. The three arguments every run
    /// needs are taken up front; everything else defaults and can be
    /// overridden fluently:
    ///
    /// ```ignore
    /// let exp = Experiment::builder(SystemVariant::Amoeba, horizon, 42)
    ///     .service(setup)
    ///     .prewarm_factor(1.5)
    ///     .build();
    /// ```
    pub fn builder(variant: SystemVariant, horizon: SimDuration, seed: u64) -> ExperimentBuilder {
        ExperimentBuilder {
            inner: Experiment {
                serverless_cfg: ServerlessConfig::default(),
                iaas_cfg: IaasConfig::default(),
                controller_cfg: ControllerConfig::default(),
                monitor_cfg: MonitorConfig::default(),
                variant,
                services: Vec::new(),
                workflows: Vec::new(),
                horizon,
                warmup: SimDuration::from_secs(20),
                seed,
                control_period: SimDuration::from_secs(1),
                usage_sample_period: SimDuration::from_millis(500),
                run_meters: true,
                prewarm_factor: 1.0,
                fault_plan: None,
                ack_timeout: SimDuration::from_secs(30),
                max_ack_retries: 2,
                topology: TopologyConfig::default(),
                scheduler: Scheduler::default(),
                tenancy: None,
                control_jitter_frac: 0.0,
            },
        }
    }

    /// Execute the experiment with telemetry disabled. Identical to
    /// [`Experiment::run_with_sink`] with a [`NoopSink`] — same seeds,
    /// same decisions, same results. The kernel is monomorphized over
    /// the concrete [`NoopSink`], so every `sink.enabled()` guard
    /// folds to a constant `false` and telemetry costs nothing on the
    /// hot path — no virtual call, no branch.
    pub fn run(&self) -> RunResult {
        self.run_mono(&mut NoopSink)
    }

    /// Execute the experiment recording the full telemetry stream in
    /// memory, returning it as a [`Trace`] alongside the results.
    pub fn run_traced(&self) -> (RunResult, Trace) {
        let mut sink = MemorySink::new();
        let result = self.run_mono(&mut sink);
        (result, sink.into_trace())
    }

    /// Execute the experiment, streaming telemetry events into `sink`.
    ///
    /// Every emission is guarded by [`TelemetrySink::enabled`], so a
    /// disabled sink costs one inlined boolean check per site and no
    /// allocation; the event stream never feeds back into the run, so
    /// results are bit-identical whatever sink is attached.
    ///
    /// Dynamic-dispatch entry point: the kernel instantiates once with
    /// `S = dyn TelemetrySink`, so callers holding a trait object pay
    /// one virtual call per guarded emission, exactly as before the
    /// sink was monomorphized. Callers with a concrete sink type get
    /// the branch-free instantiation through [`Experiment::run`] /
    /// [`Experiment::run_traced`].
    pub fn run_with_sink(&self, sink: &mut dyn TelemetrySink) -> RunResult {
        self.run_mono(sink)
    }

    /// The whole kernel, generic over the sink: build the `SimWorld`,
    /// then pop → dispatch → apply-effects until the calendar drains.
    fn run_mono<S: TelemetrySink + ?Sized>(&self, sink: &mut S) -> RunResult {
        let mut world = world::setup(self, sink);
        while let Some(fired) = world.queue.pop() {
            let now = fired.time;
            dispatch(self, &mut world, fired.payload, now, sink);
            effects::apply(self, &mut world, now, sink);
        }
        results::finish(self, world)
    }
}

/// Route one calendar event to its domain handler. Pure fan-out: every
/// state change happens inside the handler modules, and anything a
/// platform wants done comes back as an effect on the bus.
fn dispatch<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    ev: Ev,
    now: SimTime,
    sink: &mut S,
) {
    match ev {
        Ev::Arrival { idx } => arrivals::on_arrival(world, idx, now, sink),
        Ev::MeterArrival { meter } => metering::on_meter_arrival(world, meter, now),
        Ev::ControlTick => control::on_control_tick(exp, world, now, sink),
        Ev::ServiceDecision { idx } => control::on_service_decision(exp, world, idx, now, sink),
        Ev::Heartbeat => metering::on_heartbeat(world, now, sink),
        Ev::UsageSample => metering::on_usage_sample(exp, world, now),
        Ev::Platform(pe) => faults::on_platform_event(exp, world, pe, now, sink),
        Ev::Chaos(fault) => faults::on_chaos(world, fault, now, sink),
        Ev::SpikeQuery { sid } => faults::on_spike_query(world, sid, now),
        Ev::NodePlatform { node, event } => {
            fabric::on_node_platform(exp, world, node, event, now, sink)
        }
        Ev::RemoteSubmit { node, query, route } => {
            fabric::on_remote_submit(exp, world, node, query, route, now, sink)
        }
        Ev::VendorTick => tenancy::on_vendor_tick(world, now, sink),
    }
}

/// The calendar's event vocabulary. Platform-internal progress arrives
/// as [`Ev::Platform`]; everything else is runtime-scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    Platform(ClusterEvent),
    Arrival {
        idx: usize,
    },
    MeterArrival {
        meter: usize,
    },
    ControlTick,
    /// One service's jitter-deferred control decision fires (only
    /// scheduled when [`Experiment::control_jitter_frac`] is nonzero).
    ServiceDecision {
        idx: usize,
    },
    Heartbeat,
    UsageSample,
    /// A scheduled fault fires (only present when a plan is attached).
    Chaos(TimedFault),
    /// One query of an injected pressure spike arrives.
    SpikeQuery {
        sid: ServiceId,
    },
    /// Platform-internal progress on a remote node (multi-node only).
    NodePlatform {
        node: NodeId,
        event: ClusterEvent,
    },
    /// A query lands on a remote node after its wire delay, carrying
    /// the route decided at placement time (multi-node only).
    RemoteSubmit {
        node: NodeId,
        query: Query,
        route: RouteTarget,
    },
    /// One vendor control period elapsed (multi-tenant runs only).
    VendorTick,
}

/// Fluent constructor for [`Experiment`], from [`Experiment::builder`].
///
/// Field-by-field struct updates made every new experiment knob a
/// breaking change at each call site; the builder keeps construction
/// stable as knobs accrue. Setters may be called in any order and
/// later calls win.
pub struct ExperimentBuilder {
    inner: Experiment,
}

impl ExperimentBuilder {
    /// Add one service to the scenario (in registration order).
    pub fn service(mut self, setup: ServiceSetup) -> Self {
        self.inner.services.push(setup);
        self
    }

    /// Add a batch of services (appended after any added so far).
    pub fn services(mut self, setups: Vec<ServiceSetup>) -> Self {
        self.inner.services.extend(setups);
        self
    }

    /// Add one workflow DAG service. Its stages register as managed
    /// services after every plain service, in stage-index order.
    pub fn workflow(mut self, setup: WorkflowSetup) -> Self {
        self.inner.workflows.push(setup);
        self
    }

    /// Override the serverless platform configuration.
    pub fn serverless_cfg(mut self, cfg: ServerlessConfig) -> Self {
        self.inner.serverless_cfg = cfg;
        self
    }

    /// Override the IaaS platform configuration.
    pub fn iaas_cfg(mut self, cfg: IaasConfig) -> Self {
        self.inner.iaas_cfg = cfg;
        self
    }

    /// Override the controller tuning.
    pub fn controller_cfg(mut self, cfg: ControllerConfig) -> Self {
        self.inner.controller_cfg = cfg;
        self
    }

    /// Override the monitor tuning.
    pub fn monitor_cfg(mut self, cfg: MonitorConfig) -> Self {
        self.inner.monitor_cfg = cfg;
        self
    }

    /// Time at the start excluded from latency/QoS accounting.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.inner.warmup = warmup;
        self
    }

    /// Controller tick period.
    pub fn control_period(mut self, period: SimDuration) -> Self {
        self.inner.control_period = period;
        self
    }

    /// Usage/timeline sampling period.
    pub fn usage_sample_period(mut self, period: SimDuration) -> Self {
        self.inner.usage_sample_period = period;
        self
    }

    /// Run (or disable) the background contention meters.
    pub fn run_meters(mut self, run: bool) -> Self {
        self.inner.run_meters = run;
        self
    }

    /// Multiplier on the Eq. 7 prewarm count.
    pub fn prewarm_factor(mut self, factor: f64) -> Self {
        self.inner.prewarm_factor = factor;
        self
    }

    /// Attach a deterministic fault plan (see [`amoeba_chaos`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.inner.fault_plan = Some(plan);
        self
    }

    /// Override the switch-protocol ack deadline policy: the first
    /// retry fires `timeout` after the request (doubling per retry),
    /// and after `max_retries` retries the switch is rolled back.
    pub fn ack_policy(mut self, timeout: SimDuration, max_retries: u32) -> Self {
        self.inner.ack_timeout = timeout;
        self.inner.max_ack_retries = max_retries;
        self
    }

    /// Run on `n` nodes (all at capacity scale 1.0 until overridden by
    /// [`ExperimentBuilder::node_capacity`]). `n = 1` is the legacy
    /// single-node shape; anything larger activates the multi-node
    /// fabric. By convention node 0 — the user-facing node whose
    /// capacity the controller models — stays at scale 1.0.
    pub fn nodes(mut self, n: usize) -> Self {
        assert!((1..=255).contains(&n), "node count {n} out of range");
        self.inner.topology.node_scales = vec![1.0; n];
        self
    }

    /// Set one node's capacity scale (cores, disk/NIC bandwidth and
    /// pool memory are the base config times `scale`). Call after
    /// [`ExperimentBuilder::nodes`].
    pub fn node_capacity(mut self, node: usize, scale: f64) -> Self {
        assert!(
            node < self.inner.topology.node_scales.len(),
            "node {node} not in the topology (call .nodes(n) first)"
        );
        assert!(scale > 0.0, "capacity scale must be positive");
        self.inner.topology.node_scales[node] = scale;
        self
    }

    /// Round-trip time between any two distinct nodes. Paid by queries
    /// spilled off their home node.
    pub fn inter_node_latency(mut self, rtt: SimDuration) -> Self {
        self.inner.topology.rtt_s = rtt.as_secs_f64();
        self
    }

    /// Placement scheduler for multi-node runs.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.inner.scheduler = scheduler;
        self
    }

    /// Spread each unpinned service's control decision over `frac` of a
    /// control period past the shared tick (per-service offset, drawn
    /// once from the service's own RNG stream). `0.0` restores the
    /// synchronous path bit-identically.
    pub fn control_jitter(mut self, frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction {frac} not in [0, 1)"
        );
        self.inner.control_jitter_frac = frac;
        self
    }

    /// Attach a multi-tenant population and vendor policy (see
    /// [`amoeba_tenancy`]). Admitted tenants are lowered to ordinary
    /// foreground services after every plain service and workflow
    /// stage, each managed by its own controller.
    pub fn tenancy(mut self, setup: TenancySetup) -> Self {
        self.inner.tenancy = Some(setup);
        self
    }

    /// Finish: the described experiment, ready to [`Experiment::run`].
    pub fn build(self) -> Experiment {
        self.inner
    }
}

#[cfg(test)]
pub(crate) mod tests;
