use super::*;
use amoeba_workload::{benchmarks, DiurnalPattern};

/// The standard scenario: one foreground benchmark plus the paper's
/// three background services at low peak (§VII-A), on a compressed
/// day.
fn scenario(fg: MicroserviceSpec, day_s: f64) -> Vec<ServiceSetup> {
    let fg_trace = LoadTrace::new(DiurnalPattern::didi(), fg.peak_qps, day_s);
    let mut setups = vec![ServiceSetup {
        spec: fg,
        trace: fg_trace,
        background: false,
    }];
    for (spec, frac) in [
        (benchmarks::float(), 0.2),
        (benchmarks::dd(), 0.15),
        (benchmarks::cloud_stor(), 0.2),
    ] {
        let peak = spec.peak_qps * frac;
        let mut bg = spec;
        bg.name = format!("bg_{}", bg.name);
        setups.push(ServiceSetup {
            trace: LoadTrace::new(DiurnalPattern::didi(), peak, day_s),
            spec: bg,
            background: true,
        });
    }
    setups
}

fn run(variant: SystemVariant, day_s: f64, seed: u64) -> RunResult {
    run_pub(variant, day_s, seed)
}

pub(crate) fn run_pub(variant: SystemVariant, day_s: f64, seed: u64) -> RunResult {
    let services = scenario(benchmarks::float(), day_s);
    let horizon = SimDuration::from_secs_f64(day_s);
    Experiment::builder(variant, horizon, seed)
        .services(services)
        .build()
        .run()
}

#[test]
fn nameko_meets_qos_and_never_switches() {
    let mut r = run(SystemVariant::Nameko, 240.0, 1);
    let fg = &mut r.services[0];
    assert!(fg.completed > 1000, "completed {}", fg.completed);
    assert!(
        fg.qos_met(),
        "p95 {:?} target {}",
        fg.qos_latency(),
        fg.qos_target_s
    );
    assert!(fg.switch_history.is_empty());
    // All queries ran on IaaS => no serverless breakdown samples.
    assert_eq!(fg.breakdown.count, 0);
}

#[test]
fn openwhisk_runs_everything_serverless() {
    let mut r = run(SystemVariant::OpenWhisk, 240.0, 2);
    let fg = &mut r.services[0];
    assert!(fg.completed > 1000);
    assert!(fg.breakdown.count > 0, "serverless executions recorded");
    assert!(fg.switch_history.is_empty());
    // OpenWhisk allocates no IaaS cores for the foreground service;
    // usage must be far below the Nameko run.
    let mut nameko = run(SystemVariant::Nameko, 240.0, 2);
    let ratio = fg.usage.cpu_relative_to(&nameko.services[0].usage);
    assert!(ratio < 0.6, "openwhisk/nameko cpu ratio {ratio}");
    let _ = &mut nameko;
}

#[test]
fn amoeba_switches_and_saves_resources_while_meeting_qos() {
    let mut amoeba = run(SystemVariant::Amoeba, 360.0, 3);
    let mut nameko = run(SystemVariant::Nameko, 360.0, 3);
    let fg = &mut amoeba.services[0];
    assert!(
        !fg.switch_history.is_empty(),
        "Amoeba should switch at least once on a diurnal day"
    );
    assert!(
        fg.qos_met(),
        "p95 {:?} target {}",
        fg.qos_latency(),
        fg.qos_target_s
    );
    let nk = &mut nameko.services[0];
    assert!(nk.qos_met());
    let cpu_ratio = fg.usage.cpu_relative_to(&nk.usage);
    let mem_ratio = fg.usage.mem_relative_to(&nk.usage);
    assert!(cpu_ratio < 0.95, "Amoeba cpu ratio vs Nameko: {cpu_ratio}");
    assert!(mem_ratio < 0.95, "Amoeba mem ratio vs Nameko: {mem_ratio}");
}

#[test]
fn runs_are_deterministic() {
    let a = run(SystemVariant::Amoeba, 120.0, 7);
    let b = run(SystemVariant::Amoeba, 120.0, 7);
    assert_eq!(a.services[0].completed, b.services[0].completed);
    assert_eq!(a.cold_starts, b.cold_starts);
    assert_eq!(
        a.services[0].switch_history.len(),
        b.services[0].switch_history.len()
    );
    let c = run(SystemVariant::Amoeba, 120.0, 8);
    // Different seed: almost surely different counts.
    assert_ne!(a.services[0].completed, c.services[0].completed);
}

#[test]
fn conservation_of_queries() {
    let r = run(SystemVariant::Amoeba, 240.0, 11);
    for s in &r.services {
        // Everything submitted post-warmup eventually completes (the
        // loop drains all events past the horizon), and nothing can
        // fail without an injected fault.
        assert_eq!(s.submitted, s.completed, "{}", s.name);
        assert_eq!(s.failed, 0, "{}", s.name);
    }
    assert_eq!(r.failed_switches, 0);
    assert_eq!(r.wasted_prewarms, 0);
}

fn run_with_plan(
    variant: SystemVariant,
    day_s: f64,
    seed: u64,
    plan: Option<FaultPlan>,
) -> RunResult {
    let services = scenario(benchmarks::float(), day_s);
    let horizon = SimDuration::from_secs_f64(day_s);
    let mut b = Experiment::builder(variant, horizon, seed).services(services);
    if let Some(p) = plan {
        b = b.fault_plan(p);
    }
    b.build().run()
}

#[test]
fn noop_fault_plan_is_bit_identical_to_no_plan() {
    // A zero-rate plan builds the injector (which draws only from
    // its private stream) but schedules nothing: the run must match
    // a plan-free run exactly.
    let bare = run_with_plan(SystemVariant::Amoeba, 240.0, 23, None);
    let noop = run_with_plan(SystemVariant::Amoeba, 240.0, 23, Some(FaultPlan::default()));
    for (a, b) in bare.services.iter().zip(&noop.services) {
        assert_eq!(a.submitted, b.submitted, "{}", a.name);
        assert_eq!(a.completed, b.completed, "{}", a.name);
    }
    assert_eq!(bare.cold_starts, noop.cold_starts);
    assert_eq!(bare.final_weights, noop.final_weights);
}

#[test]
fn chaos_runs_conserve_queries_and_stay_deterministic() {
    let plan = FaultPlan::mixed();
    let a = run_with_plan(SystemVariant::Amoeba, 240.0, 29, Some(plan.clone()));
    for s in &a.services {
        assert_eq!(s.submitted, s.completed + s.failed, "{}", s.name);
    }
    let b = run_with_plan(SystemVariant::Amoeba, 240.0, 29, Some(plan));
    for (x, y) in a.services.iter().zip(&b.services) {
        assert_eq!(x.completed, y.completed, "{}", x.name);
        assert_eq!(x.failed, y.failed, "{}", x.name);
    }
    assert_eq!(a.cold_starts, b.cold_starts);
    assert_eq!(a.failed_switches, b.failed_switches);
    assert_eq!(a.wasted_prewarms, b.wasted_prewarms);
}

#[test]
fn meter_overhead_is_small() {
    let r = run(SystemVariant::Amoeba, 240.0, 13);
    assert!(
        r.meter_cpu_overhead < 0.02,
        "meter overhead {} should be ~1% as in §VII-E",
        r.meter_cpu_overhead
    );
    assert!(r.meter_cpu_overhead > 0.0, "meters did run");
}

#[test]
fn weights_depart_from_uniform_with_pca() {
    let r = run(SystemVariant::Amoeba, 240.0, 17);
    let w = r.final_weights;
    assert!(
        (w.iter().sum::<f64>() - 1.0).abs() < 1e-6,
        "PCA weights normalised: {w:?}"
    );
    let nom = run(SystemVariant::AmoebaNoM, 240.0, 17);
    assert_eq!(nom.final_weights, [1.0; 3], "NoM keeps uniform weights");
}

#[test]
fn nop_violates_qos_via_cold_starts() {
    // The NoP ablation routes queries to serverless with no prewarm;
    // right after each switch a batch of queries eats 1-3 s cold
    // starts, which a 0.2 s QoS target cannot absorb.
    let mut nop = run(SystemVariant::AmoebaNoP, 360.0, 19);
    let mut amoeba = run(SystemVariant::Amoeba, 360.0, 19);
    let v_nop = nop.services[0].violation_ratio();
    let v_amoeba = amoeba.services[0].violation_ratio();
    let sw = nop.services[0].switch_history.len();
    if sw > 0 {
        assert!(
            v_nop > v_amoeba,
            "NoP ({v_nop}) must violate more than Amoeba ({v_amoeba})"
        );
    }
    let _ = (&mut nop, &mut amoeba);
}

mod multinode {
    use super::*;
    use amoeba_platform::Scheduler;

    fn run_multi(scheduler: Scheduler, seed: u64) -> RunResult {
        let variant = match scheduler {
            Scheduler::AmoebaPerNode => SystemVariant::Amoeba,
            // The static baselines pin every service serverless.
            _ => SystemVariant::OpenWhisk,
        };
        let services = scenario(benchmarks::float(), 240.0);
        Experiment::builder(variant, SimDuration::from_secs_f64(240.0), seed)
            .services(services)
            .nodes(4)
            .node_capacity(1, 0.75)
            .node_capacity(2, 0.75)
            .node_capacity(3, 0.5)
            .inter_node_latency(SimDuration::from_secs_f64(0.04))
            .scheduler(scheduler)
            .build()
            .run()
    }

    #[test]
    fn single_node_runs_have_no_multinode_summary() {
        let r = run(SystemVariant::Amoeba, 120.0, 7);
        assert!(r.multinode.is_none());
    }

    #[test]
    fn per_node_conservation_holds_for_every_scheduler() {
        for scheduler in [
            Scheduler::AmoebaPerNode,
            Scheduler::Noah,
            Scheduler::EdgeAware,
        ] {
            let r = run_multi(scheduler, 31);
            let mn = r.multinode.as_ref().expect("4-node run has a summary");
            assert_eq!(mn.nodes.len(), 4);
            let mut total = 0;
            for (i, n) in mn.nodes.iter().enumerate() {
                assert_eq!(
                    n.submitted,
                    n.completed + n.failed,
                    "{scheduler:?} node {i}: {n:?}"
                );
                assert!(n.spills <= n.submitted, "{scheduler:?} node {i}: {n:?}");
                total += n.submitted;
            }
            assert!(total > 0, "{scheduler:?} placed no queries");
            assert_eq!(
                mn.spill_total,
                mn.nodes.iter().map(|n| n.spills).sum::<u64>(),
                "{scheduler:?}"
            );
        }
    }

    #[test]
    fn noah_spreads_load_across_nodes() {
        let r = run_multi(Scheduler::Noah, 37);
        let mn = r.multinode.unwrap();
        let busy = mn.nodes.iter().filter(|n| n.submitted > 0).count();
        assert!(
            busy >= 2,
            "least-loaded placement should use >1 node: {mn:?}"
        );
    }

    #[test]
    fn multinode_runs_are_deterministic_per_scheduler() {
        for scheduler in [
            Scheduler::AmoebaPerNode,
            Scheduler::Noah,
            Scheduler::EdgeAware,
        ] {
            let a = run_multi(scheduler, 41);
            let b = run_multi(scheduler, 41);
            assert_eq!(a.multinode, b.multinode, "{scheduler:?}");
            assert_eq!(a.cold_starts, b.cold_starts, "{scheduler:?}");
            for (x, y) in a.services.iter().zip(&b.services) {
                assert_eq!(x.completed, y.completed, "{scheduler:?} {}", x.name);
            }
        }
    }

    #[test]
    fn services_still_conserve_queries_across_the_fabric() {
        for scheduler in [
            Scheduler::AmoebaPerNode,
            Scheduler::Noah,
            Scheduler::EdgeAware,
        ] {
            let r = run_multi(scheduler, 43);
            for s in &r.services {
                assert_eq!(
                    s.submitted,
                    s.completed + s.failed,
                    "{scheduler:?} {}",
                    s.name
                );
            }
        }
    }
}

mod tenancy_tests {
    use super::*;
    use amoeba_tenancy::{FleetBuilder, TenancySetup};

    fn tenant_run(ratio: f64, day_s: f64, seed: u64, plan: Option<FaultPlan>) -> RunResult {
        let fleet = FleetBuilder::new(seed).tenants(6).build();
        let mut b = Experiment::builder(
            SystemVariant::Amoeba,
            SimDuration::from_secs_f64(day_s),
            seed,
        )
        .tenancy(TenancySetup::new(fleet, ratio));
        if let Some(p) = plan {
            b = b.fault_plan(p);
        }
        b.build().run()
    }

    #[test]
    fn noop_tenancy_setup_is_bit_identical_to_none() {
        // An empty fleet with exogenous pressure changes nothing: the
        // run must match a tenancy-free run exactly (the golden traces
        // rely on this).
        let bare = run(SystemVariant::Amoeba, 240.0, 23);
        let mut setup = TenancySetup::new(Vec::new(), 1.5);
        setup.endogenous_pressure = false;
        assert!(setup.is_noop());
        let noop =
            Experiment::builder(SystemVariant::Amoeba, SimDuration::from_secs_f64(240.0), 23)
                .services(scenario(benchmarks::float(), 240.0))
                .tenancy(setup)
                .build()
                .run();
        assert!(noop.tenancy.is_none());
        for (a, b) in bare.services.iter().zip(&noop.services) {
            assert_eq!(a.submitted, b.submitted, "{}", a.name);
            assert_eq!(a.completed, b.completed, "{}", a.name);
        }
        assert_eq!(bare.cold_starts, noop.cold_starts);
        assert_eq!(bare.final_weights, noop.final_weights);
        assert_eq!(bare.mean_pressures, noop.mean_pressures);
    }

    #[test]
    fn tenant_runs_conserve_queries_and_settle_the_books() {
        let r = tenant_run(1.5, 240.0, 5, None);
        for s in &r.services {
            assert_eq!(s.submitted, s.completed + s.failed, "{}", s.name);
            assert!(
                !s.name.contains("chaos-interference"),
                "interference service must stay off the books"
            );
        }
        let tn = r.tenancy.expect("tenancy summary present");
        assert_eq!(tn.admitted + tn.rejected, 6);
        assert!(tn.reserved_total <= 1.5 + 1e-9);
        assert_eq!(tn.ledger.accounts.len(), 6);
        assert!(tn.ledger.profit().is_finite());
        // Endogenous pressure emerged from the fleet's own load.
        assert!(r.mean_pressures[0] > 0.0, "{:?}", r.mean_pressures);
    }

    #[test]
    fn tenant_runs_are_deterministic() {
        let a = tenant_run(2.0, 120.0, 7, None);
        let b = tenant_run(2.0, 120.0, 7, None);
        assert_eq!(a.tenancy, b.tenancy);
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.completed, y.completed, "{}", x.name);
        }
    }

    /// A plan that injects only pressure spikes, heavy enough for the
    /// pool-occupancy signal to show them clearly.
    fn spike_plan() -> FaultPlan {
        FaultPlan {
            pressure_spike_rate_per_hour: 120.0,
            spike_duration_s: 20.0,
            spike_qps: 150.0,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn spikes_compose_additively_with_ambient_pressure() {
        // Tenancy mode: spike traffic runs as the dedicated
        // interference service, so it ADDS pool load on top of the
        // fleet's ambient signal instead of displacing the victim at
        // its container cap. Measured pressure must rise.
        let calm = tenant_run(2.0, 240.0, 31, None);
        let spiky = tenant_run(2.0, 240.0, 31, Some(spike_plan()));
        assert!(
            spiky.mean_pressures[0] > calm.mean_pressures[0],
            "spikes must add pressure: calm {:?} spiky {:?}",
            calm.mean_pressures,
            spiky.mean_pressures
        );
        // Ambient tenant traffic still conserves under spikes.
        for s in &spiky.services {
            assert_eq!(s.submitted, s.completed + s.failed, "{}", s.name);
        }
    }

    #[test]
    fn legacy_spike_path_is_unchanged_without_tenancy() {
        // Exogenous mode keeps the historical displace-at-the-victim
        // semantics (byte-level pinned by the golden traces): spiky
        // runs stay deterministic and conserve ambient queries.
        let mk = || {
            Experiment::builder(SystemVariant::Amoeba, SimDuration::from_secs_f64(240.0), 37)
                .services(scenario(benchmarks::float(), 240.0))
                .fault_plan(spike_plan())
                .build()
                .run()
        };
        let a = mk();
        let b = mk();
        assert!(a.tenancy.is_none());
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.submitted, x.completed + x.failed, "{}", x.name);
            assert_eq!(x.completed, y.completed, "{}", x.name);
        }
    }
}

mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn dump_amoeba_run() {
        let mut r = run_pub(SystemVariant::Amoeba, 360.0, 3);
        let nameko = run_pub(SystemVariant::Nameko, 360.0, 3);
        let fg = &mut r.services[0];
        println!("switches: {:?}", fg.switch_history);
        println!(
            "weights: {:?}, pressures: {:?}",
            r.final_weights, r.mean_pressures
        );
        println!("violations: {}", fg.violation_ratio());
        println!("p95: {:?} target {}", fg.qos_latency(), fg.qos_target_s);
        println!("cold starts: {}", r.cold_starts);
        for (t, m) in fg.mode_timeline.samples().iter().step_by(20) {
            let c = fg.cores_timeline.at(*t).copied().unwrap_or(0.0);
            let mem = fg.mem_timeline.at(*t).copied().unwrap_or(0.0);
            let l = fg.load_timeline.at(*t).copied().unwrap_or(0.0);
            println!(
                "t={:>8} mode={} cores={:>6.1} mem={:>8.0} load={:>6.1}",
                format!("{t}"),
                m,
                c,
                mem,
                l
            );
        }
        println!(
            "amoeba core-s {} mem-s {}",
            fg.usage.core_seconds, fg.usage.mem_mb_seconds
        );
        let nk = &nameko.services[0];
        println!(
            "nameko core-s {} mem-s {}",
            nk.usage.core_seconds, nk.usage.mem_mb_seconds
        );
    }
}
