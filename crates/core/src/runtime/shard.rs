//! Epoch-sliced execution: the kernel seam the fleet executor drives.
//!
//! [`Experiment::run_with_sink`] drains the calendar in one sitting; an
//! [`EpochRun`] exposes the same pop → dispatch → apply-effects loop as
//! a resumable stepper that can be advanced *up to* a time bound and
//! handed back later. One `EpochRun` is one **cell**: a self-contained
//! experiment with its own `SimWorld`, event queue and forked RNG
//! streams — nothing it touches is shared, so a pool of cells can be
//! advanced on worker threads between epoch barriers and the per-cell
//! event sequence is identical however the cells are distributed over
//! threads (the determinism argument in DESIGN.md §16).
//!
//! Between epochs the executor reads cross-cell signals
//! ([`EpochRun::pool_utilization`]) and writes cross-cell effects
//! ([`EpochRun::set_external_pressure`], [`EpochRun::set_service_caps`])
//! — the only channel by which cells interact.

use super::{dispatch, effects, results, world, Experiment, RunResult};
use amoeba_sim::SimTime;
use amoeba_telemetry::TelemetrySink;

/// One experiment as a resumable epoch stepper. Construct with
/// [`EpochRun::new`], advance with [`EpochRun::run_until`] (or drain
/// with [`EpochRun::run_to_completion`]), then fold into a
/// [`RunResult`] with [`EpochRun::finish`].
///
/// Advancing to the horizon in any sequence of `run_until` bounds —
/// including one unbounded drain — dispatches exactly the event
/// sequence of [`Experiment::run_with_sink`], so the telemetry stream
/// is byte-identical to the serial runtime's whatever the epoch length.
pub struct EpochRun {
    exp: Experiment,
    world: world::SimWorld,
    events: u64,
}

// The fleet executor moves cells across scoped worker threads; keep
// the whole world `Send` (this is what forces `Forecaster + Send`).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<EpochRun>();
};

impl EpochRun {
    /// Build the cell's world (forking its RNG streams from the
    /// experiment's own seed) and emit the run-started telemetry.
    pub fn new<S: TelemetrySink + ?Sized>(exp: Experiment, sink: &mut S) -> Self {
        let world = world::setup(&exp, sink);
        EpochRun {
            exp,
            world,
            events: 0,
        }
    }

    /// The time of the next pending event, `None` once drained.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.world.queue.peek_time()
    }

    /// Dispatch every event strictly before `until`. Events at exactly
    /// `until` stay queued for the next epoch, so slicing the horizon
    /// into epochs never reorders events across the boundary.
    pub fn run_until<S: TelemetrySink + ?Sized>(&mut self, until: SimTime, sink: &mut S) {
        while matches!(self.world.queue.peek_time(), Some(t) if t < until) {
            let fired = self.world.queue.pop().expect("peeked event");
            let now = fired.time;
            dispatch(&self.exp, &mut self.world, fired.payload, now, sink);
            effects::apply(&self.exp, &mut self.world, now, sink);
            self.events += 1;
        }
    }

    /// Drain the calendar completely (the final epoch).
    pub fn run_to_completion<S: TelemetrySink + ?Sized>(&mut self, sink: &mut S) {
        while let Some(fired) = self.world.queue.pop() {
            let now = fired.time;
            dispatch(&self.exp, &mut self.world, fired.payload, now, sink);
            effects::apply(&self.exp, &mut self.world, now, sink);
            self.events += 1;
        }
    }

    /// Events dispatched so far (telemetry for `ShardSpan` accounting).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// This cell's serverless pool occupancy per resource — the signal
    /// the epoch exchange aggregates across cells.
    pub fn pool_utilization(&self) -> [f64; 3] {
        self.world.serverless.utilization()
    }

    /// Inject cross-cell pool pressure for the next epoch: added to the
    /// locally measured pressures at every decision until overwritten.
    /// All-zero restores the self-contained signal.
    pub fn set_external_pressure(&mut self, pressure: [f64; 3]) {
        self.world.external_pressure = pressure;
    }

    /// Fleet-level reclamation: clamp (or restore, with `None`) every
    /// managed service's container cap on this cell's pool.
    pub fn set_service_caps(&mut self, cap: Option<u32>) {
        let w = &mut self.world;
        for s in &w.services {
            w.serverless.set_tenant_cap(s.sid, cap);
        }
    }

    /// Fold the drained world into the run's results.
    pub fn finish(self) -> RunResult {
        results::finish(&self.exp, self.world)
    }
}
