//! Completion accounting: every query outcome — user, shadow, meter or
//! injected — funnels through here off the effect bus.

use super::faults::chaos_completion;
use super::world::ServiceRt;
use super::{Experiment, SimWorld};
use crate::controller::{DeployMode, DeploymentController};
use crate::monitor::ContentionMonitor;
use amoeba_platform::{ExecutedOn, QueryOutcome, ServiceId};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{
    RecoveryKind, RecoveryRecord, TelemetryEvent, TelemetrySink, ViolationCause, ViolationRecord,
    WarmSampleRecord,
};

/// One query finished. Chaos gets first refusal (spike traffic, meter
/// blackouts and outliers are swallowed there); re-queued crash
/// victims log their recovery; everything else is accounted normally.
pub(crate) fn on_completed<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    outcome: QueryOutcome,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        services,
        controller,
        monitor,
        engine,
        serverless,
        iaas,
        platform_rng,
        iaas_rng,
        bus,
        queue,
        fabric,
        chaos,
        workflow,
        meter_ids,
        warmup_t,
        ..
    } = world;
    let mut swallowed = false;
    if let Some(ch) = chaos.as_mut() {
        swallowed = chaos_completion(ch, &outcome, now, meter_ids, monitor);
        // Almost every completion is an ordinary query; skip the map
        // probe entirely while no crash-requeued queries are pending.
        if !ch.crash_requeued.is_empty() {
            let key = (outcome.query.service.raw(), outcome.query.id.raw());
            if let Some(t_crash) = ch.crash_requeued.remove(&key) {
                if sink.enabled() {
                    sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                        t: now,
                        kind: RecoveryKind::RequeuedQueryCompleted,
                        service: Some(outcome.query.service.raw() as usize),
                        after_s: now.duration_since(t_crash).as_secs_f64(),
                    }));
                }
            }
        }
    }
    if !swallowed {
        account(
            exp, &outcome, now, *warmup_t, meter_ids, services, controller, monitor, sink,
        );
        // Workflow stage hand-off, after (and independent of) QoS
        // accounting: successors must flow even during warmup, when
        // `account` records nothing.
        if !outcome.query.id.is_shadow() {
            if let Some(wrt) = workflow.as_mut() {
                let idx = outcome.query.service.raw() as usize;
                if let Some((w, s)) = wrt.stage_of(idx) {
                    super::workflow::on_stage_complete(
                        wrt,
                        w,
                        s,
                        &outcome,
                        now,
                        services,
                        controller,
                        engine,
                        serverless,
                        iaas,
                        platform_rng,
                        iaas_rng,
                        bus,
                        queue,
                        fabric,
                        *warmup_t,
                        sink,
                    );
                }
            }
        }
    }
}

/// The normal accounting path: meters feed the monitor, serverless
/// executions calibrate the controller (§III), and post-warmup user
/// queries land in the latency recorder with QoS-violation and
/// warm-breakdown attribution.
#[allow(clippy::too_many_arguments)]
fn account<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    outcome: &QueryOutcome,
    now: SimTime,
    warmup_t: SimTime,
    meter_ids: &[ServiceId; 3],
    services: &mut [ServiceRt],
    controller: &mut DeploymentController,
    monitor: &mut ContentionMonitor,
    sink: &mut S,
) {
    let sid = outcome.query.service;
    // Meter completion: feed the monitor.
    if let Some(m) = meter_ids.iter().position(|&x| x == sid) {
        monitor.observe_meter_latency(m, outcome.latency().as_secs_f64());
        return;
    }
    let idx = sid.raw() as usize;
    if idx >= services.len() {
        return;
    }
    let is_shadow = outcome.query.id.is_shadow();
    // Serverless executions calibrate the controller (real and
    // shadow alike); the service time excludes queueing and cold
    // start.
    if outcome.executed_on == ExecutedOn::Serverless && exp.variant.uses_pca() {
        let b = &outcome.breakdown;
        let service_time = (b.auth + b.code_load + b.result_post + b.exec).as_secs_f64();
        let pressures = monitor.pressures();
        let weights = monitor.weights();
        controller.observe_service_time(idx, service_time, pressures, weights);
    }
    if is_shadow {
        return;
    }
    if outcome.query.submitted < warmup_t {
        return;
    }
    let s = &mut services[idx];
    s.recorder.record(outcome.latency());
    s.completed += 1;
    // The registered spec, not `exp.services[idx]`: lowered workflow
    // stages exist only in the runtime, with their split budgets.
    let target = s.spec.qos_target_s;
    let latency_s = outcome.latency().as_secs_f64();
    if outcome.executed_on == ExecutedOn::Serverless {
        s.serverless_queries += 1;
        if latency_s > target {
            s.serverless_violations += 1;
        }
    }
    if sink.enabled() && latency_s > target {
        let cold_start_s = outcome.breakdown.cold_start.as_secs_f64();
        let queue_wait_s = outcome.breakdown.queue_wait.as_secs_f64();
        sink.record(TelemetryEvent::Violation(ViolationRecord {
            t: now,
            service: idx,
            platform: match outcome.executed_on {
                ExecutedOn::Serverless => DeployMode::Serverless,
                ExecutedOn::Iaas => DeployMode::Iaas,
            }
            .into(),
            latency_s,
            target_s: target,
            cold_start_s,
            queue_wait_s,
            cause: ViolationCause::attribute(cold_start_s, queue_wait_s),
        }));
    }
    if outcome.executed_on == ExecutedOn::Serverless
        && outcome.breakdown.cold_start == SimDuration::ZERO
        && outcome.breakdown.queue_wait == SimDuration::ZERO
    {
        s.breakdown.add(&outcome.breakdown);
        if sink.enabled() {
            let b = &outcome.breakdown;
            sink.record(TelemetryEvent::WarmSample(WarmSampleRecord {
                t: now,
                service: idx,
                auth_s: b.auth.as_secs_f64(),
                code_load_s: b.code_load.as_secs_f64(),
                result_post_s: b.result_post.as_secs_f64(),
                exec_s: b.exec.as_secs_f64(),
            }));
        }
    }
}
