//! Arrival handling: one user query enters the system.

use super::fabric::wire_delay;
use super::{Ev, SimWorld};
use crate::engine::RouteTarget;
use amoeba_platform::{NodeId, Query, QueryId};
use amoeba_sim::SimTime;
use amoeba_telemetry::{PlacementRecord, TelemetryEvent, TelemetrySink};
use amoeba_workload::ArrivalProcess;

/// A real query of service `idx` arrives: record it with the
/// controller's load estimator, route it via the engine (background
/// services are pinned serverless), place it on a node (multi-node
/// runs only — single-node everything executes on node 0), submit it
/// to the chosen platform and re-arm the service's next arrival.
pub(crate) fn on_arrival(
    world: &mut SimWorld,
    idx: usize,
    now: SimTime,
    sink: &mut dyn TelemetrySink,
) {
    let SimWorld {
        services,
        controller,
        engine,
        serverless,
        iaas,
        platform_rng,
        iaas_rng,
        bus,
        queue,
        fabric,
        warmup_t,
        ..
    } = world;
    let sid = services[idx].sid;
    controller.record_arrival(idx, now);
    let qid = QueryId::user(services[idx].next_query_id);
    services[idx].next_query_id += 1;
    if now >= *warmup_t {
        services[idx].submitted += 1;
    }
    let query = Query {
        id: qid,
        service: sid,
        submitted: now,
    };
    let target = if services[idx].background {
        RouteTarget::Serverless
    } else {
        engine.route(sid)
    };
    if let Some(f) = fabric.as_mut() {
        let (node, spill) = f.place(idx, target, serverless);
        if sink.enabled() {
            sink.record(TelemetryEvent::Placement(PlacementRecord {
                t: now,
                service: idx,
                node: node.index(),
                spill,
            }));
        }
        if node == NodeId::ZERO {
            match target {
                RouteTarget::Serverless => {
                    serverless.resume_service(sid);
                    bus.extend(serverless.submit(query, now, platform_rng));
                }
                RouteTarget::Iaas => {
                    bus.extend(iaas.submit(query, now, iaas_rng));
                }
            }
        } else {
            // Remote execution: spills pay the inter-node RTT; the
            // query keeps its original submit stamp so the wire shows
            // up as latency, not as vanished time.
            queue.push(
                now + wire_delay(&f.topology, spill),
                Ev::RemoteSubmit {
                    node,
                    query,
                    route: target,
                },
            );
        }
    } else {
        match target {
            RouteTarget::Serverless => {
                // Real traffic ends any drain (the NoP path
                // switches with no prewarm ack).
                serverless.resume_service(sid);
                bus.extend(serverless.submit(query, now, platform_rng));
            }
            RouteTarget::Iaas => {
                bus.extend(iaas.submit(query, now, iaas_rng));
            }
        }
    }
    if !services[idx].exhausted {
        if let Some(t) = services[idx].arrivals.next_after(now) {
            queue.push(t, Ev::Arrival { idx });
        } else {
            services[idx].exhausted = true;
        }
    }
}
