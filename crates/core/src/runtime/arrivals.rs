//! Arrival handling: one user query enters the system.

use super::effects::EffectBus;
use super::fabric::{wire_delay, Fabric};
use super::{Ev, SimWorld};
use crate::engine::RouteTarget;
use amoeba_platform::{IaasPlatform, NodeId, Query, QueryId, ServerlessPlatform};
use amoeba_sim::{EventQueue, SimRng, SimTime};
use amoeba_telemetry::{PlacementRecord, TelemetryEvent, TelemetrySink};
use amoeba_workload::ArrivalProcess;

/// A real query of service `idx` arrives: record it with the
/// controller's load estimator, route it via the engine (background
/// services are pinned serverless), place it on a node (multi-node
/// runs only — single-node everything executes on node 0), submit it
/// to the chosen platform and re-arm the service's next arrival.
pub(crate) fn on_arrival<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    idx: usize,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        services,
        controller,
        engine,
        serverless,
        iaas,
        platform_rng,
        iaas_rng,
        bus,
        queue,
        fabric,
        workflow,
        warmup_t,
        ..
    } = world;
    let sid = services[idx].sid;
    controller.record_arrival(idx, now);
    let seq = services[idx].next_query_id;
    services[idx].next_query_id += 1;
    if now >= *warmup_t {
        services[idx].submitted += 1;
    }
    // Workflow root stages tag the query with their stage index and
    // open the instance record; a plain service's untagged id is
    // bit-identical to a stage-0 tag.
    let qid = match workflow
        .as_mut()
        .and_then(|w| w.open_root(idx, seq, now, now >= *warmup_t))
    {
        Some(stage) => QueryId::user_stage(seq, stage),
        None => QueryId::user(seq),
    };
    let query = Query {
        id: qid,
        service: sid,
        submitted: now,
    };
    let target = if services[idx].background {
        RouteTarget::Serverless
    } else {
        engine.route(sid)
    };
    route_and_submit(
        idx,
        query,
        target,
        now,
        serverless,
        iaas,
        platform_rng,
        iaas_rng,
        bus,
        queue,
        fabric,
        sink,
    );
    if !services[idx].exhausted {
        if let Some(t) = services[idx].arrivals.next_after(now) {
            queue.push(t, Ev::Arrival { idx });
        } else {
            services[idx].exhausted = true;
        }
    }
}

/// Place a routed user query on a node (multi-node runs only) and
/// submit it to the chosen platform. Shared between external arrivals
/// and workflow stage hand-offs — both classes of traffic pay the same
/// placement, spill and wire-delay rules.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_and_submit<S: TelemetrySink + ?Sized>(
    idx: usize,
    query: Query,
    target: RouteTarget,
    now: SimTime,
    serverless: &mut ServerlessPlatform,
    iaas: &mut IaasPlatform,
    platform_rng: &mut SimRng,
    iaas_rng: &mut SimRng,
    bus: &mut EffectBus,
    queue: &mut EventQueue<Ev>,
    fabric: &mut Option<Fabric>,
    sink: &mut S,
) {
    let sid = query.service;
    if let Some(f) = fabric.as_mut() {
        let (node, spill) = f.place(idx, target, serverless);
        if sink.enabled() {
            sink.record(TelemetryEvent::Placement(PlacementRecord {
                t: now,
                service: idx,
                node: node.index(),
                spill,
            }));
        }
        if node == NodeId::ZERO {
            match target {
                RouteTarget::Serverless => {
                    serverless.resume_service(sid);
                    bus.extend(serverless.submit(query, now, platform_rng));
                }
                RouteTarget::Iaas => {
                    bus.extend(iaas.submit(query, now, iaas_rng));
                }
            }
        } else {
            // Remote execution: spills pay the inter-node RTT; the
            // query keeps its original submit stamp so the wire shows
            // up as latency, not as vanished time.
            queue.push(
                now + wire_delay(&f.topology, spill),
                Ev::RemoteSubmit {
                    node,
                    query,
                    route: target,
                },
            );
        }
    } else {
        match target {
            RouteTarget::Serverless => {
                // Real traffic ends any drain (the NoP path
                // switches with no prewarm ack).
                serverless.resume_service(sid);
                bus.extend(serverless.submit(query, now, platform_rng));
            }
            RouteTarget::Iaas => {
                bus.extend(iaas.submit(query, now, iaas_rng));
            }
        }
    }
}
