//! The control tick (§IV): drain watchdog, per-service deployment
//! decisions through the controller/engine pair, and the shadow
//! calibration traffic.

use super::switching::{apply_engine_actions, DRAIN_TIMEOUT_S};
use super::tenancy::PRESSURE_CAP;
use super::{record_forecast, Ev, Experiment, SimWorld};
use crate::controller::{prewarm_count, Decision, DeployMode};
use crate::engine::{DeadlineAction, RouteTarget};
use amoeba_platform::{Effect, NodeId, Query, QueryId};
use amoeba_sim::SimTime;
use amoeba_telemetry::{
    FaultKind, FaultRecord, NodeUtilRecord, RecoveryKind, RecoveryRecord, TelemetryEvent,
    TelemetrySink, TickReason, TickRecord,
};

/// One control period elapsed: reclaim overdue drains, snapshot the
/// monitor, let the controller decide per unpinned service (riding out
/// in-flight switches via the ack-deadline machinery), and mirror one
/// shadow query per IaaS-mode service to keep calibration fed (§III).
pub(crate) fn on_control_tick(
    exp: &Experiment,
    world: &mut SimWorld,
    now: SimTime,
    sink: &mut dyn TelemetrySink,
) {
    let SimWorld {
        services,
        controller,
        monitor,
        engine,
        serverless,
        iaas,
        platform_rng,
        bus,
        queue,
        fabric,
        workflow,
        tenancy,
        drain_deadline,
        wasted_prewarms,
        failed_switches,
        pressure_sum,
        pressure_samples,
        horizon_t,
        n_max,
        ..
    } = world;
    // Drain watchdog: a released IaaS group whose
    // drained ack is overdue is reclaimed forcibly and
    // its in-flight queries re-queued on serverless.
    for idx in 0..services.len() {
        let overdue = matches!(drain_deadline[idx], Some(dl) if now >= dl);
        if !overdue {
            continue;
        }
        drain_deadline[idx] = None;
        let sid = services[idx].sid;
        let home = fabric.as_ref().map_or(NodeId::ZERO, |f| f.home[idx]);
        let displaced = if home == NodeId::ZERO {
            let (eff, displaced) = iaas.force_drain(sid, now);
            bus.extend(eff);
            displaced
        } else {
            // The overdue group lives on the service's home node; its
            // schedules return to the calendar node-tagged.
            let f = fabric.as_mut().unwrap();
            let (eff, displaced) = f.node_mut(home).iaas.force_drain(sid, now);
            for e in eff {
                match e {
                    Effect::Schedule { after, event } => {
                        queue.push(now + after, Ev::NodePlatform { node: home, event });
                    }
                    ack => bus.extend([ack]),
                }
            }
            displaced
        };
        if sink.enabled() {
            sink.record(TelemetryEvent::Fault(FaultRecord {
                t: now,
                kind: FaultKind::DrainTimeout,
                service: Some(idx),
                queries_displaced: displaced.len() as u64,
                queries_dropped: 0,
            }));
            sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                t: now,
                kind: RecoveryKind::DrainForced,
                service: Some(idx),
                after_s: DRAIN_TIMEOUT_S,
            }));
        }
        for q in displaced {
            if home == NodeId::ZERO {
                serverless.resume_service(q.service);
                bus.extend(serverless.submit(q, now, platform_rng));
            } else {
                // Displaced work re-queues on the home node's pool,
                // keeping the original submit time.
                queue.push(
                    now,
                    Ev::RemoteSubmit {
                        node: home,
                        query: q,
                        route: RouteTarget::Serverless,
                    },
                );
            }
        }
    }
    // Endogenous mode: measured pressure IS the pool's occupancy — the
    // co-tenant fleet's own load generates the signal the controllers
    // read (DESIGN.md §15's pressure-emergence equation). Exogenous
    // mode (and every golden trace) reads the profiled monitor.
    let pressures = match tenancy.as_ref() {
        Some(t) if t.endogenous => {
            let u = serverless.utilization();
            [
                u[0].min(PRESSURE_CAP),
                u[1].min(PRESSURE_CAP),
                u[2].min(PRESSURE_CAP),
            ]
        }
        _ => monitor.pressures(),
    };
    pressure_sum[0] += pressures[0];
    pressure_sum[1] += pressures[1];
    pressure_sum[2] += pressures[2];
    *pressure_samples += 1;
    let weights = monitor.weights();
    // Fleet utilization snapshot (multi-node runs only; single-node
    // traces keep their legacy event stream byte-identical).
    if sink.enabled() {
        if let Some(f) = fabric.as_ref() {
            let (mean_util, max_node_util) = f.fleet_utilization(serverless);
            sink.record(TelemetryEvent::NodeUtil(NodeUtilRecord {
                t: now,
                mean_util,
                max_node_util,
            }));
        }
    }
    if exp.variant.switches() {
        // Feed each unpinned service's forecaster before
        // any decision this tick. Unconditional (not
        // sink-gated): the forecast is control-plane
        // state, so traced and untraced runs stay
        // bit-identical. A no-op for reactive variants.
        for (idx, svc) in services.iter().enumerate() {
            if !svc.pinned {
                controller.observe_load(idx, now);
            }
        }
        // λ-shift accounting: every instance visits every stage once,
        // so each non-root stage is about to see the root's current λ
        // (time-shifted by upstream latency). Hint it to the
        // controller before this tick's decisions — the stage's own
        // arrival window lags the root by the upstream latencies and
        // goes stale across an upstream switch.
        if let Some(wrt) = workflow.as_ref() {
            for wf in &wrt.workflows {
                let root = wf.spec.root();
                let lam = controller.estimated_load(wf.svc[root], now);
                for (s, &svc_idx) in wf.svc.iter().enumerate() {
                    if s != root {
                        controller.set_load_hint(svc_idx, Some(lam));
                    }
                }
            }
        }
        // Current serverless co-tenants with their loads.
        let others: Vec<(usize, f64)> = (0..services.len())
            .filter(|&j| {
                services[j].background || engine.mode(services[j].sid) == DeployMode::Serverless
            })
            .map(|j| (j, controller.estimated_load(j, now)))
            .collect();
        // Co-tenancy is per pool: with a fabric, only services sharing
        // a home node contend for the same serverless capacity.
        let homes: Option<Vec<NodeId>> = fabric.as_ref().map(|f| f.home.clone());
        for idx in 0..services.len() {
            if services[idx].pinned {
                continue;
            }
            let sid = services[idx].sid;
            let mode = engine.mode(sid);
            let local_others: Vec<(usize, f64)>;
            let others: &[(usize, f64)] = match &homes {
                Some(h) => {
                    local_others = others
                        .iter()
                        .copied()
                        .filter(|&(j, _)| h[j] == h[idx])
                        .collect();
                    &local_others
                }
                None => &others,
            };
            if engine.in_transition(sid) {
                // Ack deadline: a lost prewarm/boot ack
                // must not park the switch forever — retry
                // with backoff, then roll back (the router
                // keeps serving from the old platform
                // throughout, so nothing is dropped).
                if let Some(act) = engine.poll_deadline(sid, now, sink) {
                    let (actions, prewarm, rolled_back_after) = match act {
                        DeadlineAction::Retried {
                            actions, prewarm, ..
                        } => (actions, prewarm, None),
                        DeadlineAction::Aborted {
                            actions,
                            prewarm,
                            requested_at,
                        } => {
                            *failed_switches += 1;
                            (actions, prewarm, Some(now.duration_since(requested_at)))
                        }
                    };
                    *wasted_prewarms += prewarm as u64;
                    if sink.enabled() {
                        sink.record(TelemetryEvent::Fault(FaultRecord {
                            t: now,
                            kind: FaultKind::AckTimeout,
                            service: Some(idx),
                            queries_displaced: 0,
                            queries_dropped: 0,
                        }));
                        if let Some(after) = rolled_back_after {
                            sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                                t: now,
                                kind: RecoveryKind::SwitchRolledBack,
                                service: Some(idx),
                                after_s: after.as_secs_f64(),
                            }));
                        }
                    }
                    apply_engine_actions(
                        actions,
                        now,
                        serverless,
                        iaas,
                        fabric.as_mut(),
                        queue,
                        platform_rng,
                        bus,
                        drain_deadline,
                    );
                    continue;
                }
                // The controller is not consulted while a
                // switch is in flight, but the tick is
                // still recorded (decide_explained is
                // pure, so this costs nothing when the
                // sink is disabled).
                if sink.enabled() {
                    let (_, tr) = controller.decide_explained(
                        idx,
                        mode,
                        now,
                        engine.last_switch(sid),
                        pressures,
                        weights,
                        others,
                    );
                    sink.record(TelemetryEvent::Tick(TickRecord {
                        t: now,
                        service: idx,
                        mode: mode.into(),
                        load_qps: tr.load_qps,
                        mu: tr.mu,
                        lambda_max: tr.lambda_max,
                        pressures: tr.pressures,
                        weights,
                        decision: Decision::Stay.into(),
                        reason: TickReason::InTransition,
                    }));
                    record_forecast(sink, now, idx, &tr);
                }
                continue;
            }
            let (decision, tr) = controller.decide_explained(
                idx,
                mode,
                now,
                engine.last_switch(sid),
                pressures,
                weights,
                others,
            );
            if sink.enabled() {
                sink.record(TelemetryEvent::Tick(TickRecord {
                    t: now,
                    service: idx,
                    mode: mode.into(),
                    load_qps: tr.load_qps,
                    mu: tr.mu,
                    lambda_max: tr.lambda_max,
                    pressures: tr.pressures,
                    weights,
                    decision: decision.into(),
                    reason: tr.reason,
                }));
                record_forecast(sink, now, idx, &tr);
            }
            let load = tr.load_qps;
            let actions = match decision {
                Decision::Stay => Vec::new(),
                Decision::SwitchToServerless => {
                    let spec = &controller.model(idx).spec;
                    // Prewarm for the load the decision
                    // was evaluated at — in proactive
                    // mode the forecast upper bound, so
                    // the pool is sized for the load
                    // arriving by the time it is warm.
                    let n = prewarm_count(tr.eval_qps, spec.qos_target_s);
                    let n = ((n as f64 * exp.prewarm_factor).ceil() as u32)
                        .max(1)
                        .min(*n_max);
                    engine.begin_switch(sid, DeployMode::Serverless, n, load, now, sink)
                }
                Decision::SwitchToIaas => {
                    engine.begin_switch(sid, DeployMode::Iaas, 0, load, now, sink)
                }
            };
            apply_engine_actions(
                actions,
                now,
                serverless,
                iaas,
                fabric.as_mut(),
                queue,
                platform_rng,
                bus,
                drain_deadline,
            );
        }
        // Shadow traffic: one mirrored query per IaaS-mode
        // service per tick keeps calibration fed (§III).
        if exp.variant.uses_pca() {
            for (idx, svc) in services.iter_mut().enumerate() {
                let sid = svc.sid;
                if svc.background
                    || engine.mode(sid) != DeployMode::Iaas
                    || controller.estimated_load(idx, now) <= 0.0
                {
                    continue;
                }
                let query = Query {
                    id: QueryId::shadow_probe(svc.next_query_id),
                    service: sid,
                    submitted: now,
                };
                svc.next_query_id += 1;
                let home = fabric.as_ref().map_or(NodeId::ZERO, |f| f.home[idx]);
                if home == NodeId::ZERO {
                    bus.extend(serverless.submit(query, now, platform_rng));
                } else {
                    // The probe mirrors onto the home node's pool —
                    // internal traffic, so no wire delay.
                    queue.push(
                        now,
                        Ev::RemoteSubmit {
                            node: home,
                            query,
                            route: RouteTarget::Serverless,
                        },
                    );
                }
            }
        }
    }
    let next = now + exp.control_period;
    if next < *horizon_t {
        queue.push(next, Ev::ControlTick);
    }
}
