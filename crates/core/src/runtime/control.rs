//! The control tick (§IV): drain watchdog, per-service deployment
//! decisions through the controller/engine pair, and the shadow
//! calibration traffic.
//!
//! The per-service decision body lives in [`decide_service`] so two
//! callers share it byte-identically: the synchronous in-tick loop
//! (the legacy path, and the only one exercised while
//! [`Experiment::control_jitter_frac`] is zero), and the
//! jitter-deferred [`on_service_decision`] handler that fires each
//! service's decision at its own offset past the shared tick.

use super::switching::{apply_engine_actions, DRAIN_TIMEOUT_S};
use super::tenancy::PRESSURE_CAP;
use super::{record_forecast, Ev, Experiment, SimWorld};
use crate::controller::{prewarm_count, Decision, DeployMode};
use crate::engine::{DeadlineAction, RouteTarget};
use amoeba_platform::{Effect, NodeId, Query, QueryId};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{
    FaultKind, FaultRecord, NodeUtilRecord, RecoveryKind, RecoveryRecord, TelemetryEvent,
    TelemetrySink, TickReason, TickRecord,
};

/// The pressures a decision is evaluated against: the locally measured
/// signal (endogenous pool occupancy when tenancy asks for it, the
/// profiled monitor otherwise) plus any cross-cell pressure injected by
/// the fleet executor's epoch exchange, capped where the contention
/// surfaces are profiled. With no external term — every serial run —
/// this is exactly the legacy signal.
pub(crate) fn effective_pressures(world: &SimWorld) -> [f64; 3] {
    let base = match world.tenancy.as_ref() {
        Some(t) if t.endogenous => {
            let u = world.serverless.utilization();
            [
                u[0].min(PRESSURE_CAP),
                u[1].min(PRESSURE_CAP),
                u[2].min(PRESSURE_CAP),
            ]
        }
        _ => world.monitor.pressures(),
    };
    let ext = world.external_pressure;
    if ext == [0.0; 3] {
        base
    } else {
        [
            (base[0] + ext[0]).min(PRESSURE_CAP),
            (base[1] + ext[1]).min(PRESSURE_CAP),
            (base[2] + ext[2]).min(PRESSURE_CAP),
        ]
    }
}

/// Current serverless co-tenants with their estimated loads — the
/// cross-service term of Eq. 5's contention model.
fn co_tenant_loads(world: &SimWorld, now: SimTime) -> Vec<(usize, f64)> {
    let SimWorld {
        services,
        controller,
        engine,
        ..
    } = world;
    (0..services.len())
        .filter(|&j| {
            services[j].background || engine.mode(services[j].sid) == DeployMode::Serverless
        })
        .map(|j| (j, controller.estimated_load(j, now)))
        .collect()
}

/// Co-tenancy is per pool: with a fabric, only services sharing a home
/// node contend for the same serverless capacity.
fn filter_by_home<'a>(
    others: &'a [(usize, f64)],
    homes: &Option<Vec<NodeId>>,
    idx: usize,
    scratch: &'a mut Vec<(usize, f64)>,
) -> &'a [(usize, f64)] {
    match homes {
        Some(h) => {
            scratch.clear();
            scratch.extend(others.iter().copied().filter(|&(j, _)| h[j] == h[idx]));
            scratch
        }
        None => others,
    }
}

/// One control period elapsed: reclaim overdue drains, snapshot the
/// monitor, let the controller decide per unpinned service (riding out
/// in-flight switches via the ack-deadline machinery), and mirror one
/// shadow query per IaaS-mode service to keep calibration fed (§III).
pub(crate) fn on_control_tick<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    now: SimTime,
    sink: &mut S,
) {
    drain_watchdog(world, now, sink);
    let pressures = effective_pressures(world);
    world.pressure_sum[0] += pressures[0];
    world.pressure_sum[1] += pressures[1];
    world.pressure_sum[2] += pressures[2];
    world.pressure_samples += 1;
    let weights = world.monitor.weights();
    // Fleet utilization snapshot (multi-node runs only; single-node
    // traces keep their legacy event stream byte-identical).
    if sink.enabled() {
        if let Some(f) = world.fabric.as_ref() {
            let (mean_util, max_node_util) = f.fleet_utilization(&world.serverless);
            sink.record(TelemetryEvent::NodeUtil(NodeUtilRecord {
                t: now,
                mean_util,
                max_node_util,
            }));
        }
    }
    if exp.variant.switches() {
        {
            let SimWorld {
                services,
                controller,
                workflow,
                ..
            } = world;
            // Feed each unpinned service's forecaster before
            // any decision this tick. Unconditional (not
            // sink-gated): the forecast is control-plane
            // state, so traced and untraced runs stay
            // bit-identical. A no-op for reactive variants.
            for (idx, svc) in services.iter().enumerate() {
                if !svc.pinned {
                    controller.observe_load(idx, now);
                }
            }
            // λ-shift accounting: every instance visits every stage once,
            // so each non-root stage is about to see the root's current λ
            // (time-shifted by upstream latency). Hint it to the
            // controller before this tick's decisions — the stage's own
            // arrival window lags the root by the upstream latencies and
            // goes stale across an upstream switch.
            if let Some(wrt) = workflow.as_ref() {
                for wf in &wrt.workflows {
                    let root = wf.spec.root();
                    let lam = controller.estimated_load(wf.svc[root], now);
                    for (s, &svc_idx) in wf.svc.iter().enumerate() {
                        if s != root {
                            controller.set_load_hint(svc_idx, Some(lam));
                        }
                    }
                }
            }
        }
        let others = co_tenant_loads(world, now);
        let homes: Option<Vec<NodeId>> = world.fabric.as_ref().map(|f| f.home.clone());
        let mut scratch = Vec::new();
        for idx in 0..world.services.len() {
            if world.services[idx].pinned {
                continue;
            }
            let offset = world.services[idx].control_offset;
            if offset != SimDuration::ZERO {
                // Jittered phase: defer this service's decision to its
                // own offset past the tick. Decisions past the horizon
                // are dropped, matching the tick re-arm gate.
                if now + offset < world.horizon_t {
                    world.queue.push(now + offset, Ev::ServiceDecision { idx });
                }
                continue;
            }
            let local = filter_by_home(&others, &homes, idx, &mut scratch);
            decide_service(exp, world, idx, now, pressures, weights, local, sink);
        }
        shadow_probes(exp, world, now);
    }
    let next = now + exp.control_period;
    if next < world.horizon_t {
        world.queue.push(next, Ev::ControlTick);
    }
}

/// A jitter-deferred decision fires: re-measure pressures and co-tenant
/// loads *now* (the whole point of the offset — this service sees the
/// pool as its peers' same-tick switches left it, not the shared
/// start-of-tick snapshot) and run the common decision body.
pub(crate) fn on_service_decision<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    idx: usize,
    now: SimTime,
    sink: &mut S,
) {
    if world.services[idx].pinned {
        return;
    }
    let pressures = effective_pressures(world);
    let weights = world.monitor.weights();
    let others = co_tenant_loads(world, now);
    let homes: Option<Vec<NodeId>> = world.fabric.as_ref().map(|f| f.home.clone());
    let mut scratch = Vec::new();
    let local = filter_by_home(&others, &homes, idx, &mut scratch);
    decide_service(exp, world, idx, now, pressures, weights, local, sink);
}

/// Drain watchdog: a released IaaS group whose drained ack is overdue
/// is reclaimed forcibly and its in-flight queries re-queued on
/// serverless.
fn drain_watchdog<S: TelemetrySink + ?Sized>(world: &mut SimWorld, now: SimTime, sink: &mut S) {
    let SimWorld {
        services,
        serverless,
        iaas,
        platform_rng,
        bus,
        queue,
        fabric,
        drain_deadline,
        ..
    } = world;
    for idx in 0..services.len() {
        let overdue = matches!(drain_deadline[idx], Some(dl) if now >= dl);
        if !overdue {
            continue;
        }
        drain_deadline[idx] = None;
        let sid = services[idx].sid;
        let home = fabric.as_ref().map_or(NodeId::ZERO, |f| f.home[idx]);
        let displaced = if home == NodeId::ZERO {
            let (eff, displaced) = iaas.force_drain(sid, now);
            bus.extend(eff);
            displaced
        } else {
            // The overdue group lives on the service's home node; its
            // schedules return to the calendar node-tagged.
            let f = fabric.as_mut().unwrap();
            let (eff, displaced) = f.node_mut(home).iaas.force_drain(sid, now);
            for e in eff {
                match e {
                    Effect::Schedule { after, event } => {
                        queue.push(now + after, Ev::NodePlatform { node: home, event });
                    }
                    ack => bus.extend([ack]),
                }
            }
            displaced
        };
        if sink.enabled() {
            sink.record(TelemetryEvent::Fault(FaultRecord {
                t: now,
                kind: FaultKind::DrainTimeout,
                service: Some(idx),
                queries_displaced: displaced.len() as u64,
                queries_dropped: 0,
            }));
            sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                t: now,
                kind: RecoveryKind::DrainForced,
                service: Some(idx),
                after_s: DRAIN_TIMEOUT_S,
            }));
        }
        for q in displaced {
            if home == NodeId::ZERO {
                serverless.resume_service(q.service);
                bus.extend(serverless.submit(q, now, platform_rng));
            } else {
                // Displaced work re-queues on the home node's pool,
                // keeping the original submit time.
                queue.push(
                    now,
                    Ev::RemoteSubmit {
                        node: home,
                        query: q,
                        route: RouteTarget::Serverless,
                    },
                );
            }
        }
    }
}

/// The per-service decision body, shared between the synchronous tick
/// loop and the jitter-deferred path: ride out an in-flight switch via
/// the ack-deadline machinery, otherwise consult the controller and
/// apply whatever the engine wants done.
#[allow(clippy::too_many_arguments)]
fn decide_service<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    idx: usize,
    now: SimTime,
    pressures: [f64; 3],
    weights: [f64; 3],
    others: &[(usize, f64)],
    sink: &mut S,
) {
    let SimWorld {
        services,
        controller,
        engine,
        serverless,
        iaas,
        platform_rng,
        bus,
        queue,
        fabric,
        drain_deadline,
        wasted_prewarms,
        failed_switches,
        n_max,
        ..
    } = world;
    let sid = services[idx].sid;
    let mode = engine.mode(sid);
    if engine.in_transition(sid) {
        // Ack deadline: a lost prewarm/boot ack
        // must not park the switch forever — retry
        // with backoff, then roll back (the router
        // keeps serving from the old platform
        // throughout, so nothing is dropped).
        if let Some(act) = engine.poll_deadline(sid, now, sink) {
            let (actions, prewarm, rolled_back_after) = match act {
                DeadlineAction::Retried {
                    actions, prewarm, ..
                } => (actions, prewarm, None),
                DeadlineAction::Aborted {
                    actions,
                    prewarm,
                    requested_at,
                } => {
                    *failed_switches += 1;
                    (actions, prewarm, Some(now.duration_since(requested_at)))
                }
            };
            *wasted_prewarms += prewarm as u64;
            if sink.enabled() {
                sink.record(TelemetryEvent::Fault(FaultRecord {
                    t: now,
                    kind: FaultKind::AckTimeout,
                    service: Some(idx),
                    queries_displaced: 0,
                    queries_dropped: 0,
                }));
                if let Some(after) = rolled_back_after {
                    sink.record(TelemetryEvent::Recovery(RecoveryRecord {
                        t: now,
                        kind: RecoveryKind::SwitchRolledBack,
                        service: Some(idx),
                        after_s: after.as_secs_f64(),
                    }));
                }
            }
            apply_engine_actions(
                actions,
                now,
                serverless,
                iaas,
                fabric.as_mut(),
                queue,
                platform_rng,
                bus,
                drain_deadline,
            );
            return;
        }
        // The controller is not consulted while a
        // switch is in flight, but the tick is
        // still recorded (decide_explained is
        // pure, so this costs nothing when the
        // sink is disabled).
        if sink.enabled() {
            let (_, tr) = controller.decide_explained(
                idx,
                mode,
                now,
                engine.last_switch(sid),
                pressures,
                weights,
                others,
            );
            sink.record(TelemetryEvent::Tick(TickRecord {
                t: now,
                service: idx,
                mode: mode.into(),
                load_qps: tr.load_qps,
                mu: tr.mu,
                lambda_max: tr.lambda_max,
                pressures: tr.pressures,
                weights,
                decision: Decision::Stay.into(),
                reason: TickReason::InTransition,
            }));
            record_forecast(sink, now, idx, &tr);
        }
        return;
    }
    let (decision, tr) = controller.decide_explained(
        idx,
        mode,
        now,
        engine.last_switch(sid),
        pressures,
        weights,
        others,
    );
    if sink.enabled() {
        sink.record(TelemetryEvent::Tick(TickRecord {
            t: now,
            service: idx,
            mode: mode.into(),
            load_qps: tr.load_qps,
            mu: tr.mu,
            lambda_max: tr.lambda_max,
            pressures: tr.pressures,
            weights,
            decision: decision.into(),
            reason: tr.reason,
        }));
        record_forecast(sink, now, idx, &tr);
    }
    let load = tr.load_qps;
    let actions = match decision {
        Decision::Stay => Vec::new(),
        Decision::SwitchToServerless => {
            let spec = &controller.model(idx).spec;
            // Prewarm for the load the decision
            // was evaluated at — in proactive
            // mode the forecast upper bound, so
            // the pool is sized for the load
            // arriving by the time it is warm.
            let n = prewarm_count(tr.eval_qps, spec.qos_target_s);
            let n = ((n as f64 * exp.prewarm_factor).ceil() as u32)
                .max(1)
                .min(*n_max);
            engine.begin_switch(sid, DeployMode::Serverless, n, load, now, sink)
        }
        Decision::SwitchToIaas => engine.begin_switch(sid, DeployMode::Iaas, 0, load, now, sink),
    };
    apply_engine_actions(
        actions,
        now,
        serverless,
        iaas,
        fabric.as_mut(),
        queue,
        platform_rng,
        bus,
        drain_deadline,
    );
}

/// Shadow traffic: one mirrored query per IaaS-mode
/// service per tick keeps calibration fed (§III).
fn shadow_probes(exp: &Experiment, world: &mut SimWorld, now: SimTime) {
    if !exp.variant.uses_pca() {
        return;
    }
    let SimWorld {
        services,
        controller,
        engine,
        serverless,
        platform_rng,
        bus,
        queue,
        fabric,
        ..
    } = world;
    for (idx, svc) in services.iter_mut().enumerate() {
        let sid = svc.sid;
        if svc.background
            || engine.mode(sid) != DeployMode::Iaas
            || controller.estimated_load(idx, now) <= 0.0
        {
            continue;
        }
        let query = Query {
            id: QueryId::shadow_probe(svc.next_query_id),
            service: sid,
            submitted: now,
        };
        svc.next_query_id += 1;
        let home = fabric.as_ref().map_or(NodeId::ZERO, |f| f.home[idx]);
        if home == NodeId::ZERO {
            bus.extend(serverless.submit(query, now, platform_rng));
        } else {
            // The probe mirrors onto the home node's pool —
            // internal traffic, so no wire delay.
            queue.push(
                now,
                Ev::RemoteSubmit {
                    node: home,
                    query,
                    route: RouteTarget::Serverless,
                },
            );
        }
    }
}
