//! The effect bus: the one channel by which platforms answer the
//! kernel.
//!
//! Platform calls never mutate run state directly — they return
//! [`Effect`]s, which accumulate on the [`EffectBus`] and are applied
//! by [`apply`] after each dispatched calendar event. Applying an
//! effect can produce further effects (an ack triggers engine actions,
//! which command platforms, which respond); [`apply`] therefore drains
//! in batches until the bus is idle.

use super::{completions, switching, Ev, Experiment, SimWorld};
use amoeba_platform::Effect;
use amoeba_sim::SimTime;
use amoeba_telemetry::TelemetrySink;

/// Pending platform effects, in emission order. Batch draining
/// preserves the original inline-worklist semantics: everything
/// emitted while applying batch *n* is deferred to batch *n + 1*.
pub(crate) struct EffectBus {
    pending: Vec<Effect>,
}

impl EffectBus {
    pub(crate) fn new() -> Self {
        EffectBus {
            pending: Vec::new(),
        }
    }

    /// Queue every effect of one platform response.
    pub(crate) fn extend(&mut self, effects: impl IntoIterator<Item = Effect>) {
        self.pending.extend(effects);
    }

    /// Is there nothing left to apply?
    pub(crate) fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Take the current batch, leaving the bus empty for re-emission.
    pub(crate) fn take_batch(&mut self) -> Vec<Effect> {
        std::mem::take(&mut self.pending)
    }

    /// Raw access for [`super::world::SimPlatforms`], whose
    /// `PlatformCommands` impl pushes platform responses while the
    /// engine's actions are dispatched.
    pub(crate) fn pending_mut(&mut self) -> &mut Vec<Effect> {
        &mut self.pending
    }
}

/// Apply every pending effect (and everything their application emits)
/// at simulation time `now`. Scheduling effects land back on the
/// calendar; completions and switch-protocol acks go to their handler
/// modules.
pub(crate) fn apply<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    now: SimTime,
    sink: &mut S,
) {
    while !world.bus.is_idle() {
        let batch = world.bus.take_batch();
        for e in batch {
            match e {
                Effect::Schedule { after, event } => {
                    world.queue.push(now + after, Ev::Platform(event));
                }
                Effect::Completed(outcome) => {
                    // Completions on the main bus always come from
                    // node 0's platforms; remote nodes account theirs
                    // in `fabric::absorb`.
                    if !outcome.query.id.is_shadow() {
                        if let Some(f) = world.fabric.as_mut() {
                            f.note_completed(amoeba_platform::NodeId::ZERO);
                        }
                    }
                    completions::on_completed(exp, world, outcome, now, sink);
                }
                Effect::PrewarmReady { service } => {
                    switching::on_prewarm_ready(world, service, now, sink);
                }
                Effect::VmGroupReady { service } => {
                    switching::on_vm_group_ready(world, service, now, sink);
                }
                Effect::IaasDrained { service } => {
                    switching::on_iaas_drained(world, service, now, sink);
                }
            }
        }
    }
}
