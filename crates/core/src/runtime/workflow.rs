//! Workflow DAG bookkeeping: instance tracking, fan-out/fan-in joins
//! and per-stage hand-off.
//!
//! Each multi-stage [`amoeba_workload::WorkflowSpec`] attached to an
//! experiment is lowered by `world::setup` to one managed service per
//! stage; this module owns what the per-service machinery cannot see —
//! the *instance*: one user query's traversal of the whole DAG. A root
//! arrival opens an instance; every stage completion decrements the
//! successors' pending-predecessor counts and submits the ones that
//! become ready (fan-in therefore joins on the slowest branch, because
//! a successor is submitted exactly when its *last* predecessor
//! finishes); the final stage completion records the end-to-end
//! latency against the workflow's QoS target.
//!
//! Everything here hangs off `SimWorld.workflow: Option<WorkflowRt>`.
//! `None` — any run without a multi-stage workflow — touches none of
//! these paths and stays byte-identical to the legacy kernel.

use super::arrivals::route_and_submit;
use super::effects::EffectBus;
use super::fabric::Fabric;
use super::world::ServiceRt;
use super::Ev;
use crate::controller::{DeployMode, DeploymentController};
use crate::engine::HybridEngine;
use amoeba_metrics::LatencyRecorder;
use amoeba_platform::{ExecutedOn, IaasPlatform, Query, QueryId, QueryOutcome, ServerlessPlatform};
use amoeba_sim::{EventQueue, SimRng, SimTime};
use amoeba_telemetry::{StageSpanRecord, TelemetryEvent, TelemetrySink};
use amoeba_workload::WorkflowSpec;
use std::collections::VecDeque;

/// One query's traversal of a workflow DAG.
struct InstanceRt {
    /// Root-stage submit time; end-to-end latency is measured from it.
    t0: SimTime,
    /// Submitted after warmup — only counted instances reach the
    /// recorder and the violation/conservation counters.
    counted: bool,
    /// Per-stage count of predecessors not yet completed. A stage is
    /// submitted when its count hits zero (the root starts at zero).
    pending: Vec<u8>,
    /// Stages not yet completed; the instance closes at zero.
    remaining: u32,
}

/// Open instances in a dense sliding window over root sequence
/// numbers.
///
/// Roots are opened with strictly increasing seqs (the global arrival
/// counter), and instances close within a bounded latency, so the live
/// span `[base, base + slots.len())` stays narrow. Lookups become one
/// subtraction and an array index instead of a `BTreeMap` descent —
/// this sits on the per-stage-completion hot path. The front of the
/// window is compacted on removal, so memory tracks the oldest open
/// instance, not the run length.
#[derive(Default)]
struct InstanceTable {
    /// Seq of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<InstanceRt>>,
}

impl InstanceTable {
    fn insert(&mut self, seq: u64, inst: InstanceRt) {
        if self.slots.is_empty() {
            self.base = seq;
        }
        debug_assert!(seq >= self.base, "root seqs open in increasing order");
        let idx = (seq - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(self.slots[idx].is_none(), "root seq opened twice");
        self.slots[idx] = Some(inst);
    }

    fn get_mut(&mut self, seq: u64) -> Option<&mut InstanceRt> {
        let idx = seq.checked_sub(self.base)? as usize;
        self.slots.get_mut(idx)?.as_mut()
    }

    fn remove(&mut self, seq: u64) -> Option<InstanceRt> {
        let idx = seq.checked_sub(self.base)? as usize;
        let inst = self.slots.get_mut(idx)?.take()?;
        // Compact the closed prefix so the window tracks the oldest
        // still-open instance.
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        if self.slots.is_empty() {
            self.base = 0;
        }
        Some(inst)
    }
}

/// Aggregates for one multi-stage workflow across the run.
pub(crate) struct WorkflowState {
    pub(crate) spec: WorkflowSpec,
    /// Stage index → `SimWorld.services` index.
    pub(crate) svc: Vec<usize>,
    /// Per-stage latency budgets (the split end-to-end target).
    pub(crate) budgets: Vec<f64>,
    /// Open instances keyed by root sequence number.
    instances: InstanceTable,
    /// End-to-end latencies of counted, completed instances.
    pub(crate) recorder: LatencyRecorder,
    pub(crate) submitted: usize,
    pub(crate) completed: usize,
    pub(crate) failed: usize,
    /// Counted instances whose end-to-end latency broke the target.
    pub(crate) violations: usize,
    /// Stage completions that broke their split budget — the per-stage
    /// attribution of where an end-to-end violation was manufactured.
    pub(crate) stage_violations: Vec<usize>,
}

/// All workflow bookkeeping for one run. Present on `SimWorld` only
/// when at least one multi-stage workflow is attached.
pub(crate) struct WorkflowRt {
    pub(crate) workflows: Vec<WorkflowState>,
    /// `services` index → (workflow index, stage index); `None` for
    /// plain services (including lowered single-stage workflows).
    stage_of: Vec<Option<(usize, usize)>>,
}

impl WorkflowRt {
    /// Build the runtime from `world::setup`'s lowering metadata:
    /// `(spec, services indices in stage order, stage budgets)` per
    /// multi-stage workflow. Returns `None` when there are none, which
    /// keeps every legacy run on the untouched fast path.
    pub(crate) fn new(
        meta: Vec<(WorkflowSpec, Vec<usize>, Vec<f64>)>,
        n_services: usize,
    ) -> Option<Self> {
        if meta.is_empty() {
            return None;
        }
        let mut stage_of = vec![None; n_services];
        let workflows = meta
            .into_iter()
            .enumerate()
            .map(|(w, (spec, svc, budgets))| {
                for (s, &idx) in svc.iter().enumerate() {
                    stage_of[idx] = Some((w, s));
                }
                let n = spec.stage_count();
                WorkflowState {
                    spec,
                    svc,
                    budgets,
                    instances: InstanceTable::default(),
                    recorder: LatencyRecorder::new(),
                    submitted: 0,
                    completed: 0,
                    failed: 0,
                    violations: 0,
                    stage_violations: vec![0; n],
                }
            })
            .collect();
        Some(WorkflowRt {
            workflows,
            stage_of,
        })
    }

    /// Which workflow stage service `idx` implements, if any.
    pub(crate) fn stage_of(&self, idx: usize) -> Option<(usize, usize)> {
        self.stage_of.get(idx).copied().flatten()
    }

    /// An external arrival hit service `idx`. If it is a workflow root
    /// stage, open the instance record and return the stage index to
    /// tag the query id with; plain services return `None` and keep
    /// their untagged (stage-0-identical) ids.
    pub(crate) fn open_root(
        &mut self,
        idx: usize,
        seq: u64,
        now: SimTime,
        counted: bool,
    ) -> Option<usize> {
        let (w, s) = self.stage_of(idx)?;
        let wf = &mut self.workflows[w];
        debug_assert_eq!(s, wf.spec.root(), "external arrival on a non-root stage");
        if counted {
            wf.submitted += 1;
        }
        let pending = (0..wf.spec.stage_count())
            .map(|i| wf.spec.preds(i).len() as u8)
            .collect();
        wf.instances.insert(
            seq,
            InstanceRt {
                t0: now,
                counted,
                pending,
                remaining: wf.spec.stage_count() as u32,
            },
        );
        Some(s)
    }

    /// A stage query was lost for good (chaos crash with the query
    /// dropped): the whole instance fails. Removing it makes sibling
    /// branches short-circuit on completion — their successors are
    /// never submitted, so per-stage conservation
    /// (`submitted == completed + failed`) holds for every stage.
    pub(crate) fn on_stage_query_lost(&mut self, idx: usize, qid: QueryId) {
        let Some((w, _)) = self.stage_of(idx) else {
            return;
        };
        let wf = &mut self.workflows[w];
        if let Some(inst) = wf.instances.remove(qid.seq()) {
            if inst.counted {
                wf.failed += 1;
            }
        }
    }
}

/// One stage of workflow `w` finished executing. Attribute the span,
/// hand ready successors to the router (fan-in joins here: a successor
/// is ready exactly when its last predecessor completes), and close
/// the instance on its final stage.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_stage_complete<S: TelemetrySink + ?Sized>(
    wrt: &mut WorkflowRt,
    w: usize,
    s: usize,
    outcome: &QueryOutcome,
    now: SimTime,
    services: &mut [ServiceRt],
    controller: &mut DeploymentController,
    engine: &mut HybridEngine,
    serverless: &mut ServerlessPlatform,
    iaas: &mut IaasPlatform,
    platform_rng: &mut SimRng,
    iaas_rng: &mut SimRng,
    bus: &mut EffectBus,
    queue: &mut EventQueue<Ev>,
    fabric: &mut Option<Fabric>,
    warmup_t: SimTime,
    sink: &mut S,
) {
    let wf = &mut wrt.workflows[w];
    let seq = outcome.query.id.seq();
    // A missing instance means a sibling branch already failed the
    // traversal (crash-dropped query): swallow the completion.
    let Some(inst) = wf.instances.get_mut(seq) else {
        return;
    };
    let latency_s = outcome.latency().as_secs_f64();
    if sink.enabled() {
        sink.record(TelemetryEvent::StageSpan(StageSpanRecord {
            t: now,
            workflow: w,
            instance: seq,
            stage: s,
            service: outcome.query.service.raw() as usize,
            platform: match outcome.executed_on {
                ExecutedOn::Serverless => DeployMode::Serverless,
                ExecutedOn::Iaas => DeployMode::Iaas,
            }
            .into(),
            latency_s,
            budget_s: wf.budgets[s],
        }));
    }
    if inst.counted && latency_s > wf.budgets[s] {
        wf.stage_violations[s] += 1;
    }
    let mut ready: Vec<usize> = Vec::new();
    for &succ in wf.spec.succs(s) {
        inst.pending[succ] -= 1;
        if inst.pending[succ] == 0 {
            ready.push(succ);
        }
    }
    inst.remaining -= 1;
    let counted = inst.counted;
    let t0 = inst.t0;
    if inst.remaining == 0 {
        debug_assert!(ready.is_empty(), "final stage with ready successors");
        wf.instances.remove(seq);
        if counted {
            let e2e = now.duration_since(t0);
            wf.recorder.record(e2e);
            wf.completed += 1;
            if e2e.as_secs_f64() > wf.spec.qos_target_s() {
                wf.violations += 1;
            }
        }
        return;
    }
    for succ in ready {
        let svc_idx = wf.svc[succ];
        let sid = services[svc_idx].sid;
        controller.record_arrival(svc_idx, now);
        if now >= warmup_t {
            services[svc_idx].submitted += 1;
        }
        let query = Query {
            id: QueryId::user_stage(seq, succ),
            service: sid,
            submitted: now,
        };
        let target = engine.route(sid);
        route_and_submit(
            svc_idx,
            query,
            target,
            now,
            serverless,
            iaas,
            platform_rng,
            iaas_rng,
            bus,
            queue,
            fabric,
            sink,
        );
    }
}
