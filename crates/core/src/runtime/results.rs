//! Result assembly: the public result types and the fold from a
//! drained [`SimWorld`] into a [`RunResult`].

use super::{Experiment, SimWorld};
use crate::baselines::SystemVariant;
use crate::controller::DeployMode;
use amoeba_metrics::{BillableUsage, CostModel, LatencyRecorder, TimeSeries, UsageSummary};
use amoeba_platform::LatencyBreakdown;
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::WarmSampleRecord;
use amoeba_tenancy::{TenancySummary, TenantAccount, VendorLedger};

/// Mean serverless latency breakdown (warm executions only) — Fig. 4.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BreakdownMeans {
    /// Samples aggregated.
    pub count: usize,
    /// Mean auth/processing overhead, s.
    pub auth_s: f64,
    /// Mean code-loading overhead, s.
    pub code_load_s: f64,
    /// Mean result-posting overhead, s.
    pub result_post_s: f64,
    /// Mean execution time, s.
    pub exec_s: f64,
    /// Mean queueing time, s.
    pub queue_s: f64,
}

impl BreakdownMeans {
    pub(crate) fn add(&mut self, b: &LatencyBreakdown) {
        let n = self.count as f64;
        let upd = |mean: &mut f64, v: f64| *mean = (*mean * n + v) / (n + 1.0);
        upd(&mut self.auth_s, b.auth.as_secs_f64());
        upd(&mut self.code_load_s, b.code_load.as_secs_f64());
        upd(&mut self.result_post_s, b.result_post.as_secs_f64());
        upd(&mut self.exec_s, b.exec.as_secs_f64());
        upd(&mut self.queue_s, b.queue_wait.as_secs_f64());
        self.count += 1;
    }

    /// Rebuild the Fig. 4 means from a telemetry trace's warm samples.
    /// Uses the same incremental fold as the in-run accumulation, so for
    /// a full-run trace the values are bit-identical to
    /// [`ServiceResult::breakdown`].
    pub fn from_warm_samples<'a>(samples: impl Iterator<Item = &'a WarmSampleRecord>) -> Self {
        let mut out = BreakdownMeans::default();
        for s in samples {
            let n = out.count as f64;
            let upd = |mean: &mut f64, v: f64| *mean = (*mean * n + v) / (n + 1.0);
            upd(&mut out.auth_s, s.auth_s);
            upd(&mut out.code_load_s, s.code_load_s);
            upd(&mut out.result_post_s, s.result_post_s);
            upd(&mut out.exec_s, s.exec_s);
            out.count += 1;
        }
        out
    }

    /// The Fig. 4 overhead share: (auth + code load + post) / total
    /// (queueing excluded, as in the paper's breakdown experiment).
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.auth_s + self.code_load_s + self.result_post_s + self.exec_s;
        if total <= 0.0 {
            return 0.0;
        }
        (self.auth_s + self.code_load_s + self.result_post_s) / total
    }
}

/// Per-service results of a run.
pub struct ServiceResult {
    /// Service name.
    pub name: String,
    /// Was it a background service?
    pub background: bool,
    /// QoS target, seconds.
    pub qos_target_s: f64,
    /// QoS percentile.
    pub qos_percentile: f64,
    /// All end-to-end latencies (post-warmup).
    pub latency: LatencyRecorder,
    /// Resource usage integrals.
    pub usage: UsageSummary,
    /// Deploy-mode switches: (time, new mode, load at switch) — Fig. 12.
    pub switch_history: Vec<(SimTime, DeployMode, f64)>,
    /// Estimated load over time.
    pub load_timeline: TimeSeries<f64>,
    /// Allocated cores over time — Fig. 13.
    pub cores_timeline: TimeSeries<f64>,
    /// Allocated memory (MB) over time — Fig. 13.
    pub mem_timeline: TimeSeries<f64>,
    /// Deploy mode over time (0 = IaaS, 1 = serverless).
    pub mode_timeline: TimeSeries<f64>,
    /// Mean serverless warm-execution breakdown — Fig. 4.
    pub breakdown: BreakdownMeans,
    /// Queries submitted (post-warmup).
    pub submitted: usize,
    /// Queries completed (post-warmup submissions).
    pub completed: usize,
    /// Queries explicitly lost to injected faults (post-warmup): a
    /// container crash whose in-flight query was dropped rather than
    /// re-queued. Always zero without a fault plan; conservation is
    /// `submitted == completed + failed`.
    pub failed: usize,
    /// Completed queries that executed on the serverless platform.
    pub serverless_queries: usize,
    /// Serverless-executed queries over the QoS target — where cold
    /// starts and pool contention land (Fig. 16's effect lives here).
    pub serverless_violations: usize,
    /// Billing-relevant aggregates split by platform (IaaS rent vs
    /// per-invocation serverless), for the maintainer-cost experiments.
    pub billable: BillableUsage,
}

impl ServiceResult {
    /// Fraction of queries over the QoS target.
    pub fn violation_ratio(&self) -> f64 {
        self.latency
            .violation_ratio(SimDuration::from_secs_f64(self.qos_target_s))
    }

    /// Violation ratio among serverless-executed queries only.
    pub fn serverless_violation_ratio(&self) -> f64 {
        if self.serverless_queries == 0 {
            return 0.0;
        }
        self.serverless_violations as f64 / self.serverless_queries as f64
    }

    /// The r-ile latency in seconds (r = the spec's QoS percentile).
    pub fn qos_latency(&mut self) -> Option<f64> {
        let q = self.qos_percentile;
        self.latency.quantile(q).map(|d| d.as_secs_f64())
    }

    /// Does the run meet the paper's QoS definition (r-ile ≤ target)?
    pub fn qos_met(&mut self) -> bool {
        match self.qos_latency() {
            Some(l) => l <= self.qos_target_s,
            None => true,
        }
    }
}

/// Per-workflow results of a run (multi-stage workflows only;
/// single-stage workflows lower to a plain [`ServiceResult`]).
pub struct WorkflowResult {
    /// Workflow name.
    pub name: String,
    /// End-to-end QoS target, seconds.
    pub qos_target_s: f64,
    /// QoS percentile.
    pub qos_percentile: f64,
    /// Stage names, in stage-index order.
    pub stages: Vec<String>,
    /// Indices into [`RunResult::services`] of the lowered per-stage
    /// services, in stage-index order.
    pub stage_services: Vec<usize>,
    /// The split per-stage latency budgets, seconds.
    pub stage_budgets: Vec<f64>,
    /// End-to-end latencies of counted, completed instances.
    pub latency: LatencyRecorder,
    /// Instances submitted post-warmup.
    pub submitted: usize,
    /// Counted instances whose every stage completed.
    pub completed: usize,
    /// Counted instances lost to an injected fault mid-DAG.
    pub failed: usize,
    /// Counted instances whose end-to-end latency broke the target.
    pub violations: usize,
    /// Per-stage completions over their split budget — attribution of
    /// where end-to-end violations were manufactured.
    pub stage_violations: Vec<usize>,
}

impl WorkflowResult {
    /// Fraction of completed instances over the end-to-end target.
    pub fn violation_ratio(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.violations as f64 / self.completed as f64
    }

    /// The r-ile end-to-end latency in seconds.
    pub fn qos_latency(&mut self) -> Option<f64> {
        let q = self.qos_percentile;
        self.latency.quantile(q).map(|d| d.as_secs_f64())
    }

    /// Does the run meet the paper's QoS definition (r-ile ≤ target)?
    pub fn qos_met(&mut self) -> bool {
        match self.qos_latency() {
            Some(l) => l <= self.qos_target_s,
            None => true,
        }
    }
}

/// Per-node totals of one multi-node run. Conservation holds per node:
/// `submitted == completed + failed` once the calendar drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTotals {
    /// User queries placed on this node (by executing node).
    pub submitted: u64,
    /// User queries completed on this node.
    pub completed: u64,
    /// User queries lost to injected faults on this node.
    pub failed: u64,
    /// Queries this node received spilled off another node's home.
    pub spills: u64,
}

/// Cross-node accounting of one multi-node run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiNodeSummary {
    /// Per-node totals, indexed by node id.
    pub nodes: Vec<NodeTotals>,
    /// Total queries executed off their home node.
    pub spill_total: u64,
}

/// The result of one experiment run.
pub struct RunResult {
    /// Which system ran.
    pub variant: SystemVariant,
    /// Per-service results: [`Experiment::services`] first, then the
    /// lowered workflow stages in attachment order.
    pub services: Vec<ServiceResult>,
    /// Per-workflow end-to-end results (multi-stage workflows only).
    pub workflows: Vec<WorkflowResult>,
    /// Mean CPU fraction of the node consumed by the three contention
    /// meters (§VII-E overhead accounting).
    pub meter_cpu_overhead: f64,
    /// Final Eq. 6 weights.
    pub final_weights: [f64; 3],
    /// Mean measured pressures over the run.
    pub mean_pressures: [f64; 3],
    /// Total cold starts on the serverless platform.
    pub cold_starts: u64,
    /// Final per-service calibration gains (diagnostics).
    pub final_gains: Vec<f64>,
    /// The simulated horizon.
    pub horizon: SimDuration,
    /// Prewarmed containers thrown away by ack-deadline retries and
    /// rollbacks (each retry re-issues the full prewarm).
    pub wasted_prewarms: u64,
    /// Switches rolled back (`Aborted`) after exhausting ack retries.
    pub failed_switches: u64,
    /// Cross-node accounting, present when the topology had more than
    /// one node.
    pub multinode: Option<MultiNodeSummary>,
    /// Vendor books and admission outcome, present when a non-no-op
    /// tenancy setup was attached.
    pub tenancy: Option<TenancySummary>,
}

/// The calendar has drained: fold the world's accumulated state into
/// the public result types.
pub(crate) fn finish(exp: &Experiment, world: SimWorld) -> RunResult {
    let SimWorld {
        serverless,
        controller,
        monitor,
        engine,
        services,
        fabric,
        workflow,
        tenancy,
        wasted_prewarms,
        failed_switches,
        meter_core_seconds,
        pressure_sum,
        pressure_samples,
        horizon_t,
        ..
    } = world;
    let final_weights = monitor.weights();
    let mean_pressures = if pressure_samples > 0 {
        [
            pressure_sum[0] / pressure_samples as f64,
            pressure_sum[1] / pressure_samples as f64,
            pressure_sum[2] / pressure_samples as f64,
        ]
    } else {
        [0.0; 3]
    };
    let node_core_seconds = exp.serverless_cfg.node.cores * exp.horizon.as_secs_f64();
    let mut results: Vec<ServiceResult> = services
        .into_iter()
        .map(|s| ServiceResult {
            name: s.spec.name.clone(),
            background: s.background,
            qos_target_s: s.spec.qos_target_s,
            qos_percentile: s.spec.qos_percentile,
            latency: s.recorder,
            usage: s.usage.finish(horizon_t),
            switch_history: engine.history(s.sid).to_vec(),
            load_timeline: s.load_timeline,
            cores_timeline: s.cores_timeline,
            mem_timeline: s.mem_timeline,
            mode_timeline: s.mode_timeline,
            breakdown: s.breakdown,
            submitted: s.submitted,
            completed: s.completed,
            failed: s.failed,
            serverless_queries: s.serverless_queries,
            serverless_violations: s.serverless_violations,
            billable: BillableUsage {
                invocations: s.serverless_queries as u64,
                ..s.billable
            },
        })
        .collect();
    let final_gains = (0..results.len()).map(|i| controller.gain(i)).collect();
    let cold_starts = serverless.cold_start_count()
        + fabric.as_ref().map_or(0, |f| {
            f.nodes
                .iter()
                .map(|n| n.serverless.cold_start_count())
                .sum()
        });
    let multinode = fabric.map(|f| MultiNodeSummary {
        nodes: (0..f.node_count())
            .map(|i| NodeTotals {
                submitted: f.node_submitted[i],
                completed: f.node_completed[i],
                failed: f.node_failed[i],
                spills: f.node_spills[i],
            })
            .collect(),
        spill_total: f.spill_total,
    });
    let workflows: Vec<WorkflowResult> = workflow
        .map(|wrt| {
            wrt.workflows
                .into_iter()
                .map(|wf| WorkflowResult {
                    name: wf.spec.name().to_string(),
                    qos_target_s: wf.spec.qos_target_s(),
                    qos_percentile: wf.spec.qos_percentile(),
                    stages: wf.spec.stages().iter().map(|st| st.name.clone()).collect(),
                    stage_services: wf.svc,
                    stage_budgets: wf.budgets,
                    latency: wf.recorder,
                    submitted: wf.submitted,
                    completed: wf.completed,
                    failed: wf.failed,
                    violations: wf.violations,
                    stage_violations: wf.stage_violations,
                })
                .collect()
        })
        .unwrap_or_default();
    // Settle the vendor's books: revenue from each tenant's billable
    // usage at marked-up list prices, vendor cost from the resources
    // actually allocated to it (busy or idle), credits per violating
    // query. Rejected tenants settle to zeroes but stay on the books so
    // the report can show what the admission policy turned away.
    let tenancy = tenancy.and_then(|trt| {
        let tn = exp.tenancy.as_ref()?;
        let list = CostModel::default();
        let mut ledger = VendorLedger::default();
        let (mut met, mut bad, mut vq, mut reserved) = (0usize, 0usize, 0u64, 0.0f64);
        for ((t, d), svc) in tn.tenants.iter().zip(&trt.decisions).zip(&trt.svc) {
            let (billable, queries, violations, qos_met, alloc_cost) = match svc {
                Some(i) => {
                    let r = &mut results[*i];
                    let n = r.latency.count() as u64;
                    let v = (r.violation_ratio() * n as f64).round() as u64;
                    (
                        r.billable,
                        n,
                        v,
                        r.qos_met(),
                        list.cost_if_all_iaas(&r.usage),
                    )
                }
                None => (BillableUsage::default(), 0, 0, true, 0.0),
            };
            if d.admitted {
                reserved += d.reserved_share;
                if qos_met {
                    met += 1;
                } else {
                    bad += 1;
                }
                vq += violations;
                ledger.vendor_cost += alloc_cost;
            }
            ledger.accounts.push(TenantAccount::settle(
                &t.spec.name,
                d.admitted,
                d.reserved_share,
                &billable,
                queries,
                violations,
                qos_met,
                &t.pricing,
                &list,
            ));
        }
        let admitted = trt.decisions.iter().filter(|d| d.admitted).count();
        Some(TenancySummary {
            ratio: tn.policy.ratio,
            admitted,
            rejected: tn.tenants.len() - admitted,
            reserved_total: reserved,
            tenants_qos_met: met,
            tenants_in_violation: bad,
            violation_queries: vq,
            reclamations: trt.reclamations,
            ledger,
        })
    });
    RunResult {
        variant: exp.variant,
        services: results,
        workflows,
        meter_cpu_overhead: meter_core_seconds / node_core_seconds,
        final_weights,
        mean_pressures,
        cold_starts,
        final_gains,
        horizon: exp.horizon,
        wasted_prewarms,
        failed_switches,
        multinode,
        tenancy,
    }
}
