//! Multi-tenant runtime state and the vendor's control tick.
//!
//! Tenant services are lowered into ordinary foreground [`ServiceRt`]
//! rows at setup (each runs its own controller), so the only genuinely
//! new machinery here is the vendor side: watermark-based capacity
//! reclamation over the per-service container caps, and the telemetry
//! that records what the vendor saw and did.
//!
//! [`ServiceRt`]: super::world::ServiceRt

use super::{Ev, SimWorld};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::{TelemetryEvent, TelemetrySink, VendorSampleRecord};
use amoeba_tenancy::{AdmissionDecision, ReclamationConfig};
use amoeba_workload::{DemandVector, MicroserviceSpec};

/// Ceiling on endogenous pressure readings. The contention surfaces are
/// profiled up to 0.9; capping just above keeps the lookup in range
/// while still signalling saturation.
pub(crate) const PRESSURE_CAP: f64 = 0.95;

/// Mutable tenancy bookkeeping, present only when a non-no-op
/// [`TenancySetup`] is attached. `None` runs the legacy
/// single-maintainer path bit-identically.
///
/// [`TenancySetup`]: amoeba_tenancy::TenancySetup
pub(crate) struct TenancyRt {
    /// Admission outcome per submitted tenant, in fleet order.
    pub(crate) decisions: Vec<AdmissionDecision>,
    /// Runtime service index per tenant (`None` = rejected).
    pub(crate) svc: Vec<Option<usize>>,
    /// Derive measured pressure from pool occupancy.
    pub(crate) endogenous: bool,
    /// Vendor reclamation watermarks.
    pub(crate) reclamation: ReclamationConfig,
    /// Vendor control-loop period.
    pub(crate) vendor_tick: SimDuration,
    /// Whether tenant caps are currently throttled.
    pub(crate) throttled: bool,
    /// Throttle activations over the run.
    pub(crate) reclamations: u64,
    /// The dedicated service injected pressure-spike traffic lands on
    /// in tenancy mode (registered after the meters).
    pub(crate) interference_sid: Option<amoeba_platform::ServiceId>,
}

/// The synthetic service chaos pressure-spike traffic executes as in
/// tenancy mode: a mixed cpu/io/net demand so a spike pressures every
/// metered resource, and a QoS target nobody accounts against.
pub(crate) fn interference_spec() -> MicroserviceSpec {
    MicroserviceSpec {
        name: "chaos-interference".to_string(),
        demand: DemandVector {
            cpu_s: 0.050,
            mem_mb: 128.0,
            io_mb: 10.0,
            net_mb: 10.0,
        },
        qos_target_s: 10.0,
        qos_percentile: 0.95,
        peak_qps: 50.0,
        container_mem_mb: 256.0,
    }
}

/// One vendor control period elapsed: read pool occupancy, step the
/// reclamation state machine (throttling or restoring every admitted
/// tenant's container cap), record the sample, and re-arm.
pub(crate) fn on_vendor_tick<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        serverless,
        services,
        tenancy,
        queue,
        horizon_t,
        ..
    } = world;
    let Some(trt) = tenancy.as_mut() else {
        return;
    };
    let util = serverless.utilization();
    let peak = util[0].max(util[1]).max(util[2]);
    let was = trt.throttled;
    trt.throttled = trt.reclamation.step(was, peak);
    if trt.throttled != was {
        let cap = trt.throttled.then_some(trt.reclamation.throttled_cap);
        if trt.throttled {
            trt.reclamations += 1;
        }
        for idx in trt.svc.iter().flatten() {
            serverless.set_tenant_cap(services[*idx].sid, cap);
        }
    }
    if sink.enabled() {
        sink.record(TelemetryEvent::VendorSample(VendorSampleRecord {
            t: now,
            pool_util: util,
            containers: serverless.total_containers() as u64,
            throttled: trt.throttled,
        }));
    }
    let next = now + trt.vendor_tick;
    if next < *horizon_t {
        queue.push(next, Ev::VendorTick);
    }
}
