//! The multi-node fabric: remote node platforms, placement scheduling
//! and cross-node accounting.
//!
//! Node 0 — the user-facing node — lives directly on [`SimWorld`]
//! (`serverless`/`iaas`), so single-node runs never touch this module
//! and stay bit-identical to the legacy kernel. When the topology has
//! more than one node, a [`Fabric`] carries the remote nodes' platform
//! pairs, the per-service home assignment and the scheduler, and two
//! extra calendar events route work across nodes:
//!
//! * [`Ev::NodePlatform`] — platform-internal progress on a remote
//!   node (the remote twin of [`Ev::Platform`]);
//! * [`Ev::RemoteSubmit`] — a query landing on a remote node after its
//!   wire delay.
//!
//! Switch-protocol acks (`PrewarmReady` & co.) are service-keyed and
//! node-agnostic, so remote nodes push them onto the main effect bus
//! and the single-node switching handlers work unchanged — the
//! engine's home map routes the resulting actions back to the right
//! node through [`FabricCommands`].

use super::effects::EffectBus;
use super::{completions, Ev, Experiment, SimWorld};
use crate::engine::{PlatformCommands, RouteTarget};
use amoeba_platform::{
    fleet_max_utilization, fleet_mean_utilization, ClusterEvent, Effect, IaasPlatform, NodeId,
    Query, Scheduler, ServerlessPlatform, ServiceId, TargetId, TargetMode, TopologyConfig,
};
use amoeba_sim::{EventQueue, SimDuration, SimRng, SimTime};
use amoeba_telemetry::TelemetrySink;

/// Serverless max-utilization above which an Amoeba home node spills
/// new serverless arrivals to the least-loaded peer.
pub(crate) const SPILL_THRESHOLD: f64 = 0.85;

/// The platform pair of one remote node. Node 0's pair lives directly
/// on [`SimWorld`] so the chaos, metering and monitor paths stay
/// single-node.
pub(crate) struct NodeRt {
    pub(crate) serverless: ServerlessPlatform,
    pub(crate) iaas: IaasPlatform,
}

/// Multi-node run state: remote platforms, placement and counters.
/// Present on [`SimWorld`] only when the topology has more than one
/// node.
pub(crate) struct Fabric {
    /// Remote nodes: `nodes[i]` is `NodeId(i + 1)`.
    pub(crate) nodes: Vec<NodeRt>,
    pub(crate) scheduler: Scheduler,
    pub(crate) topology: TopologyConfig,
    /// Home node per service index.
    pub(crate) home: Vec<NodeId>,
    /// User queries placed on each node (by executing node).
    pub(crate) node_submitted: Vec<u64>,
    /// User queries completed on each node.
    pub(crate) node_completed: Vec<u64>,
    /// User queries lost to injected faults on each node.
    pub(crate) node_failed: Vec<u64>,
    /// Queries a node received spilled off another node's home.
    pub(crate) node_spills: Vec<u64>,
    /// Total cross-node spills.
    pub(crate) spill_total: u64,
}

impl Fabric {
    /// Total nodes in the topology (remote nodes plus node 0).
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len() + 1
    }

    /// The platform pair of a remote node. Node 0 lives on `SimWorld`.
    pub(crate) fn node_mut(&mut self, node: NodeId) -> &mut NodeRt {
        debug_assert_ne!(node, NodeId::ZERO, "node 0 lives on SimWorld");
        &mut self.nodes[node.index() - 1]
    }

    /// Max per-resource utilization of one node's serverless pool.
    fn pool_pressure(&self, node: NodeId, node0: &ServerlessPlatform) -> f64 {
        let u = if node == NodeId::ZERO {
            node0.utilization()
        } else {
            self.nodes[node.index() - 1].serverless.utilization()
        };
        u.iter().fold(0.0, |a, &b| f64::max(a, b))
    }

    /// The node with the calmest serverless pool, optionally excluding
    /// one; ties break toward the lowest node id.
    fn least_loaded(&self, exclude: Option<NodeId>, node0: &ServerlessPlatform) -> NodeId {
        let mut best = None;
        for i in 0..self.node_count() {
            let node = NodeId::new(i);
            if exclude == Some(node) {
                continue;
            }
            let p = self.pool_pressure(node, node0);
            if best.is_none_or(|(_, bp)| p < bp) {
                best = Some((node, p));
            }
        }
        best.map(|(n, _)| n).unwrap_or(NodeId::ZERO)
    }

    /// Fleet-wide mean and max serverless utilization (node 0 + remote).
    pub(crate) fn fleet_utilization(&self, node0: &ServerlessPlatform) -> ([f64; 3], f64) {
        let pools = std::iter::once(node0).chain(self.nodes.iter().map(|n| &n.serverless));
        let mean = fleet_mean_utilization(pools.clone());
        let max = fleet_max_utilization(pools);
        (mean, max)
    }

    /// Place one arriving user query: which node executes it, and was
    /// that a spill off its home node? Updates the per-node counters.
    pub(crate) fn place(
        &mut self,
        idx: usize,
        route: RouteTarget,
        node0: &ServerlessPlatform,
    ) -> (NodeId, bool) {
        let home = self.home[idx];
        let exec = match self.scheduler {
            // Amoeba switches at the home node; only serverless
            // arrivals spill, and only when the home pool saturates
            // and a calmer peer exists.
            Scheduler::AmoebaPerNode => {
                if route == RouteTarget::Iaas || self.node_count() == 1 {
                    home
                } else {
                    let p = self.pool_pressure(home, node0);
                    if p > SPILL_THRESHOLD {
                        let alt = self.least_loaded(Some(home), node0);
                        if self.pool_pressure(alt, node0) < p {
                            alt
                        } else {
                            home
                        }
                    } else {
                        home
                    }
                }
            }
            // NOAH-style: every query chases the calmest pool, RTT be
            // damned.
            Scheduler::Noah => self.least_loaded(None, node0),
            // Static contention-aware assignment: the home map is the
            // whole policy.
            Scheduler::EdgeAware => home,
        };
        let spill = exec != home;
        if spill {
            self.node_spills[exec.index()] += 1;
            self.spill_total += 1;
        }
        self.node_submitted[exec.index()] += 1;
        (exec, spill)
    }

    /// One user query completed on `node`.
    pub(crate) fn note_completed(&mut self, node: NodeId) {
        self.node_completed[node.index()] += 1;
    }

    /// One user query was dropped by an injected fault on `node`.
    pub(crate) fn note_failed(&mut self, node: NodeId) {
        self.node_failed[node.index()] += 1;
    }

    /// Deliver a platform-internal event to a remote node's pair.
    fn handle(
        &mut self,
        node: NodeId,
        event: ClusterEvent,
        now: SimTime,
        platform_rng: &mut SimRng,
        iaas_rng: &mut SimRng,
    ) -> Vec<Effect> {
        let rt = self.node_mut(node);
        match event {
            ClusterEvent::ColdStartDone { .. }
            | ClusterEvent::ServerlessExecDone { .. }
            | ClusterEvent::ContainerExpire { .. } => {
                rt.serverless.handle(event, now, platform_rng)
            }
            ClusterEvent::VmBootDone { .. } | ClusterEvent::IaasExecDone { .. } => {
                rt.iaas.handle(event, now, iaas_rng)
            }
        }
    }

    /// Submit a query to a remote node on the given route.
    fn submit(
        &mut self,
        node: NodeId,
        query: Query,
        route: RouteTarget,
        now: SimTime,
        platform_rng: &mut SimRng,
        iaas_rng: &mut SimRng,
    ) -> Vec<Effect> {
        let rt = self.node_mut(node);
        match route {
            RouteTarget::Serverless => {
                rt.serverless.resume_service(query.service);
                rt.serverless.submit(query, now, platform_rng)
            }
            RouteTarget::Iaas => rt.iaas.submit(query, now, iaas_rng),
        }
    }
}

/// Contention-aware static homes (the edge-placement baseline):
/// services in descending order of dominant normalized demand, each
/// greedily assigned to the node where the projected per-resource load
/// vector peaks lowest. `demands[i]` is service `i`'s peak demand in
/// `[core·s/s, disk MB/s, NIC MB/s]`; `base_caps` the unscaled node
/// capacity on the same axes.
pub(crate) fn edge_aware_homes(
    demands: &[[f64; 3]],
    topology: &TopologyConfig,
    base_caps: [f64; 3],
) -> Vec<NodeId> {
    let n = topology.node_count();
    let mut order: Vec<usize> = (0..demands.len()).collect();
    let dominant = |d: &[f64; 3]| {
        (0..3)
            .map(|r| d[r] / base_caps[r].max(1e-12))
            .fold(0.0, f64::max)
    };
    order.sort_by(|&a, &b| {
        dominant(&demands[b])
            .partial_cmp(&dominant(&demands[a]))
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut load = vec![[0.0f64; 3]; n];
    let mut homes = vec![NodeId::ZERO; demands.len()];
    for idx in order {
        let mut best = (0usize, f64::INFINITY);
        for (node, node_load) in load.iter().enumerate() {
            let scale = topology.node_scales[node];
            let peak = (0..3)
                .map(|r| (node_load[r] + demands[idx][r]) / (base_caps[r] * scale).max(1e-12))
                .fold(0.0, f64::max);
            if peak < best.1 {
                best = (node, peak);
            }
        }
        for r in 0..3 {
            load[best.0][r] += demands[idx][r];
        }
        homes[idx] = NodeId::new(best.0);
    }
    homes
}

/// Apply one batch of remote-node effects: schedules return to the
/// calendar as [`Ev::NodePlatform`], completions are counted and
/// accounted, and switch-protocol acks join the main effect bus (the
/// single-node switching handlers are node-agnostic).
pub(crate) fn absorb<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    node: NodeId,
    effects: Vec<Effect>,
    now: SimTime,
    sink: &mut S,
) {
    for e in effects {
        match e {
            Effect::Schedule { after, event } => {
                world
                    .queue
                    .push(now + after, Ev::NodePlatform { node, event });
            }
            Effect::Completed(outcome) => {
                if !outcome.query.id.is_shadow() {
                    if let Some(f) = world.fabric.as_mut() {
                        f.note_completed(node);
                    }
                }
                completions::on_completed(exp, world, outcome, now, sink);
            }
            ack => world.bus.extend([ack]),
        }
    }
}

/// A remote node's platform pair made progress.
pub(crate) fn on_node_platform<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    node: NodeId,
    event: ClusterEvent,
    now: SimTime,
    sink: &mut S,
) {
    let eff = {
        let SimWorld {
            fabric,
            platform_rng,
            iaas_rng,
            ..
        } = world;
        match fabric.as_mut() {
            Some(f) => f.handle(node, event, now, platform_rng, iaas_rng),
            None => return,
        }
    };
    absorb(exp, world, node, eff, now, sink);
}

/// A query lands on a remote node after its wire delay.
pub(crate) fn on_remote_submit<S: TelemetrySink + ?Sized>(
    exp: &Experiment,
    world: &mut SimWorld,
    node: NodeId,
    query: Query,
    route: RouteTarget,
    now: SimTime,
    sink: &mut S,
) {
    let eff = {
        let SimWorld {
            fabric,
            platform_rng,
            iaas_rng,
            ..
        } = world;
        match fabric.as_mut() {
            Some(f) => f.submit(node, query, route, now, platform_rng, iaas_rng),
            None => return,
        }
    };
    absorb(exp, world, node, eff, now, sink);
}

/// The engine's command surface over the whole fleet: node-0 targets
/// hit [`SimWorld`]'s platforms exactly as the legacy adapter would,
/// remote targets hit their node's pair with schedules rerouted to
/// [`Ev::NodePlatform`] and acks onto the shared bus.
pub(crate) struct FabricCommands<'a> {
    pub(crate) serverless: &'a mut ServerlessPlatform,
    pub(crate) iaas: &'a mut IaasPlatform,
    pub(crate) fabric: &'a mut Fabric,
    pub(crate) queue: &'a mut EventQueue<Ev>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) bus: &'a mut EffectBus,
}

impl FabricCommands<'_> {
    fn route_effects(&mut self, node: NodeId, eff: Vec<Effect>, now: SimTime) {
        if node == NodeId::ZERO {
            self.bus.extend(eff);
            return;
        }
        for e in eff {
            match e {
                Effect::Schedule { after, event } => {
                    self.queue
                        .push(now + after, Ev::NodePlatform { node, event });
                }
                ack => self.bus.extend([ack]),
            }
        }
    }
}

impl PlatformCommands for FabricCommands<'_> {
    fn prepare(&mut self, service: ServiceId, target: TargetId, count: u32, now: SimTime) {
        let eff = match (target.node == NodeId::ZERO, target.mode) {
            (true, TargetMode::Serverless) => {
                self.serverless.prewarm(service, count, now, self.rng)
            }
            (true, TargetMode::Iaas) => self.iaas.activate(service, now),
            (false, TargetMode::Serverless) => self
                .fabric
                .node_mut(target.node)
                .serverless
                .prewarm(service, count, now, self.rng),
            (false, TargetMode::Iaas) => self
                .fabric
                .node_mut(target.node)
                .iaas
                .activate(service, now),
        };
        self.route_effects(target.node, eff, now);
    }

    fn release(&mut self, service: ServiceId, target: TargetId, now: SimTime) {
        let eff = match (target.node == NodeId::ZERO, target.mode) {
            (true, TargetMode::Serverless) => {
                self.serverless.release_service(service);
                Vec::new()
            }
            (true, TargetMode::Iaas) => self.iaas.release(service, now),
            (false, TargetMode::Serverless) => {
                self.fabric
                    .node_mut(target.node)
                    .serverless
                    .release_service(service);
                Vec::new()
            }
            (false, TargetMode::Iaas) => {
                self.fabric.node_mut(target.node).iaas.release(service, now)
            }
        };
        self.route_effects(target.node, eff, now);
    }
}

/// The wire delay a query pays to reach its executing node: spills
/// cross the inter-node link, home-node traffic is local.
pub(crate) fn wire_delay(topology: &TopologyConfig, spill: bool) -> SimDuration {
    if spill {
        SimDuration::from_secs_f64(topology.rtt_s)
    } else {
        SimDuration::ZERO
    }
}
