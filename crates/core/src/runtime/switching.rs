//! The switch protocol's effect-side handlers (§V-B): prewarm and VM
//! boot acknowledgements flip the router through the engine, and the
//! drained ack (or its watchdog) reclaims the old side.

use super::effects::EffectBus;
use super::fabric::{Fabric, FabricCommands};
use super::world::SimPlatforms;
use super::{Ev, SimWorld};
use crate::controller::DeployMode;
use crate::engine::{dispatch_actions, EngineAction, Legacy};
use amoeba_platform::{IaasPlatform, ServerlessPlatform, ServiceId, TargetMode};
use amoeba_sim::{EventQueue, SimDuration, SimRng, SimTime};
use amoeba_telemetry::{
    FaultKind, FaultRecord, SwitchPhase, SwitchRecord, TelemetryEvent, TelemetrySink,
};

/// How long the runtime waits for the old IaaS side's `IaasDrained`
/// ack after a switch completes before forcibly reclaiming the group.
/// The §V shutdown step must terminate even if completions are lost.
pub(crate) const DRAIN_TIMEOUT_S: f64 = 60.0;

/// Arm the drain watchdog for every IaaS-target release among
/// `actions`: if the group's `IaasDrained` ack never arrives, the
/// first control tick past the deadline reclaims it forcibly.
pub(crate) fn note_vm_releases(
    actions: &[EngineAction],
    now: SimTime,
    drain_deadline: &mut [Option<SimTime>],
) {
    for a in actions {
        if let EngineAction::Release { service, target } = a {
            if target.mode != TargetMode::Iaas {
                continue;
            }
            let idx = service.raw() as usize;
            if idx < drain_deadline.len() {
                drain_deadline[idx] = Some(now + SimDuration::from_secs_f64(DRAIN_TIMEOUT_S));
            }
        }
    }
}

/// Carry one batch of engine actions to the platforms: arm the drain
/// watchdog for releases, then dispatch through [`PlatformCommands`]
/// with responses landing on the effect bus. This is the *only* path
/// from an engine decision to platform state.
///
/// [`PlatformCommands`]: crate::engine::PlatformCommands
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_engine_actions(
    actions: Vec<EngineAction>,
    now: SimTime,
    serverless: &mut ServerlessPlatform,
    iaas: &mut IaasPlatform,
    fabric: Option<&mut Fabric>,
    queue: &mut EventQueue<Ev>,
    platform_rng: &mut SimRng,
    bus: &mut EffectBus,
    drain_deadline: &mut [Option<SimTime>],
) {
    note_vm_releases(&actions, now, drain_deadline);
    match fabric {
        None => dispatch_actions(
            actions,
            now,
            &mut Legacy(SimPlatforms {
                serverless,
                iaas,
                rng: platform_rng,
                effects: bus.pending_mut(),
            }),
        ),
        Some(f) => dispatch_actions(
            actions,
            now,
            &mut FabricCommands {
                serverless,
                iaas,
                fabric: f,
                queue,
                rng: platform_rng,
                bus,
            },
        ),
    }
}

/// The serverless side acked a prewarm: unless chaos eats the ack on
/// the wire, the engine completes the switch-down and the old IaaS
/// side is released (watchdogged).
pub(crate) fn on_prewarm_ready<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    service: ServiceId,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        services,
        controller,
        engine,
        serverless,
        iaas,
        platform_rng,
        bus,
        queue,
        chaos,
        fabric,
        drain_deadline,
        ..
    } = world;
    if (service.raw() as usize) < services.len() {
        let idx = service.raw() as usize;
        // Chaos can lose the ack on the wire; the
        // engine's deadline retry recovers it.
        if let Some(ch) = chaos.as_mut() {
            if engine.in_transition(service) && ch.injector.drop_prewarm_ack() {
                if sink.enabled() {
                    sink.record(TelemetryEvent::Fault(FaultRecord {
                        t: now,
                        kind: FaultKind::AckDropped,
                        service: Some(idx),
                        queries_displaced: 0,
                        queries_dropped: 0,
                    }));
                }
                return;
            }
        }
        let load = controller.estimated_load(idx, now);
        let actions = engine.on_ready(service, DeployMode::Serverless, load, now, sink);
        apply_engine_actions(
            actions,
            now,
            serverless,
            iaas,
            fabric.as_mut(),
            queue,
            platform_rng,
            bus,
            drain_deadline,
        );
    }
}

/// The IaaS side acked its VM group boot: the engine completes the
/// switch-up and releases the serverless pool.
pub(crate) fn on_vm_group_ready<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    service: ServiceId,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        services,
        controller,
        engine,
        serverless,
        iaas,
        platform_rng,
        bus,
        queue,
        fabric,
        drain_deadline,
        ..
    } = world;
    if (service.raw() as usize) < services.len() {
        let idx = service.raw() as usize;
        let load = controller.estimated_load(idx, now);
        let actions = engine.on_ready(service, DeployMode::Iaas, load, now, sink);
        apply_engine_actions(
            actions,
            now,
            serverless,
            iaas,
            fabric.as_mut(),
            queue,
            platform_rng,
            bus,
            drain_deadline,
        );
    }
}

/// The old IaaS side has finished its in-flight queries: the span's
/// terminal step. Disarms the drain watchdog.
pub(crate) fn on_iaas_drained<S: TelemetrySink + ?Sized>(
    world: &mut SimWorld,
    service: ServiceId,
    now: SimTime,
    sink: &mut S,
) {
    let SimWorld {
        services,
        controller,
        drain_deadline,
        ..
    } = world;
    // Resolve the service index once; everything below is in bounds by
    // construction (meters and other unmanaged ids fall out here).
    let idx = service.raw() as usize;
    if idx >= services.len() {
        return;
    }
    drain_deadline[idx] = None;
    if sink.enabled() {
        sink.record(TelemetryEvent::Switch(SwitchRecord {
            t: now,
            service: idx,
            from: DeployMode::Iaas.into(),
            to: DeployMode::Serverless.into(),
            phase: SwitchPhase::Drained,
            prewarm_count: 0,
            load_qps: controller.estimated_load(idx, now),
        }));
    }
}
