//! The `multitenant` extension report (beyond the paper): populate the
//! shared serverless pool with a fleet of tenant services whose own
//! diurnal load *generates* the contention signal Amoeba's meters read,
//! and sweep the vendor's overbooking ratio. Each admitted tenant runs
//! its own Amoeba controller (per-tenant IaaS↔serverless switching);
//! the static baseline pins every tenant on dedicated IaaS capacity
//! (Nameko). At the calibrated ratio, per-tenant Amoeba must hold the
//! number of tenants in QoS violation at or below the static baseline
//! while costing the vendor less in allocated resources; across the
//! ratio sweep the report tracks the herding/oscillation signal — the
//! fraction of switch requests that fire in lock-step with another
//! tenant's.

use crate::report::{row, Report};
use amoeba_core::{Experiment, RunResult, SystemVariant};
use amoeba_json::json;
use amoeba_sim::SimDuration;
use amoeba_telemetry::{SwitchPhase, Trace};
use amoeba_tenancy::{FleetBuilder, TenancySetup};

/// Overbooking ratios swept by the full report: reserved-share sum
/// allowed up to `ratio` × pool capacity.
pub const RATIOS: [f64; 4] = [1.0, 1.5, 2.0, 3.0];

/// The ratio the acceptance bar is asserted at: high enough that
/// overbooking pays (more tenants admitted than dedicated capacity
/// could hold), low enough that the emergent contention stays inside
/// what per-tenant switching can absorb.
pub const CALIBRATED_RATIO: f64 = 1.5;

/// Tenant fleet size for the full report.
pub const FLEET: usize = 16;

/// Two switch requests closer than this (by *different* tenants) count
/// as a co-flip — the herding signal. Kept below the control period so
/// only same-tick lock-step flips are counted, not adjacent ticks.
const HERDING_WINDOW_S: f64 = 2.0;

/// Control-phase jitter used by the "Amoeba+jit" rows: each tenant's
/// decision fires at its own offset, drawn once per run from `[0,
/// 0.5 × control period)` out of the tenant's RNG stream. All tenants
/// still decide once per period; only the *phase* is decorrelated.
pub const JITTER_FRAC: f64 = 0.5;

/// One cell: a tenant fleet built from `seed`, admitted at `ratio`,
/// driven through a full day with endogenous pressure on. `jitter` is
/// the control-phase jitter fraction (0.0 = the default synchronous
/// control tick, byte-identical to the pre-jitter runtime).
pub fn multitenant_cell(
    variant: SystemVariant,
    ratio: f64,
    tenants: usize,
    day_s: f64,
    seed: u64,
    jitter: f64,
) -> (RunResult, Trace) {
    let fleet = FleetBuilder::new(seed).tenants(tenants).build();
    Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
        .tenancy(TenancySetup::new(fleet, ratio))
        .control_jitter(jitter)
        .build()
        .run_traced()
}

/// Fraction of switch `Requested` steps fired within the herding
/// window (2 s) of another service's request, plus the raw request
/// count: the synchrony half of the herding/oscillation story.
pub fn co_flip_fraction(trace: &Trace) -> (f64, usize) {
    let reqs: Vec<(usize, f64)> = trace
        .switch_events()
        .filter(|e| e.phase == SwitchPhase::Requested)
        .map(|e| (e.service, e.t.as_secs_f64()))
        .collect();
    if reqs.is_empty() {
        return (0.0, 0);
    }
    let co = reqs
        .iter()
        .filter(|&&(svc, t)| {
            reqs.iter()
                .any(|&(s2, t2)| s2 != svc && (t2 - t).abs() <= HERDING_WINDOW_S)
        })
        .count();
    (co as f64 / reqs.len() as f64, reqs.len())
}

/// Multi-tenant overbooking sweep: admission, aggregate QoS, herding
/// and the vendor's books for per-tenant Amoeba vs the static
/// dedicated-capacity baseline at each overbooking ratio.
pub fn multitenant(day_s: f64, seed: u64, tenants: usize, ratios: &[f64]) -> Report {
    let mut r = Report::new(
        "multitenant",
        "Multi-tenant overbooking: per-tenant Amoeba vs static allocation",
    );

    // The static baseline never switches, so its variant is Nameko:
    // every admitted tenant holds dedicated IaaS capacity all day.
    // "Amoeba+jit" is Amoeba with per-tenant control-phase jitter —
    // the de-herding knob, measured by the same herd column.
    let variants = [
        (SystemVariant::Amoeba, "Amoeba", 0.0),
        (SystemVariant::Amoeba, "Amoeba+jit", JITTER_FRAC),
        (SystemVariant::Nameko, "static", 0.0),
    ];
    let jobs: Vec<(f64, SystemVariant, &str, f64)> = ratios
        .iter()
        .flat_map(|&q| variants.iter().map(move |&(v, l, j)| (q, v, l, j)))
        .collect();
    let runs: Vec<(RunResult, Trace)> = std::thread::scope(|scope| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(q, v, _, j)| {
                scope.spawn(move || multitenant_cell(v, q, tenants, day_s, seed, j))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    r.line(format!(
        "{tenants}-tenant fleet (seed {seed}) on one shared pool, \
         {day_s:.0} s day, endogenous pressure; \
         admission reserves Σ shares ≤ ratio:",
    ));
    let cw = [6, 8, 8, 6, 7, 6, 8, 9, 9, 9];
    r.line(row(
        &[
            "ratio".into(),
            "system".into(),
            "adm/rej".into(),
            "viol".into(),
            "viol_q".into(),
            "herd".into(),
            "sw/ten".into(),
            "revenue".into(),
            "cost".into(),
            "profit".into(),
        ],
        &cw,
    ));

    let mut cells = Vec::new();
    for ((q, _, label, jitter), (run, trace)) in jobs.iter().zip(&runs) {
        let tn = run
            .tenancy
            .as_ref()
            .expect("tenancy summary present on every cell");
        let (herd, flips) = co_flip_fraction(trace);
        let per_tenant = flips as f64 / tn.admitted.max(1) as f64;
        r.line(row(
            &[
                format!("{q:.1}"),
                (*label).into(),
                format!("{}/{}", tn.admitted, tn.rejected),
                tn.tenants_in_violation.to_string(),
                tn.violation_queries.to_string(),
                format!("{herd:.2}"),
                format!("{per_tenant:.1}"),
                format!("{:.4}", tn.ledger.revenue()),
                format!("{:.4}", tn.ledger.vendor_cost),
                format!("{:.4}", tn.ledger.profit()),
            ],
            &cw,
        ));
        cells.push(json!({
            "ratio": *q,
            "system": *label,
            "jitter": *jitter,
            "admitted": (tn.admitted as u64),
            "rejected": (tn.rejected as u64),
            "reserved_total": tn.reserved_total,
            "tenants_in_violation": (tn.tenants_in_violation as u64),
            "violation_queries": tn.violation_queries,
            "herding": herd,
            "switches": (flips as u64),
            "reclamations": tn.reclamations,
            "revenue": tn.ledger.revenue(),
            "vendor_cost": tn.ledger.vendor_cost,
            "credits": tn.ledger.credits(),
            "profit": tn.ledger.profit(),
        }));
    }
    r.line("");
    r.line(
        "viol = admitted tenants missing their QoS percentile; herd = \
         fraction of switch requests within 2 s of another tenant's \
         (lock-step herding); Amoeba+jit spreads each tenant's control \
         phase over half a period to break that lock-step; cost = \
         vendor's allocated-resource cost at list price; profit = \
         revenue - cost - SLO credits",
    );
    r.json = json!({
        "tenants": (tenants as u64),
        "seed": seed,
        "day_s": day_s,
        "calibrated_ratio": CALIBRATED_RATIO,
        "cells": cells,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::DEFAULT_SEED;

    /// Shorter than the report default so the suite stays fast; one
    /// full diurnal cycle still fits.
    const TEST_DAY_S: f64 = 240.0;

    #[test]
    fn report_meets_the_acceptance_bar() {
        let r = multitenant(TEST_DAY_S, DEFAULT_SEED, FLEET, &RATIOS);
        let cells = r.json["cells"].as_array().unwrap();
        assert_eq!(cells.len(), RATIOS.len() * 3);
        let get = |ratio: f64, system: &str| {
            cells
                .iter()
                .find(|c| c["ratio"].as_f64() == Some(ratio) && c["system"] == system)
                .unwrap_or_else(|| panic!("missing cell {ratio}/{system}"))
        };
        // The herding signal is measured across the whole sweep, for
        // both the synchronous and the jittered controller.
        for &q in &RATIOS {
            assert!(get(q, "Amoeba")["herding"].as_f64().is_some());
            assert!(get(q, "Amoeba+jit")["herding"].as_f64().is_some());
        }
        // Phase jitter must not unleash herding: summed over the
        // sweep, the jittered controller co-flips no more than the
        // synchronous one (it exists to break lock-step).
        let herd_sum = |system: &str| -> f64 {
            RATIOS
                .iter()
                .map(|&q| get(q, system)["herding"].as_f64().unwrap())
                .sum()
        };
        assert!(
            herd_sum("Amoeba+jit") <= herd_sum("Amoeba") + 1e-9,
            "jitter increased herding: {} vs {}",
            herd_sum("Amoeba+jit"),
            herd_sum("Amoeba")
        );
        // Overbooking must actually overbook: the top ratio admits more
        // tenants than the no-overbooking baseline.
        assert!(
            get(RATIOS[RATIOS.len() - 1], "Amoeba")["admitted"].as_u64()
                > get(RATIOS[0], "Amoeba")["admitted"].as_u64(),
            "ratio sweep never changed admission"
        );
        // The acceptance bar, at the calibrated ratio: per-tenant
        // Amoeba keeps no more tenants in violation than the static
        // dedicated-capacity baseline, at lower vendor cost.
        let a = get(CALIBRATED_RATIO, "Amoeba");
        let s = get(CALIBRATED_RATIO, "static");
        assert!(
            a["tenants_in_violation"].as_u64() <= s["tenants_in_violation"].as_u64(),
            "QoS bar: {a} vs {s}"
        );
        assert!(
            a["vendor_cost"].as_f64() < s["vendor_cost"].as_f64(),
            "cost bar: {a} vs {s}"
        );
    }

    #[test]
    fn cells_are_deterministic() {
        let (a, ta) = multitenant_cell(SystemVariant::Amoeba, 2.0, 6, 120.0, 7, 0.0);
        let (b, tb) = multitenant_cell(SystemVariant::Amoeba, 2.0, 6, 120.0, 7, 0.0);
        assert_eq!(a.tenancy, b.tenancy);
        assert_eq!(co_flip_fraction(&ta), co_flip_fraction(&tb));
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.completed, y.completed, "{}", x.name);
        }
    }

    /// The jittered controller is deterministic too, and its arrival
    /// streams are identical to the synchronous run's: jitter offsets
    /// are drawn *after* every per-service arrival fork, so turning
    /// jitter on changes decision phases without touching the load.
    #[test]
    fn jittered_cells_are_deterministic_with_unchanged_load() {
        let (a, ta) = multitenant_cell(SystemVariant::Amoeba, 2.0, 6, 120.0, 7, JITTER_FRAC);
        let (b, tb) = multitenant_cell(SystemVariant::Amoeba, 2.0, 6, 120.0, 7, JITTER_FRAC);
        assert_eq!(a.tenancy, b.tenancy);
        assert_eq!(co_flip_fraction(&ta), co_flip_fraction(&tb));
        let (sync, _) = multitenant_cell(SystemVariant::Amoeba, 2.0, 6, 120.0, 7, 0.0);
        for (x, y) in a.services.iter().zip(&sync.services) {
            assert_eq!(x.submitted, y.submitted, "{}: jitter changed load", x.name);
        }
    }
}
