//! The `multinode` extension report (beyond the paper): run the §VII-A
//! float scenario on a 4-node geo-distributed topology and compare
//! three placement schedulers built on the placement-target API —
//! Amoeba-per-node (each service switches IaaS↔serverless on its home
//! node, spilling serverless work to a calmer peer when the home pool
//! saturates), NOAH-style least-loaded serverless scheduling, and a
//! contention-aware static edge placement. Amoeba's per-node switching
//! should hold QoS violations at or below both static baselines while
//! consuming no more CPU.

use crate::report::{row, Report};
use crate::scenarios::standard_scenario;
use amoeba_core::{Experiment, RunResult, SystemVariant};
use amoeba_json::json;
use amoeba_platform::Scheduler;
use amoeba_sim::SimDuration;
use amoeba_workload::benchmarks;

/// The 4-node topology: a full-size home node plus three smaller
/// peers, 40 ms RTT apart (a regional metro fabric).
const NODE_SCALES: [f64; 4] = [1.0, 0.75, 0.75, 0.5];

/// Inter-node round-trip latency, seconds.
const RTT_S: f64 = 0.04;

/// The schedulers under comparison, with the system variant each runs
/// on: Amoeba-per-node keeps the switching controller; the static
/// baselines pin every service serverless (placement is their only
/// knob, as in NOAH and the edge-deployment baselines).
const SCHEDULERS: [(Scheduler, SystemVariant); 3] = [
    (Scheduler::AmoebaPerNode, SystemVariant::Amoeba),
    (Scheduler::Noah, SystemVariant::OpenWhisk),
    (Scheduler::EdgeAware, SystemVariant::OpenWhisk),
];

fn scheduler_label(s: Scheduler) -> &'static str {
    match s {
        Scheduler::AmoebaPerNode => "Amoeba/node",
        Scheduler::Noah => "NOAH",
        Scheduler::EdgeAware => "EdgeAware",
    }
}

/// One run of the float scenario on the 4-node topology.
pub fn multinode_cell(
    scheduler: Scheduler,
    variant: SystemVariant,
    day_s: f64,
    seed: u64,
) -> RunResult {
    let mut b = Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
        .services(standard_scenario(benchmarks::float(), day_s))
        .nodes(NODE_SCALES.len())
        .inter_node_latency(SimDuration::from_secs_f64(RTT_S))
        .scheduler(scheduler);
    for (i, &scale) in NODE_SCALES.iter().enumerate().skip(1) {
        b = b.node_capacity(i, scale);
    }
    b.build().run()
}

/// Per-scheduler aggregates over the comparison seeds.
#[derive(Default)]
struct CellTotals {
    violations_fg: u64,
    p99_s_sum: f64,
    p99_runs: u64,
    consumed_cpu_s: f64,
    spills: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    node_submitted: Vec<u64>,
}

/// Geo-distributed placement: QoS, consumed CPU and cross-node spill
/// behaviour of the three schedulers on the 4-node topology.
pub fn multinode(day_s: f64, seed: u64, seeds: u64) -> Report {
    let mut r = Report::new(
        "multinode",
        "Geo-distributed placement: Amoeba-per-node vs NOAH vs edge placement",
    );

    let jobs: Vec<(Scheduler, SystemVariant, u64)> = SCHEDULERS
        .iter()
        .flat_map(|&(s, v)| (0..seeds).map(move |i| (s, v, seed + i)))
        .collect();
    let runs: Vec<(Scheduler, RunResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(s, v, sd)| scope.spawn(move || multinode_cell(s, v, day_s, sd)))
            .collect();
        jobs.iter()
            .zip(handles)
            .map(|(&(s, _, _), h)| (s, h.join().unwrap()))
            .collect()
    });

    r.line(format!(
        "4-node topology (capacity scales {NODE_SCALES:?}, {:.0} ms RTT), \
         float foreground + 3 background services, {seeds} seed(s), \
         {day_s:.0} s day:",
        RTT_S * 1e3,
    ));
    let cw = [12, 10, 9, 12, 8, 18];
    r.line(row(
        &[
            "scheduler".into(),
            "viol(fg)".into(),
            "p99_s".into(),
            "cpu_cons_s".into(),
            "spills".into(),
            "per-node submits".into(),
        ],
        &cw,
    ));

    let mut cells = Vec::new();
    for &(sched, _) in &SCHEDULERS {
        let mut t = CellTotals {
            node_submitted: vec![0; NODE_SCALES.len()],
            ..CellTotals::default()
        };
        for (s, run) in runs.iter().filter(|(s, _)| *s == sched) {
            let _ = s;
            let mut run_p99 = 0.0f64;
            for svc in &run.services {
                if !svc.background {
                    let n = svc.latency.count();
                    t.violations_fg += (svc.violation_ratio() * n as f64).round() as u64;
                    let mut rec = svc.latency.clone();
                    if let Some(p99) = rec.quantile(0.99) {
                        run_p99 = run_p99.max(p99.as_secs_f64());
                    }
                }
                t.consumed_cpu_s += svc.usage.core_seconds_consumed;
            }
            t.p99_s_sum += run_p99;
            t.p99_runs += 1;
            let mn = run.multinode.as_ref().expect("multi-node run");
            t.spills += mn.spill_total;
            for (i, n) in mn.nodes.iter().enumerate() {
                t.submitted += n.submitted;
                t.completed += n.completed;
                t.failed += n.failed;
                t.node_submitted[i] += n.submitted;
            }
        }
        let p99 = t.p99_s_sum / t.p99_runs.max(1) as f64;
        r.line(row(
            &[
                scheduler_label(sched).into(),
                t.violations_fg.to_string(),
                format!("{p99:.3}"),
                format!("{:.0}", t.consumed_cpu_s),
                t.spills.to_string(),
                format!("{:?}", t.node_submitted),
            ],
            &cw,
        ));
        cells.push(json!({
            "scheduler": scheduler_label(sched),
            "violations_fg": t.violations_fg,
            "p99_s": p99,
            "consumed_cpu_s": t.consumed_cpu_s,
            "spills": t.spills,
            "submitted": t.submitted,
            "completed": t.completed,
            "failed": t.failed,
            "node_submitted": (t.node_submitted.iter().map(|&n| json!(n)).collect::<Vec<_>>()),
        }));
    }
    r.line("");
    r.line(
        "viol(fg) = foreground QoS violations; cpu_cons_s = busy \
         core-seconds across the fleet (contention-inflated); spills = \
         queries executed off their home node",
    );
    r.json = json!({
        "node_scales": (NODE_SCALES.iter().map(|&s| json!(s)).collect::<Vec<_>>()),
        "rtt_s": RTT_S,
        "seeds": seeds,
        "cells": cells,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::DEFAULT_SEED;

    /// Shorter than the report default so the suite stays fast, long
    /// enough for the diurnal peak to force switching and spills.
    const TEST_DAY_S: f64 = 240.0;

    #[test]
    fn report_meets_the_acceptance_bar() {
        let r = multinode(TEST_DAY_S, DEFAULT_SEED, 2);
        let cells = r.json["cells"].as_array().unwrap();
        assert_eq!(cells.len(), SCHEDULERS.len());
        let get = |label: &str| {
            cells
                .iter()
                .find(|c| c["scheduler"] == label)
                .unwrap_or_else(|| panic!("missing cell {label}"))
        };
        // Conservation: nothing vanishes across the fabric.
        for c in cells {
            assert_eq!(
                c["submitted"].as_u64().unwrap(),
                c["completed"].as_u64().unwrap() + c["failed"].as_u64().unwrap(),
                "{c}"
            );
        }
        // The acceptance bar: Amoeba-per-node holds QoS violations at
        // or below each static baseline at equal or lower consumed CPU.
        let amoeba = get("Amoeba/node");
        for baseline in ["NOAH", "EdgeAware"] {
            let b = get(baseline);
            assert!(
                amoeba["violations_fg"].as_u64() <= b["violations_fg"].as_u64(),
                "violations vs {baseline}: {amoeba} {b}"
            );
            assert!(
                amoeba["consumed_cpu_s"].as_f64() <= b["consumed_cpu_s"].as_f64(),
                "consumed CPU vs {baseline}: {amoeba} {b}"
            );
        }
    }

    #[test]
    fn cells_are_deterministic() {
        for (s, v) in SCHEDULERS {
            let a = multinode_cell(s, v, 120.0, 7);
            let b = multinode_cell(s, v, 120.0, 7);
            assert_eq!(a.multinode, b.multinode, "{s:?}");
            for (x, y) in a.services.iter().zip(&b.services) {
                assert_eq!(x.completed, y.completed, "{s:?} {}", x.name);
            }
        }
    }
}
