//! The experiment runner: regenerates every table and figure of the
//! paper.
//!
//! ```text
//! experiments [all|investigation|profiling|evaluation|ablations|<id>...] [--json DIR] [--smoke]
//! ```
//!
//! Known ids: table2 table3 fig2 fig3 fig4 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 overhead ablation-slowdown cost multi-tenant
//! ablation-prewarm ablation-percentile week ablation-placement trace
//! forecast resilience multinode workflow multitenant fleet.
//!
//! `--smoke` shrinks the simulated day and seed sweep (currently the
//! `multinode`, `workflow`, `multitenant` and `fleet` reports) so CI
//! can exercise the report path cheaply.

use amoeba_bench::{
    ablations, evaluation, extensions, fleet, forecast, investigation, multinode, multitenant,
    profiling, resilience, workflow, Report,
};
use amoeba_bench::{DEFAULT_DAY_S, DEFAULT_SEED};
use std::io::Write;

fn by_id(id: &str, smoke: bool) -> Option<Report> {
    let r = match id {
        "table2" => investigation::table2(),
        "table3" => investigation::table3(),
        "fig2" => investigation::fig2(DEFAULT_DAY_S, DEFAULT_SEED),
        "fig3" => investigation::fig3(DEFAULT_SEED),
        "fig4" => investigation::fig4(DEFAULT_SEED),
        "fig8" => profiling::fig8(DEFAULT_SEED),
        "fig9" => profiling::fig9(),
        "fig10" => evaluation::fig10(DEFAULT_DAY_S, DEFAULT_SEED),
        "fig11" => evaluation::fig11(DEFAULT_DAY_S, DEFAULT_SEED),
        "fig12" => evaluation::fig12(DEFAULT_DAY_S, DEFAULT_SEED),
        "fig13" => evaluation::fig13(DEFAULT_DAY_S, DEFAULT_SEED),
        "fig14" => ablations::fig14(DEFAULT_DAY_S, DEFAULT_SEED),
        "fig15" => ablations::fig15(DEFAULT_SEED),
        "fig16" => ablations::fig16(DEFAULT_DAY_S, DEFAULT_SEED),
        "overhead" => ablations::overhead(DEFAULT_DAY_S, DEFAULT_SEED),
        "ablation-slowdown" => ablations::ablation_slowdown(),
        "cost" => extensions::cost(DEFAULT_DAY_S, DEFAULT_SEED),
        "multi-tenant" => extensions::multi_tenant(DEFAULT_DAY_S, DEFAULT_SEED),
        "ablation-prewarm" => extensions::ablation_prewarm(DEFAULT_DAY_S, DEFAULT_SEED),
        "ablation-percentile" => extensions::ablation_percentile(DEFAULT_DAY_S, DEFAULT_SEED),
        "week" => extensions::week(DEFAULT_DAY_S, DEFAULT_SEED),
        "ablation-placement" => extensions::ablation_placement(DEFAULT_SEED),
        "trace" => extensions::trace_summary(DEFAULT_DAY_S, DEFAULT_SEED),
        "forecast" => forecast::forecast(DEFAULT_DAY_S, DEFAULT_SEED),
        "resilience" => resilience::resilience(DEFAULT_DAY_S, DEFAULT_SEED),
        "multinode" => {
            if smoke {
                multinode::multinode(120.0, DEFAULT_SEED, 1)
            } else {
                multinode::multinode(DEFAULT_DAY_S, DEFAULT_SEED, 2)
            }
        }
        "workflow" => {
            if smoke {
                workflow::workflow(120.0, DEFAULT_SEED, 1)
            } else {
                workflow::workflow(DEFAULT_DAY_S, DEFAULT_SEED, 2)
            }
        }
        "multitenant" => {
            if smoke {
                multitenant::multitenant(120.0, DEFAULT_SEED, 6, &[1.0, 2.0])
            } else {
                multitenant::multitenant(
                    DEFAULT_DAY_S,
                    DEFAULT_SEED,
                    multitenant::FLEET,
                    &multitenant::RATIOS,
                )
            }
        }
        "fleet" => {
            if smoke {
                fleet::fleet(24, 1.0, 90.0, &[1, 2])
            } else {
                fleet::fleet(
                    fleet::FLEET_SERVICES,
                    fleet::FLEET_DAYS,
                    fleet::FLEET_DAY_S,
                    &[1, 2, 4, 8],
                )
            }
        }
        _ => return None,
    };
    Some(r)
}

const GROUPS: &[(&str, &[&str])] = &[
    (
        "investigation",
        &["table2", "table3", "fig2", "fig3", "fig4"],
    ),
    ("profiling", &["fig8", "fig9"]),
    ("evaluation", &["fig10", "fig11", "fig12", "fig13"]),
    (
        "ablations",
        &["fig14", "fig15", "fig16", "overhead", "ablation-slowdown"],
    ),
    (
        "extensions",
        &[
            "cost",
            "multi-tenant",
            "ablation-prewarm",
            "ablation-percentile",
            "week",
            "ablation-placement",
            "trace",
            "forecast",
            "resilience",
            "multinode",
            "workflow",
            "multitenant",
            "fleet",
        ],
    ),
];

fn main() {
    let mut json_dir: Option<String> = None;
    let mut smoke = false;
    let mut targets: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_dir = it.next(),
            "--smoke" => smoke = true,
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }

    let mut ids: Vec<String> = Vec::new();
    for t in &targets {
        if t == "all" {
            for (_, group) in GROUPS {
                ids.extend(group.iter().map(|s| s.to_string()));
            }
        } else if let Some((_, group)) = GROUPS.iter().find(|(g, _)| g == t) {
            ids.extend(group.iter().map(|s| s.to_string()));
        } else {
            ids.push(t.clone());
        }
    }

    for id in ids {
        let Some(report) = by_id(&id, smoke) else {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        };
        println!("{}", report.render());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{}.json", report.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            let blob = amoeba_json::json!({
                "id": report.id,
                "title": report.title,
                "data": report.json,
            });
            writeln!(f, "{}", amoeba_json::to_string_pretty(&blob).unwrap()).expect("write json");
        }
    }
}
