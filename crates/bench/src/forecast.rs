//! The `forecast` extension report (beyond the paper): backtest the four
//! load forecasters on the Didi-shaped diurnal trace, then compare the
//! reactive controller (Amoeba) against proactive switching (Amoeba-Pro)
//! on switch-window QoS violations, time-in-mode, and resource usage.

use std::collections::BTreeMap;

use crate::report::{row, Report};
use crate::scenarios::standard_scenario;
use amoeba_core::{Experiment, RunResult, SystemVariant};
use amoeba_forecast::{
    backtest, BacktestConfig, Ewma, Forecaster, HoltLinear, HoltWintersDiurnal, Naive,
};
use amoeba_json::json;
use amoeba_sim::{SimDuration, SimTime};
use amoeba_telemetry::Trace;
use amoeba_workload::{benchmarks, DiurnalPattern, LoadTrace};

/// Switch-window pad, seconds: one switch latency (VM boot + control
/// period) on either side of a transition. A violation inside the
/// padded window is charged to that switch — it hit a query while the
/// transition was in flight, imminent, or still settling.
const WINDOW_PAD_S: f64 = 6.0;

/// The comparison replays this many Didi days per run, so the seasonal
/// forecaster has day 1 to seed before its decisions start to differ.
const DAYS: f64 = 3.0;

/// Runs averaged per variant (seeds `seed .. seed + SEEDS`): one switch
/// window holds only a handful of Poisson arrivals, so a single seed is
/// mostly luck.
const SEEDS: u64 = 3;

/// The four models under comparison, fresh.
fn models(day: SimDuration) -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(Naive::new()),
        Box::new(Ewma::default()),
        Box::new(HoltLinear::default()),
        Box::new(HoltWintersDiurnal::new(day, 240)),
    ]
}

/// QoS violations landing inside a padded switch window of the
/// foreground service — the misses proactive switching targets.
fn switch_window_violations(trace: &Trace, service: usize) -> u64 {
    let pad = SimDuration::from_secs_f64(WINDOW_PAD_S);
    let windows: Vec<(SimTime, SimTime)> = trace
        .switch_spans()
        .into_iter()
        .filter(|s| s.service == service)
        .map(|s| {
            let settle = s.drained.or(s.flip).or(s.aborted).unwrap_or(s.requested);
            (s.requested - pad, settle + pad)
        })
        .collect();
    trace
        .violations()
        .filter(|v| v.service == service)
        .filter(|v| windows.iter().any(|&(a, b)| a <= v.t && v.t <= b))
        .count() as u64
}

/// Score a Pro run's own forecasts against the load the controller later
/// measured on the tick grid — filling in the `realized_qps` an exporter
/// would. Returns `(samples, mape, coverage)`.
fn realized_accuracy(trace: &Trace) -> (u64, f64, f64) {
    let loads: BTreeMap<u64, f64> = trace
        .ticks()
        .map(|t| (t.t.as_micros(), t.load_qps))
        .collect();
    let peak = trace.ticks().map(|t| t.load_qps).fold(0.0f64, f64::max);
    let floor = (peak * 1e-3).max(1e-9);
    let (mut n, mut ape, mut covered) = (0u64, 0.0f64, 0u64);
    for f in trace.forecasts() {
        let at = f.t + SimDuration::from_secs_f64(f.horizon_s);
        let Some(&realized) = loads.get(&at.as_micros()) else {
            continue;
        };
        n += 1;
        ape += (f.mean_qps - realized).abs() / realized.abs().max(floor);
        if f.lo_qps <= realized && realized <= f.hi_qps {
            covered += 1;
        }
    }
    if n == 0 {
        return (0, 0.0, 0.0);
    }
    (n, ape / n as f64, covered as f64 / n as f64)
}

/// Per-variant aggregates over the comparison seeds.
#[derive(Default)]
struct VariantTotals {
    switch_window: u64,
    violations: u64,
    switches: u64,
    time_in_serverless_s: f64,
    consumed_core_s: f64,
    alloc_core_s: f64,
}

fn comparison_run(variant: SystemVariant, day_s: f64, seed: u64) -> (RunResult, Trace) {
    Experiment::builder(variant, SimDuration::from_secs_f64(day_s * DAYS), seed)
        .services(standard_scenario(benchmarks::float(), day_s))
        .build()
        .run_traced()
}

/// Forecasting + proactive switching: the backtest table and the
/// reactive-vs-proactive comparison the extension is judged on.
pub fn forecast(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "forecast",
        "Load forecasting and proactive switching (Amoeba-Pro)",
    );
    let spec = benchmarks::float();

    // Part 1 — backtest every model on the noiseless foreground trace:
    // two seed days, one scored day, at the controller's switch-up
    // horizon (VM boot 5 s + control period 1 s).
    let load = LoadTrace::new(DiurnalPattern::didi(), spec.peak_qps, day_s);
    let day = SimDuration::from_secs_f64(load.day_seconds());
    let cfg = BacktestConfig::over_days(
        &load,
        SimDuration::from_secs(1),
        SimDuration::from_secs(6),
        2.0,
        3.0,
    );
    r.line("Backtest, noiseless Didi trace (2 seed days, 1 scored day, 6 s horizon):");
    let bw = [14, 9, 9, 9, 10];
    r.line(row(
        &[
            "model".into(),
            "samples".into(),
            "MAE".into(),
            "MAPE".into(),
            "coverage".into(),
        ],
        &bw,
    ));
    let mut bt = Vec::new();
    for mut m in models(day) {
        let b = backtest(m.as_mut(), &load, &cfg);
        r.line(row(
            &[
                m.name().into(),
                b.samples.to_string(),
                format!("{:.3}", b.mae),
                format!("{:.2}%", b.mape * 100.0),
                format!("{:.3}", b.coverage),
            ],
            &bw,
        ));
        bt.push(json!({
            "model": m.name(),
            "samples": b.samples,
            "mae": b.mae,
            "mape": b.mape,
            "coverage": b.coverage,
            "mean_width": b.mean_width,
        }));
    }

    // Part 2 — the §VII-A float scenario over three Didi days, reactive
    // vs proactive, across the comparison seeds.
    let variants = [SystemVariant::Amoeba, SystemVariant::AmoebaPro];
    let jobs: Vec<(SystemVariant, u64)> = (0..SEEDS)
        .flat_map(|i| variants.map(|v| (v, seed + i)))
        .collect();
    let runs: Vec<(SystemVariant, u64, RunResult, Trace)> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(v, sd)| s.spawn(move || comparison_run(v, day_s, sd)))
            .collect();
        jobs.iter()
            .zip(handles)
            .map(|(&(v, sd), h)| {
                let (run, trace) = h.join().unwrap();
                (v, sd, run, trace)
            })
            .collect()
    });

    r.line("");
    r.line(format!(
        "Reactive vs proactive, float scenario over {DAYS:.0} Didi days x {SEEDS} seeds \
         (switch window = transition +/- {WINDOW_PAD_S:.0} s):"
    ));
    let cw = [12, 6, 10, 10, 9, 11, 11, 11];
    r.line(row(
        &[
            "system".into(),
            "seed".into(),
            "sw-window".into(),
            "viol(fg)".into(),
            "switches".into(),
            "t_sls (s)".into(),
            "cpu-used".into(),
            "cpu-alloc".into(),
        ],
        &cw,
    ));
    let mut totals: BTreeMap<&'static str, VariantTotals> = BTreeMap::new();
    let mut per_seed: BTreeMap<&'static str, Vec<amoeba_json::Value>> = BTreeMap::new();
    let mut pro_accuracy = (0u64, 0.0f64, 0.0f64);
    for (v, sd, run, trace) in &runs {
        let label = v.label();
        let summary = trace.summary();
        let fg = &summary.services[&run.services[0].name];
        let sw = switch_window_violations(trace, 0);
        let usage = run.services[0].usage;
        r.line(row(
            &[
                label.into(),
                sd.to_string(),
                sw.to_string(),
                fg.violations().to_string(),
                fg.switches.to_string(),
                format!("{:.0}", fg.time_in_serverless.as_secs_f64()),
                format!("{:.0}", usage.core_seconds_consumed),
                format!("{:.0}", usage.core_seconds),
            ],
            &cw,
        ));
        let t = totals.entry(label).or_default();
        t.switch_window += sw;
        t.violations += fg.violations();
        t.switches += fg.switches;
        t.time_in_serverless_s += fg.time_in_serverless.as_secs_f64();
        t.consumed_core_s += usage.core_seconds_consumed;
        t.alloc_core_s += usage.core_seconds;
        per_seed.entry(label).or_default().push(json!({
            "seed": *sd,
            "switch_window_violations": sw,
            "violations": fg.violations(),
            "switches": fg.switches,
            "time_in_iaas_s": fg.time_in_iaas.as_secs_f64(),
            "time_in_serverless_s": fg.time_in_serverless.as_secs_f64(),
            "core_seconds_consumed": usage.core_seconds_consumed,
            "core_seconds": usage.core_seconds,
        }));
        if v.proactive() && *sd == seed {
            pro_accuracy = realized_accuracy(trace);
        }
    }
    r.line("");
    let mut cmp = Vec::new();
    for v in variants {
        let label = v.label();
        let t = &totals[label];
        r.line(row(
            &[
                label.into(),
                "all".into(),
                t.switch_window.to_string(),
                t.violations.to_string(),
                t.switches.to_string(),
                format!("{:.0}", t.time_in_serverless_s),
                format!("{:.0}", t.consumed_core_s),
                format!("{:.0}", t.alloc_core_s),
            ],
            &cw,
        ));
        let (fc_samples, fc_mape, fc_cov) = if v.proactive() {
            pro_accuracy
        } else {
            (0, 0.0, 0.0)
        };
        cmp.push(json!({
            "variant": label,
            "switch_window_violations": t.switch_window,
            "violations": t.violations,
            "switches": t.switches,
            "time_in_serverless_s": t.time_in_serverless_s,
            "core_seconds_consumed": t.consumed_core_s,
            "core_seconds": t.alloc_core_s,
            "forecast_samples": fc_samples,
            "forecast_mape": fc_mape,
            "forecast_coverage": fc_cov,
            "per_seed": per_seed[label].clone(),
        }));
    }
    r.line(format!(
        "cpu-used = core-seconds consumed; proactive prewarming trades \
         ~{:.1}% more allocated capacity for the switch-window wins",
        100.0 * (totals["Amoeba-Pro"].alloc_core_s / totals["Amoeba"].alloc_core_s - 1.0)
    ));
    r.json = json!({
        "days": DAYS,
        "seeds": SEEDS,
        "window_pad_s": WINDOW_PAD_S,
        "backtest": bt,
        "comparison": cmp,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{DEFAULT_DAY_S, DEFAULT_SEED};

    #[test]
    fn report_meets_the_acceptance_bar() {
        let r = forecast(DEFAULT_DAY_S, DEFAULT_SEED);

        // The backtest harness scores MAPE for all four forecasters, and
        // the seasonal model beats the naive baseline.
        let bt = r.json["backtest"].as_array().unwrap();
        assert_eq!(bt.len(), 4, "all four forecasters scored");
        for b in bt {
            assert!(b["samples"].as_u64().unwrap() > 400, "{b}");
            assert!(b["mape"].as_f64().unwrap().is_finite(), "{b}");
        }
        let mape = |name: &str| {
            bt.iter().find(|b| b["model"] == name).unwrap()["mape"]
                .as_f64()
                .unwrap()
        };
        assert!(mape("holt_winters") < mape("naive"));

        // Amoeba-Pro: strictly fewer switch-window violations than the
        // reactive controller at equal or lower CPU consumption.
        let cmp = r.json["comparison"].as_array().unwrap();
        let reactive = &cmp[0];
        let pro = &cmp[1];
        assert_eq!(reactive["variant"], "Amoeba");
        assert_eq!(pro["variant"], "Amoeba-Pro");
        assert!(
            pro["switch_window_violations"].as_u64().unwrap()
                < reactive["switch_window_violations"].as_u64().unwrap(),
            "pro {pro} vs reactive {reactive}"
        );
        assert!(
            pro["core_seconds_consumed"].as_f64().unwrap()
                <= reactive["core_seconds_consumed"].as_f64().unwrap(),
            "pro {pro} vs reactive {reactive}"
        );

        // The run's own forecasts are sane: plenty of realized samples,
        // most covered by the interval, and none from the reactive run.
        assert!(pro["forecast_samples"].as_u64().unwrap() > 100);
        assert!(pro["forecast_coverage"].as_f64().unwrap() > 0.5);
        assert_eq!(reactive["forecast_samples"].as_u64().unwrap(), 0);
    }
}
