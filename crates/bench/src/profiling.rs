//! §IV-B profiling artefacts: Fig. 8 meter curves and Fig. 9 latency
//! surfaces.

use crate::report::{row, Report};
use amoeba_core::profiler::profile_meter_empirical;
use amoeba_json::json;
use amoeba_meters::{cpu_meter, io_meter, net_meter, LatencySurface, ProfileCurve};
use amoeba_platform::ServerlessConfig;
use amoeba_workload::benchmarks;

const RESOURCES: [&str; 3] = ["CPU", "IO", "Network"];

fn meter_curve_analytic(cfg: &ServerlessConfig, resource: usize) -> ProfileCurve {
    let m = [cpu_meter(), io_meter(), net_meter()][resource].clone();
    let phases = [
        m.demand.cpu_s,
        m.demand.io_mb / cfg.per_flow_io_mbps,
        m.demand.net_mb / cfg.per_flow_net_mbps,
    ];
    let overhead = cfg.auth_s
        + cfg.code_load_base_s
        + cfg.code_load_s_per_mb * m.demand.mem_mb
        + cfg.result_post_s;
    ProfileCurve::analytic(
        phases,
        resource,
        overhead,
        cfg.slowdown_kappa[resource],
        cfg.max_utilization,
        40,
    )
}

/// Fig. 8: the latency-vs-pressure curve of each contention meter,
/// analytic (closed form) with empirical platform measurements alongside.
pub fn fig8(seed: u64) -> Report {
    let mut r = Report::new(
        "fig8",
        "Latency variation of the CPU/IO/Network contention meters with pressure",
    );
    let cfg = ServerlessConfig {
        exec_jitter_sigma: 0.0,
        // Profiling needs the filler to hold near-saturation pressure,
        // where stretched executions demand hundreds of concurrent
        // containers — lift the tenancy and memory caps for the sweep.
        tenant_container_cap: 2000,
        pool_memory_mb: 512.0 * 1024.0,
        ..Default::default()
    };
    let sweep = [0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9];
    let mut out = Vec::new();
    let results: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..3)
            .map(|res| {
                s.spawn(move || {
                    let analytic = meter_curve_analytic(&cfg, res);
                    let measured = profile_meter_empirical(&cfg, res, &sweep, 12, seed);
                    (res, analytic, measured)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    let w = [10, 12, 14];
    for (res, analytic, measured) in results {
        r.line(format!("-- {} meter --", RESOURCES[res]));
        r.line(row(
            &["pressure".into(), "model ms".into(), "measured ms".into()],
            &w,
        ));
        let mut series = Vec::new();
        for &u in &sweep {
            let a = analytic.latency_at(u);
            let m = measured.latency_at(u);
            r.line(row(
                &[
                    format!("{u:.2}"),
                    format!("{:.2}", a * 1000.0),
                    format!("{:.2}", m * 1000.0),
                ],
                &w,
            ));
            series.push(json!({"pressure": u, "model_s": a, "measured_s": m}));
        }
        out.push(json!({"resource": RESOURCES[res], "points": series}));
    }
    r.json = json!(out);
    r
}

/// Fig. 9: the latency surfaces of an example microservice (the paper
/// shows one service's sensitivity to each meter; `cloud_stor` touches
/// all three resources, so its three surfaces differ visibly).
pub fn fig9() -> Report {
    let mut r = Report::new(
        "fig9",
        "Latency surfaces of cloud_stor: p95 (s) over load x pressure",
    );
    let spec = benchmarks::cloud_stor();
    let cfg = ServerlessConfig::default();
    let phases = [
        spec.demand.cpu_s,
        spec.demand.io_mb / cfg.per_flow_io_mbps,
        spec.demand.net_mb / cfg.per_flow_net_mbps,
    ];
    let overhead = cfg.auth_s
        + cfg.code_load_base_s
        + cfg.code_load_s_per_mb * spec.demand.mem_mb
        + cfg.result_post_s;
    let loads = vec![1.0, 5.0, 10.0, 20.0, 35.0, 50.0];
    let pressures = vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9];
    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // fixed [cpu, io, net] axes
    for res in 0..3 {
        let surface = LatencySurface::analytic(
            phases,
            overhead,
            res,
            cfg.slowdown_kappa[res],
            cfg.tenant_container_cap.min(cfg.memory_container_cap()),
            spec.qos_percentile,
            loads.clone(),
            pressures.clone(),
        );
        r.line(format!("-- sensitivity to {} --", RESOURCES[res]));
        let header: Vec<String> = std::iter::once("load\\P".to_string())
            .chain(pressures.iter().map(|p| format!("{p:.1}")))
            .collect();
        let widths = vec![8; header.len()];
        r.line(row(&header, &widths));
        for (i, &load) in loads.iter().enumerate() {
            let cells: Vec<String> = std::iter::once(format!("{load:.0}"))
                .chain(surface.values()[i].iter().map(|v| format!("{v:.3}")))
                .collect();
            r.line(row(&cells, &widths));
        }
        out.push(json!({
            "resource": RESOURCES[res],
            "loads": loads,
            "pressures": pressures,
            "p95": surface.values(),
        }));
    }
    r.json = json!(out);
    r
}

/// All profiling reports.
pub fn all(seed: u64) -> Vec<Report> {
    vec![fig8(seed), fig9()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_curves_are_monotone_and_close_to_model() {
        let r = fig8(3);
        for meter in r.json.as_array().unwrap() {
            let pts = meter["points"].as_array().unwrap();
            let mut prev = 0.0;
            for p in pts {
                let u = p["pressure"].as_f64().unwrap();
                let model = p["model_s"].as_f64().unwrap();
                assert!(model >= prev);
                prev = model;
                let measured = p["measured_s"].as_f64().unwrap();
                let rel = (measured - model).abs() / model;
                // Near saturation the sample-at-start approximation and
                // ramp effects widen the gap; the controller only ever
                // *inverts* the measured curve, so monotone agreement in
                // the operating band is what matters.
                let tol = if u <= 0.75 { 0.35 } else { 0.55 };
                assert!(rel < tol, "u={u}: model {model} vs measured {measured}");
            }
        }
    }

    #[test]
    fn fig9_surfaces_grow_with_pressure() {
        let r = fig9();
        for surf in r.json.as_array().unwrap() {
            let grid = surf["p95"].as_array().unwrap();
            for row in grid {
                let vals: Vec<f64> = row
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
                for w in vals.windows(2) {
                    assert!(w[1] >= w[0] - 1e-9);
                }
            }
        }
    }
}
