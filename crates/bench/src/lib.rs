#![warn(missing_docs)]
//! Experiment harness for the Amoeba reproduction.
//!
//! Every table and figure of the paper's evaluation (§II investigation +
//! §VII evaluation) has a regenerator here; the `experiments` binary
//! runs them and prints the same rows/series the paper reports, plus a
//! machine-readable JSON blob per experiment. See DESIGN.md §6 for the
//! experiment index and EXPERIMENTS.md for recorded paper-vs-measured
//! results.

pub mod ablations;
pub mod evaluation;
pub mod extensions;
pub mod fleet;
pub mod forecast;
pub mod investigation;
pub mod multinode;
pub mod multitenant;
pub mod profiling;
pub mod report;
pub mod resilience;
pub mod scenarios;
pub mod steady;
pub mod workflow;

pub use report::Report;
pub use scenarios::{standard_scenario, DEFAULT_DAY_S, DEFAULT_SEED};
