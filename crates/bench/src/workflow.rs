//! The `workflow` extension report (beyond the paper): a DAG service
//! under an end-to-end QoS budget, with the budget split across stages
//! and each stage switched independently.
//!
//! The fleet runs a 4-stage diamond media pipeline —
//! `ingest → (transform_a ‖ transform_b) → merge` — whose stages have
//! deliberately different resource shapes: `ingest` is network-bound,
//! `transform_a` mixed CPU+disk, `transform_b` disk-IO-bound and
//! `merge` mixed. On IaaS a query holds a whole core through its
//! IO/network phases, so these stages waste rented cores; on
//! serverless they pay per-query overheads and, at peak, the fan-out
//! stages saturate the node's disk (`transform_b` alone moves
//! 40 MB × 60 qps = 2.4 GB/s against a 3 GB/s node). Per-stage
//! switching should therefore hold end-to-end QoS at or below *both*
//! static deployments (all-IaaS Nameko, all-serverless OpenWhisk)
//! while consuming less CPU than all-IaaS.

use crate::report::{row, Report};
use crate::scenarios::background_services;
use amoeba_core::{Experiment, RunResult, SystemVariant, WorkflowSetup};
use amoeba_json::json;
use amoeba_sim::SimDuration;
use amoeba_workload::{DemandVector, DiurnalPattern, LoadTrace, WorkflowSpec};

/// End-to-end QoS target on the 95th-percentile latency, seconds —
/// roughly 2× the pipeline's critical-path solo latency, the same
/// headroom ratio the Table III benchmarks run with.
const E2E_TARGET_S: f64 = 0.9;

/// Peak workflow load, queries/second. Every stage sees this peak.
const PEAK_QPS: f64 = 60.0;

/// The systems under comparison: both static deployments and
/// per-stage Amoeba.
const VARIANTS: [SystemVariant; 3] = [
    SystemVariant::Nameko,
    SystemVariant::OpenWhisk,
    SystemVariant::Amoeba,
];

/// The diamond media pipeline.
pub fn media_pipeline() -> WorkflowSpec {
    let mut wf = WorkflowSpec::builder("media", E2E_TARGET_S, PEAK_QPS);
    let ingest = wf.stage(
        "ingest",
        DemandVector {
            cpu_s: 0.008,
            mem_mb: 96.0,
            io_mb: 0.0,
            net_mb: 24.0,
        },
    );
    let transform_a = wf.stage(
        "transform_a",
        DemandVector {
            cpu_s: 0.030,
            mem_mb: 128.0,
            io_mb: 20.0,
            net_mb: 1.0,
        },
    );
    let transform_b = wf.stage(
        "transform_b",
        DemandVector {
            cpu_s: 0.015,
            mem_mb: 96.0,
            io_mb: 40.0,
            net_mb: 0.5,
        },
    );
    let merge = wf.stage(
        "merge",
        DemandVector {
            cpu_s: 0.020,
            mem_mb: 96.0,
            io_mb: 8.0,
            net_mb: 12.0,
        },
    );
    wf.edge(ingest, transform_a)
        .edge(ingest, transform_b)
        .edge(transform_a, merge)
        .edge(transform_b, merge);
    wf.build().expect("valid pipeline")
}

/// One run of the pipeline fleet under `variant`: the workflow on a
/// Didi-shaped diurnal trace plus the three standard background
/// services for contention.
pub fn workflow_cell(variant: SystemVariant, day_s: f64, seed: u64) -> RunResult {
    Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
        .services(background_services(day_s))
        .workflow(WorkflowSetup {
            spec: media_pipeline(),
            trace: LoadTrace::new(DiurnalPattern::didi(), PEAK_QPS, day_s),
        })
        .build()
        .run()
}

/// Per-variant aggregates over the comparison seeds.
#[derive(Default)]
struct CellTotals {
    violations: u64,
    p95_over_target_sum: f64,
    p99_s_sum: f64,
    runs: u64,
    consumed_cpu_s: f64,
    submitted: u64,
    completed: u64,
    failed: u64,
    stage_violations: Vec<u64>,
}

/// DAG services under an end-to-end budget: per-stage Amoeba vs the
/// two static deployments.
pub fn workflow(day_s: f64, seed: u64, seeds: u64) -> Report {
    let mut r = Report::new(
        "workflow",
        "Workflow DAG: per-stage switching vs static deployment under an e2e budget",
    );

    let jobs: Vec<(SystemVariant, u64)> = VARIANTS
        .iter()
        .flat_map(|&v| (0..seeds).map(move |i| (v, seed + i)))
        .collect();
    let runs: Vec<(SystemVariant, RunResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(v, sd)| scope.spawn(move || workflow_cell(v, day_s, sd)))
            .collect();
        jobs.iter()
            .zip(handles)
            .map(|(&(v, _), h)| (v, h.join().unwrap()))
            .collect()
    });

    let spec = media_pipeline();
    let stage_names: Vec<String> = spec.stages().iter().map(|s| s.name.clone()).collect();
    r.line(format!(
        "4-stage diamond pipeline ({}), e2e target {E2E_TARGET_S} s on p95, \
         peak {PEAK_QPS:.0} qps, 3 background services, {seeds} seed(s), \
         {day_s:.0} s day:",
        stage_names.join(" / "),
    ));
    let cw = [11, 10, 9, 9, 12, 10, 24];
    r.line(row(
        &[
            "system".into(),
            "viol_pct".into(),
            "p95/tgt".into(),
            "p99_s".into(),
            "cpu_cons_s".into(),
            "done/sub".into(),
            "stage viol (split budget)".into(),
        ],
        &cw,
    ));

    let percentile = spec.qos_percentile();
    let mut cells = Vec::new();
    for &variant in &VARIANTS {
        let mut t = CellTotals {
            stage_violations: vec![0; spec.stage_count()],
            ..CellTotals::default()
        };
        for (_, run) in runs.iter().filter(|(v, _)| *v == variant) {
            let wf = run.workflows.first().expect("workflow result");
            t.violations += wf.violations as u64;
            t.submitted += wf.submitted as u64;
            t.completed += wf.completed as u64;
            t.failed += wf.failed as u64;
            for (i, &v) in wf.stage_violations.iter().enumerate() {
                t.stage_violations[i] += v as u64;
            }
            let mut rec = wf.latency.clone();
            if let Some(pq) = rec.quantile(percentile) {
                t.p95_over_target_sum += pq.as_secs_f64() / wf.qos_target_s;
            }
            if let Some(p99) = rec.quantile(0.99) {
                t.p99_s_sum += p99.as_secs_f64();
            }
            t.runs += 1;
            for svc in &run.services {
                t.consumed_cpu_s += svc.usage.core_seconds_consumed;
            }
        }
        let n_runs = t.runs.max(1) as f64;
        let p95_over_target = t.p95_over_target_sum / n_runs;
        let p99 = t.p99_s_sum / n_runs;
        let violation_ratio = t.violations as f64 / (t.completed.max(1)) as f64;
        r.line(row(
            &[
                variant.label().into(),
                format!("{:.2}%", violation_ratio * 100.0),
                format!("{p95_over_target:.3}"),
                format!("{p99:.3}"),
                format!("{:.0}", t.consumed_cpu_s),
                format!("{}/{}", t.completed, t.submitted),
                format!("{:?}", t.stage_violations),
            ],
            &cw,
        ));
        cells.push(json!({
            "variant": variant.label(),
            "violations": t.violations,
            "violation_ratio": violation_ratio,
            "p95_over_target": p95_over_target,
            "p99_s": p99,
            "consumed_cpu_s": t.consumed_cpu_s,
            "submitted": t.submitted,
            "completed": t.completed,
            "failed": t.failed,
            "stage_violations": (t.stage_violations.iter().map(|&v| json!(v)).collect::<Vec<_>>()),
        }));
    }
    r.line("");
    r.line(
        "viol_pct = counted instances over the e2e target (QoS holds while \
         it stays within the percentile slack); cpu_cons_s = busy \
         core-seconds across the fleet (IaaS holds a core through IO/net \
         phases); stage viol = completions over each stage's split budget",
    );
    r.json = json!({
        "e2e_target_s": E2E_TARGET_S,
        "qos_percentile": percentile,
        "peak_qps": PEAK_QPS,
        "stages": (stage_names.iter().map(|s| json!(s.as_str())).collect::<Vec<_>>()),
        "seeds": seeds,
        "cells": cells,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::DEFAULT_SEED;

    /// Shorter than the report default so the suite stays fast, long
    /// enough for the diurnal peak to force per-stage switching.
    const TEST_DAY_S: f64 = 240.0;

    #[test]
    fn report_meets_the_acceptance_bar() {
        let r = workflow(TEST_DAY_S, DEFAULT_SEED, 2);
        let cells = r.json["cells"].as_array().unwrap();
        assert_eq!(cells.len(), VARIANTS.len());
        let get = |label: &str| {
            cells
                .iter()
                .find(|c| c["variant"] == label)
                .unwrap_or_else(|| panic!("missing cell {label}"))
        };
        // Conservation: every counted instance completes or fails.
        for c in cells {
            assert_eq!(
                c["submitted"].as_u64().unwrap(),
                c["completed"].as_u64().unwrap() + c["failed"].as_u64().unwrap(),
                "{c}"
            );
        }
        // The acceptance bar: per-stage Amoeba holds end-to-end QoS
        // violations at or below both static deployments, at lower
        // consumed CPU than all-IaaS. QoS is the paper's percentile
        // definition (§II: the target holds at the r-th percentile), so
        // "violations" compare as the violation *ratio* with the
        // percentile slack — an all-IaaS fleet sized for peak is
        // structurally violation-free here, and a raw-count bar against
        // zero would outlaw the cold starts the QoS definition permits.
        // Same convention as the fig10 regression (p95/target ≤ 1.05
        // for Amoeba).
        let percentile = r.json["qos_percentile"].as_f64().unwrap();
        let slack = 1.0 - percentile;
        let amoeba = get(SystemVariant::Amoeba.label());
        // Amoeba itself meets the end-to-end QoS target.
        assert!(
            amoeba["p95_over_target"].as_f64().unwrap() <= 1.05,
            "Amoeba misses its own e2e QoS target: {amoeba}"
        );
        for baseline in [SystemVariant::Nameko, SystemVariant::OpenWhisk] {
            let b = get(baseline.label());
            let b_ratio = b["violation_ratio"].as_f64().unwrap();
            assert!(
                amoeba["violation_ratio"].as_f64().unwrap() <= b_ratio.max(slack),
                "violation ratio vs {}: {amoeba} {b}",
                baseline.label()
            );
        }
        // All-serverless misses QoS outright at peak (disk saturation);
        // Amoeba must beat it strictly.
        let openwhisk = get(SystemVariant::OpenWhisk.label());
        assert!(
            amoeba["violation_ratio"].as_f64().unwrap()
                < openwhisk["violation_ratio"].as_f64().unwrap(),
            "violation ratio vs all-serverless: {amoeba} {openwhisk}"
        );
        let nameko = get(SystemVariant::Nameko.label());
        assert!(
            amoeba["consumed_cpu_s"].as_f64() < nameko["consumed_cpu_s"].as_f64(),
            "consumed CPU vs all-IaaS: {amoeba} {nameko}"
        );
    }

    #[test]
    fn cells_are_deterministic() {
        for v in VARIANTS {
            let a = workflow_cell(v, 120.0, 7);
            let b = workflow_cell(v, 120.0, 7);
            let (wa, wb) = (&a.workflows[0], &b.workflows[0]);
            assert_eq!(wa.completed, wb.completed, "{v:?}");
            assert_eq!(wa.violations, wb.violations, "{v:?}");
            for (x, y) in a.services.iter().zip(&b.services) {
                assert_eq!(x.completed, y.completed, "{v:?} {}", x.name);
            }
        }
    }
}
