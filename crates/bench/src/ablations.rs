//! §VII-C/D/E ablation experiments: Fig. 14 (Amoeba-NoM usage), Fig. 15
//! (discriminant error), Fig. 16 (Amoeba-NoP QoS violation), and the
//! meter overhead accounting — plus model ablations for the design
//! choices called out in DESIGN.md.

use crate::report::{row, Report};
use crate::scenarios::{
    foregrounds, run_cell, run_cell_traced, standard_scenario, DEFAULT_DAY_S, DEFAULT_SEED,
};
use crate::steady::max_steady_qps;
use amoeba_core::controller::ServiceModel;
use amoeba_core::{ControllerConfig, DeploymentController, SystemVariant};
use amoeba_json::json;
use amoeba_meters::LatencySurface;
use amoeba_platform::ServerlessConfig;
use amoeba_telemetry::{Mode, SwitchPhase, Trace, ViolationCause};
use amoeba_workload::MicroserviceSpec;

/// Fig. 14: resource usage of Amoeba vs Amoeba-NoM, both normalised to
/// Nameko (paper: NoM costs up to 1.77× CPU and 2.38× memory relative
/// to Amoeba because it switches to serverless late).
pub fn fig14(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "fig14",
        "Resource usage of Amoeba and Amoeba-NoM normalised to Nameko",
    );
    let w = [12, 11, 11, 11, 11, 9, 9];
    r.line(row(
        &[
            "Name".into(),
            "A cpu".into(),
            "NoM cpu".into(),
            "A mem".into(),
            "NoM mem".into(),
            "cpu x".into(),
            "mem x".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    let results: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = foregrounds()
            .into_iter()
            .map(|b| {
                s.spawn(move || {
                    let nameko = run_cell(SystemVariant::Nameko, b.clone(), day_s, seed);
                    let amoeba = run_cell_traced(SystemVariant::Amoeba, b.clone(), day_s, seed);
                    let nom = run_cell_traced(SystemVariant::AmoebaNoM, b.clone(), day_s, seed);
                    (b.name, nameko, amoeba, nom)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, nameko, (amoeba, amoeba_trace), (nom, nom_trace)) in results {
        let base = &nameko.services[0].usage;
        let a_cpu = amoeba.services[0].usage.cpu_relative_to(base);
        let n_cpu = nom.services[0].usage.cpu_relative_to(base);
        let a_mem = amoeba.services[0].usage.mem_relative_to(base);
        let n_mem = nom.services[0].usage.mem_relative_to(base);
        // The mechanism behind the usage gap (§VII-C): NoM's pessimistic
        // accumulation lowers λ(μ), so its switch *to serverless* fires
        // at a lower load — later on the descending shoulder of the day.
        // Read off the telemetry stream: the load the controller saw at
        // each `Requested` step toward serverless.
        let down_load = |trace: &Trace| {
            let loads: Vec<f64> = trace
                .switch_events()
                .filter(|e| {
                    e.service == 0 && e.phase == SwitchPhase::Requested && e.to == Mode::Serverless
                })
                .map(|e| e.load_qps)
                .collect();
            if loads.is_empty() {
                f64::NAN
            } else {
                loads.iter().sum::<f64>() / loads.len() as f64
            }
        };
        let a_down = down_load(&amoeba_trace);
        let n_down = down_load(&nom_trace);
        r.line(row(
            &[
                name.clone(),
                format!("{a_cpu:.3}"),
                format!("{n_cpu:.3}"),
                format!("{a_mem:.3}"),
                format!("{n_mem:.3}"),
                format!("{:.2}", n_cpu / a_cpu.max(1e-9)),
                format!("{:.2}", n_mem / a_mem.max(1e-9)),
            ],
            &w,
        ));
        r.line(format!(
            "    mean switch-down load: Amoeba {a_down:.1} qps vs NoM {n_down:.1} qps"
        ));
        out.push(json!({
            "name": name,
            "amoeba_cpu": a_cpu, "nom_cpu": n_cpu,
            "amoeba_mem": a_mem, "nom_mem": n_mem,
            "amoeba_down_load": if a_down.is_nan() { amoeba_json::Value::Null } else { json!(a_down) },
            "nom_down_load": if n_down.is_nan() { amoeba_json::Value::Null } else { json!(n_down) },
        }));
    }
    r.json = json!(out);
    r
}

/// Build a controller model for `spec` from the analytic surfaces — the
/// same construction the runtime uses.
fn model_for(spec: &MicroserviceSpec, cfg: &ServerlessConfig) -> ServiceModel {
    let phases = [
        spec.demand.cpu_s,
        spec.demand.io_mb / cfg.per_flow_io_mbps,
        spec.demand.net_mb / cfg.per_flow_net_mbps,
    ];
    let overhead = cfg.auth_s
        + cfg.code_load_base_s
        + cfg.code_load_s_per_mb * spec.demand.mem_mb
        + cfg.result_post_s;
    let l0 = phases.iter().sum::<f64>() + overhead;
    let n_max = cfg.tenant_container_cap.min(cfg.memory_container_cap());
    let loads = vec![
        0.5,
        spec.peak_qps * 0.25,
        spec.peak_qps * 0.5,
        spec.peak_qps,
        spec.peak_qps * 1.25,
    ];
    let pressures = vec![0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9];
    let surfaces: [LatencySurface; 3] = [0, 1, 2].map(|res| {
        LatencySurface::analytic(
            phases,
            overhead,
            res,
            cfg.slowdown_kappa[res],
            n_max,
            spec.qos_percentile,
            loads.clone(),
            pressures.clone(),
        )
    });
    let base = phases.iter().sum::<f64>().max(1e-3);
    let caps = [cfg.node.cores, cfg.node.disk_bw_mbps, cfg.node.nic_bw_mbps];
    let rates = [
        spec.demand.cpu_s / base,
        spec.demand.io_mb / base,
        spec.demand.net_mb / base,
    ];
    let util_per_qps = [0, 1, 2].map(|r| l0 * rates[r] / caps[r]);
    ServiceModel {
        spec: spec.clone(),
        l0_s: l0,
        surfaces,
        util_per_qps,
        n_max,
    }
}

/// Fig. 15: average error of the discriminant function λ(μ) against the
/// real switch point found by enumeration, with Amoeba's calibrated
/// weights vs Amoeba-NoM's pessimistic accumulation (paper: max error
/// 25.8 % → 8.3 %, min 9.1 % → 2.8 %).
pub fn fig15(seed: u64) -> Report {
    let mut r = Report::new(
        "fig15",
        "Average error of the discriminant function λ(μ): Amoeba vs Amoeba-NoM",
    );
    let cfg = ServerlessConfig::default();
    let w = [12, 12, 12, 12, 12];
    r.line(row(
        &[
            "Name".into(),
            "λ_real".into(),
            "λ Amoeba".into(),
            "λ NoM".into(),
            "err A/NoM".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    let results: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = foregrounds()
            .into_iter()
            .map(|b| {
                s.spawn(move || {
                    // Background contention: the standard §VII-A trio at a
                    // flat mid-day level.
                    let scenario = standard_scenario(b.clone(), DEFAULT_DAY_S);
                    let background: Vec<(MicroserviceSpec, f64)> = scenario[1..]
                        .iter()
                        .map(|s| (s.spec.clone(), s.spec.peak_qps * 0.7))
                        .collect();
                    // λ_real by enumeration on the actual platform.
                    let lambda_real = max_steady_qps(
                        &b,
                        SystemVariant::OpenWhisk,
                        cfg,
                        &background,
                        b.peak_qps * 0.05,
                        b.peak_qps,
                        seed,
                    );
                    // Pressures, weights and observed service times under
                    // the *same* flat background the enumeration used —
                    // what the monitor would report in that steady state.
                    let (observed, pressures, weights_amoeba) =
                        crate::steady::steady_probe(&b, 2.0, cfg, &background, seed);
                    // Predicted switch points, self-consistently including
                    // the candidate's own pressure contribution.
                    let mut ctl = DeploymentController::new(ControllerConfig::default());
                    ctl.register(model_for(&b, &cfg));
                    // Calibrate the gain from the platform's real service
                    // time at this pressure (the runtime does this
                    // continuously from live/shadow queries).
                    if observed > 0.0 {
                        for _ in 0..50 {
                            ctl.observe_service_time(0, observed, pressures, weights_amoeba);
                        }
                    }
                    let lambda_amoeba = ctl.admissible_load(0, pressures, weights_amoeba);
                    // NoM: uniform weights, no gain calibration.
                    let mut ctl_nom = DeploymentController::new(ControllerConfig::default());
                    ctl_nom.register(model_for(&b, &cfg));
                    let lambda_nom = ctl_nom.admissible_load(0, pressures, [1.0; 3]);
                    (b.name, lambda_real, lambda_amoeba, lambda_nom)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, real, amoeba, nom) in results {
        let err = |pred: f64| {
            if real > 0.0 {
                (pred - real).abs() / real
            } else {
                0.0
            }
        };
        let (ea, en) = (err(amoeba), err(nom));
        r.line(row(
            &[
                name.clone(),
                format!("{real:.1}"),
                format!("{amoeba:.1}"),
                format!("{nom:.1}"),
                format!("{:.1}%/{:.1}%", ea * 100.0, en * 100.0),
            ],
            &w,
        ));
        out.push(json!({
            "name": name, "lambda_real": real,
            "lambda_amoeba": amoeba, "lambda_nom": nom,
            "err_amoeba": ea, "err_nom": en,
        }));
    }
    r.json = json!(out);
    r
}

/// Fig. 16: QoS violation ratio with Amoeba-NoP (paper: 29.9–69.1 % of
/// queries violate because cold starts exceed the QoS targets), with
/// Amoeba alongside for contrast.
pub fn fig16(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new("fig16", "QoS violation of the benchmarks with Amoeba-NoP");
    let w = [12, 12, 12, 13, 13, 10, 10];
    r.line(row(
        &[
            "Name".into(),
            "NoP viol%".into(),
            "Amoeba%".into(),
            "NoP sl-viol%".into(),
            "A sl-viol%".into(),
            "switches".into(),
            "cold%".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    let results: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = foregrounds()
            .into_iter()
            .map(|b| {
                s.spawn(move || {
                    let nop = run_cell_traced(SystemVariant::AmoebaNoP, b.clone(), day_s, seed);
                    let amoeba = run_cell(SystemVariant::Amoeba, b.clone(), day_s, seed);
                    (b.name, nop, amoeba)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, (nop, nop_trace), amoeba) in results {
        let v_nop = nop.services[0].violation_ratio();
        let v_amoeba = amoeba.services[0].violation_ratio();
        let sl_nop = nop.services[0].serverless_violation_ratio();
        let sl_amoeba = amoeba.services[0].serverless_violation_ratio();
        let switches = nop.services[0].switch_history.len();
        // The paper's causal claim — NoP violates *because of cold
        // starts* — read directly off the trace's attribution.
        let nop_viols = nop_trace.violations().filter(|v| v.service == 0).count();
        let nop_cold = nop_trace
            .violations()
            .filter(|v| v.service == 0 && v.cause == ViolationCause::ColdStart)
            .count();
        let cold_share = if nop_viols > 0 {
            nop_cold as f64 / nop_viols as f64
        } else {
            0.0
        };
        r.line(row(
            &[
                name.clone(),
                format!("{:.1}", v_nop * 100.0),
                format!("{:.1}", v_amoeba * 100.0),
                format!("{:.2}", sl_nop * 100.0),
                format!("{:.2}", sl_amoeba * 100.0),
                format!("{switches}"),
                format!("{:.0}", cold_share * 100.0),
            ],
            &w,
        ));
        out.push(json!({
            "name": name,
            "nop_violation": v_nop,
            "amoeba_violation": v_amoeba,
            "nop_serverless_violation": sl_nop,
            "amoeba_serverless_violation": sl_amoeba,
            "switches": switches,
            "nop_cold_start_share": cold_share,
        }));
    }
    r.json = json!(out);
    r
}

/// §VII-E: the CPU overhead of the contention meters (paper: 1.1 % /
/// 0.5 % / 0.6 %; total ≤ 1.1 % when scheduled round-trip).
pub fn overhead(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new("overhead", "Overhead of Amoeba's contention meters");
    let spec = amoeba_workload::benchmarks::float();
    let with = run_cell(SystemVariant::Amoeba, spec, day_s, seed);
    r.line(format!(
        "measured meter CPU overhead: {:.2}% of the node",
        with.meter_cpu_overhead * 100.0
    ));
    use amoeba_meters::{cpu_meter, io_meter, meter_overhead_fraction, net_meter};
    let cores = ServerlessConfig::default().node.cores;
    let per = [
        ("CPU-Memory", meter_overhead_fraction(&cpu_meter(), cores)),
        ("IO", meter_overhead_fraction(&io_meter(), cores)),
        ("Network", meter_overhead_fraction(&net_meter(), cores)),
    ];
    for (name, f) in per {
        r.line(format!("  {name} meter: {:.2}%", f * 100.0));
    }
    r.json = json!({
        "measured_total": with.meter_cpu_overhead,
        "per_meter": per.iter().map(|(n, f)| json!({"meter": n, "fraction": f})).collect::<Vec<_>>(),
    });
    r
}

/// Design ablation: alternative contention-response curvatures κ and
/// their effect on the predicted switch point — documents how sensitive
/// the controller is to the slowdown-model choice called out in
/// DESIGN.md.
pub fn ablation_slowdown() -> Report {
    let mut r = Report::new(
        "ablation-slowdown",
        "Sensitivity of λ(μ) to the contention-response curvature κ",
    );
    let spec = amoeba_workload::benchmarks::dd();
    let w = [10, 14, 14];
    r.line(row(
        &["kappa".into(), "λ @ P=0.3".into(), "λ @ P=0.6".into()],
        &w,
    ));
    let mut out = Vec::new();
    for kappa in [0.5, 1.0, 1.8, 3.0] {
        let cfg = ServerlessConfig {
            slowdown_kappa: [kappa; 3],
            ..Default::default()
        };
        let mut ctl = DeploymentController::new(ControllerConfig::default());
        ctl.register(model_for(&spec, &cfg));
        let weights = [1.0 / 3.0; 3];
        let l_low = ctl.lambda_max(0, [0.0, 0.3, 0.0], weights);
        let l_high = ctl.lambda_max(0, [0.0, 0.6, 0.0], weights);
        r.line(row(
            &[
                format!("{kappa:.1}"),
                format!("{l_low:.1}"),
                format!("{l_high:.1}"),
            ],
            &w,
        ));
        out.push(json!({"kappa": kappa, "lambda_p03": l_low, "lambda_p06": l_high}));
    }
    r.json = json!(out);
    r
}

/// All ablation reports at default scale.
pub fn all() -> Vec<Report> {
    vec![
        fig14(DEFAULT_DAY_S, DEFAULT_SEED),
        fig15(DEFAULT_SEED),
        fig16(DEFAULT_DAY_S, DEFAULT_SEED),
        overhead(DEFAULT_DAY_S, DEFAULT_SEED),
        ablation_slowdown(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_nom_is_not_cheaper_in_aggregate() {
        // On the compressed day the *usage* magnitude of NoM's
        // late-switching shrinks with the compression factor (the paper's
        // 1.77×/2.38× needs the multi-hour shoulders of a real day);
        // what must survive compression is that NoM never beats Amoeba
        // beyond the shadow-traffic noise floor. The threshold mechanism
        // itself (λ_NoM < λ_Amoeba under multi-resource pressure) is
        // pinned deterministically in
        // `controller::tests::nom_weights_are_pessimistic` and measured
        // against enumeration in fig15.
        let r = fig14(300.0, 9);
        let mut total_a = 0.0;
        let mut total_n = 0.0;
        for row in r.json.as_array().unwrap() {
            let a = row["amoeba_cpu"].as_f64().unwrap();
            let n = row["nom_cpu"].as_f64().unwrap();
            assert!(n >= a * 0.93, "NoM materially cheaper than Amoeba: {row}");
            total_a += a;
            total_n += n;
        }
        assert!(
            total_n >= total_a * 0.95,
            "NoM cheaper in aggregate: {total_n} vs {total_a}"
        );
    }

    #[test]
    fn fig16_nop_violates_more() {
        let r = fig16(300.0, 9);
        let mut worse = 0;
        for row in r.json.as_array().unwrap() {
            // The cold-start damage concentrates in the serverless-
            // executed slice, which is where the paper's Fig. 16 effect
            // lives.
            let nop = row["nop_serverless_violation"].as_f64().unwrap();
            let amo = row["amoeba_serverless_violation"].as_f64().unwrap();
            if row["switches"].as_u64().unwrap() > 0 && nop > amo * 1.2 + 0.002 {
                worse += 1;
            }
        }
        assert!(
            worse >= 4,
            "NoP must violate more wherever it switches: {}",
            r.render()
        );
    }

    #[test]
    fn ablation_slowdown_monotone() {
        let r = ablation_slowdown();
        let rows = r.json.as_array().unwrap();
        // Higher κ ⇒ lower admissible load at the same pressure.
        for w in rows.windows(2) {
            let a = w[0]["lambda_p06"].as_f64().unwrap();
            let b = w[1]["lambda_p06"].as_f64().unwrap();
            assert!(b <= a + 1e-9, "{rows:?}");
        }
    }
}
