//! The `fleet` extension report (beyond the paper): vendor-scale
//! behaviour of Amoeba's per-tenant switching on a thousand-service
//! fleet simulated over a week of diurnal load by the `amoeba-fleet`
//! sharded executor.
//!
//! Two questions, two sections:
//!
//! 1. **Scaling** — wall-clock of the same fleet at 1/2/4/8 worker
//!    threads (telemetry disabled, so the figure is the simulation
//!    itself, not per-event serialisation). The executor's epoch-barrier
//!    design makes the *results* identical at every thread count — the
//!    gate asserted by `tests/fleet_scale.rs` — so the only thing that
//!    may change down this column is the wall-clock.
//! 2. **Economics** — aggregate QoS violations and allocated CPU for
//!    the same fleet under Amoeba switching vs static IaaS provisioning
//!    (Nameko): the paper's per-service claim, restated at fleet scale.

use crate::report::{row, Report};
use amoeba_core::SystemVariant;
use amoeba_fleet::{FleetOutcome, FleetSpec};
use amoeba_json::json;

/// Services in the full-scale fleet.
pub const FLEET_SERVICES: usize = 1000;

/// Simulated days in the full-scale run.
pub const FLEET_DAYS: f64 = 7.0;

/// Seconds per diurnal day in the full-scale run. Compressed 20× from
/// real time (like every report's day) so the week stays tractable on
/// one machine; the diurnal *structure* — 7 phase-spread cycles per
/// tenant — is what the fleet economics depend on, not the tick count.
pub const FLEET_DAY_S: f64 = 4_320.0;

/// The spec shared by every cell of the report.
pub fn fleet_spec(variant: SystemVariant, services: usize, days: f64, day_s: f64) -> FleetSpec {
    FleetSpec::new(crate::DEFAULT_SEED)
        .variant(variant)
        .services(services)
        .days(days)
        .day_seconds(day_s)
        // Clamp the control tick and usage sampling into short smoke
        // days so switching happens and allocated core-seconds are
        // observed; the full-scale day keeps the 300 s / 600 s
        // defaults (day_s/6 only binds below a 3,600 s day).
        .control_period_s(300.0_f64.min(day_s / 6.0))
        .usage_sample_s(600.0_f64.min(day_s / 6.0))
}

fn outcome_row(label: &str, threads: usize, out: &FleetOutcome, base_wall: f64) -> Vec<String> {
    let wall = out.wall.as_secs_f64();
    let svc_per_s = out.totals.services as f64 * out.epochs as f64 / wall.max(1e-9);
    vec![
        label.to_string(),
        threads.to_string(),
        format!("{wall:.1}"),
        format!("{:.2}", base_wall / wall.max(1e-9)),
        format!("{:.0}", svc_per_s),
        out.events.to_string(),
    ]
}

/// Fleet-scale report: wall-clock vs worker threads, then Amoeba vs
/// static provisioning aggregates. `threads` lists the worker counts to
/// sweep (the first entry is the speedup baseline).
pub fn fleet(services: usize, days: f64, day_s: f64, threads: &[usize]) -> Report {
    let mut r = Report::new(
        "fleet",
        "Thousand-service fleet: sharded-executor scaling and Amoeba-vs-static economics",
    );
    assert!(!threads.is_empty());

    // -- Section 1: wall-clock vs worker threads (identical results by
    // construction; telemetry off so serialisation doesn't pollute the
    // scaling signal).
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    r.line(format!(
        "{services} services x {days:.0} days ({day_s:.0} s/day), host has {host_cpus} CPU(s):"
    ));
    let cw = [10, 8, 9, 9, 12, 12];
    r.line(row(
        &[
            "section".into(),
            "threads".into(),
            "wall_s".into(),
            "speedup".into(),
            "svc*epoch/s".into(),
            "events".into(),
        ],
        &cw,
    ));

    let mut scaling = Vec::new();
    let mut base_wall = 0.0f64;
    let mut amoeba_out: Option<FleetOutcome> = None;
    for (i, &t) in threads.iter().enumerate() {
        let out = fleet_spec(SystemVariant::Amoeba, services, days, day_s)
            .build()
            .run_quiet(t);
        if i == 0 {
            base_wall = out.wall.as_secs_f64();
        }
        r.line(row(&outcome_row("scaling", t, &out, base_wall), &cw));
        scaling.push(json!({
            "threads": t,
            "wall_s": out.wall.as_secs_f64(),
            "speedup": base_wall / out.wall.as_secs_f64().max(1e-9),
            "events": out.events,
            "epochs": out.epochs,
        }));
        amoeba_out = Some(out);
    }

    // -- Section 2: Amoeba vs static IaaS (Nameko) on the identical
    // fleet. The Amoeba outcome is reused from the last scaling run —
    // thread count does not change results.
    let amoeba = amoeba_out.expect("at least one scaling run");
    let last_threads = *threads.last().unwrap();
    let nameko = fleet_spec(SystemVariant::Nameko, services, days, day_s)
        .build()
        .run_quiet(last_threads);

    r.line("");
    let ew = [10, 10, 12, 12, 12, 14, 10];
    r.line(row(
        &[
            "system".into(),
            "services".into(),
            "completed".into(),
            "violations".into(),
            "svc_in_viol".into(),
            "cpu_core_s".into(),
            "switches".into(),
        ],
        &ew,
    ));
    let mut systems = Vec::new();
    for (label, out) in [("Amoeba", &amoeba), ("Nameko", &nameko)] {
        let t = &out.totals;
        r.line(row(
            &[
                label.into(),
                t.services.to_string(),
                t.completed.to_string(),
                t.violations.to_string(),
                t.services_in_violation.to_string(),
                format!("{:.0}", t.core_seconds),
                t.switches.to_string(),
            ],
            &ew,
        ));
        systems.push(json!({
            "system": label,
            "services": t.services,
            "submitted": t.submitted,
            "completed": t.completed,
            "failed": t.failed,
            "violations": t.violations,
            "services_in_violation": t.services_in_violation,
            "core_seconds": t.core_seconds,
            "switches": t.switches,
            "rejected": out.rejected,
            "epochs": out.epochs,
        }));
    }
    r.line("");
    r.line(
        "scaling runs share one spec: results are thread-count-invariant \
         (digest-asserted in tests), so wall_s is the only moving column; \
         cpu_core_s = allocated core-seconds fleet-wide",
    );

    r.json = json!({
        "services": services,
        "days": days,
        "day_s": day_s,
        "host_cpus": host_cpus,
        "scaling": scaling,
        "systems": systems,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small enough for the suite, large enough that the fleet spreads
    /// over multiple cells and both systems complete real load.
    #[test]
    fn report_meets_the_acceptance_bar() {
        let r = fleet(24, 1.0, 90.0, &[1, 2]);
        let scaling = r.json["scaling"].as_array().unwrap();
        assert_eq!(scaling.len(), 2);
        for cell in scaling {
            assert!(cell["events"].as_u64().unwrap() > 0);
        }
        let systems = r.json["systems"].as_array().unwrap();
        assert_eq!(systems.len(), 2);
        for sys in systems {
            assert!(sys["completed"].as_u64().unwrap() > 0);
            assert_eq!(sys["services"].as_u64(), systems[0]["services"].as_u64());
        }
        // The static baseline never switches; Amoeba may.
        let nameko = &systems[1];
        assert_eq!(nameko["switches"].as_u64().unwrap(), 0);
        // The fleet-scale resource story: Amoeba allocates strictly
        // fewer core-seconds than peak-sized dedicated capacity.
        let amoeba = &systems[0];
        assert!(
            amoeba["core_seconds"].as_f64().unwrap() < nameko["core_seconds"].as_f64().unwrap(),
            "Amoeba did not save CPU over the static baseline"
        );
    }
}
