//! Extension experiments beyond the paper's figures: maintainer-side
//! billing, the vendor-level multi-tenant view, and ablations of design
//! choices DESIGN.md calls out (prewarm sizing, percentile estimator).

use crate::report::{row, Report};
use crate::scenarios::{
    foregrounds, run_cell, run_cell_traced, standard_scenario, DEFAULT_DAY_S, DEFAULT_SEED,
};
use amoeba_core::{Experiment, ServiceSetup, SystemVariant};
use amoeba_json::json;
use amoeba_metrics::{CostModel, LogHistogram};
use amoeba_sim::SimDuration;
use amoeba_workload::{DiurnalPattern, LoadTrace};

/// Maintainer-side billing: what each deployment strategy costs under a
/// public-cloud price card (IaaS rent vs Lambda-style per-invocation).
/// The paper argues the hybrid is cost-effective for diurnal services
/// (§I); this prices the actual runs.
pub fn cost(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "cost",
        "Maintainer cost per diurnal day: Amoeba vs pure IaaS vs pure serverless",
    );
    let model = CostModel::default();
    let w = [12, 12, 12, 12, 10];
    r.line(row(
        &[
            "Name".into(),
            "Amoeba".into(),
            "Nameko".into(),
            "OpenWhisk".into(),
            "saved".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    let results: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = foregrounds()
            .into_iter()
            .map(|b| {
                s.spawn(move || {
                    let amoeba = run_cell(SystemVariant::Amoeba, b.clone(), day_s, seed);
                    let nameko = run_cell(SystemVariant::Nameko, b.clone(), day_s, seed);
                    let ow = run_cell(SystemVariant::OpenWhisk, b.clone(), day_s, seed);
                    (b.name, amoeba, nameko, ow)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, amoeba, nameko, ow) in results {
        // Scale the compressed day's bill to a real 24h day so the
        // numbers read like a daily cloud bill.
        let scale = 86_400.0 / day_s;
        let c_amoeba = model.cost(&amoeba.services[0].billable) * scale;
        let c_nameko = model.cost(&nameko.services[0].billable) * scale;
        let c_ow = model.cost(&ow.services[0].billable) * scale;
        let saved = 1.0 - c_amoeba / c_nameko.max(1e-12);
        r.line(row(
            &[
                name.clone(),
                format!("${c_amoeba:.2}"),
                format!("${c_nameko:.2}"),
                format!("${c_ow:.2}"),
                format!("{:.1}%", saved * 100.0),
            ],
            &w,
        ));
        out.push(json!({
            "name": name,
            "amoeba": c_amoeba, "nameko": c_nameko, "openwhisk": c_ow,
        }));
    }
    r.json = json!(out);
    r
}

/// The vendor-level view the paper's design targets (§III: "Amoeba is a
/// system designed for Cloud vendors"): *all five* benchmarks managed
/// concurrently on one shared pool, each with its own diurnal trace,
/// switching independently while the §III impact check protects
/// co-tenants.
pub fn multi_tenant(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "multi-tenant",
        "All five benchmarks under one Amoeba deployment (shared pool)",
    );
    let build = |variant| {
        let services: Vec<ServiceSetup> = foregrounds()
            .into_iter()
            .map(|spec| ServiceSetup {
                trace: LoadTrace::new(DiurnalPattern::didi(), spec.peak_qps * 0.6, day_s),
                spec,
                background: false,
            })
            .collect();
        Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
            .services(services)
            .build()
            .run()
    };
    let (mut amoeba, nameko) = std::thread::scope(|s| {
        let a = s.spawn(|| build(SystemVariant::Amoeba));
        let n = s.spawn(|| build(SystemVariant::Nameko));
        (a.join().expect("run"), n.join().expect("run"))
    });
    let w = [12, 10, 12, 10, 10, 10];
    r.line(row(
        &[
            "Name".into(),
            "QoS".into(),
            "p95/target".into(),
            "switches".into(),
            "cpu".into(),
            "mem".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    let mut all_met = true;
    for i in 0..amoeba.services.len() {
        let base = nameko.services[i].usage;
        let fg = &mut amoeba.services[i];
        let p95 = fg.qos_latency().unwrap_or(0.0);
        let met = fg.qos_met();
        all_met &= met;
        let cpu = fg.usage.cpu_relative_to(&base);
        let mem = fg.usage.mem_relative_to(&base);
        r.line(row(
            &[
                fg.name.clone(),
                if met { "MET".into() } else { "VIOLATED".into() },
                format!("{:.3}", p95 / fg.qos_target_s),
                format!("{}", fg.switch_history.len()),
                format!("{cpu:.3}"),
                format!("{mem:.3}"),
            ],
            &w,
        ));
        out.push(json!({
            "name": fg.name,
            "qos_met": met,
            "p95_over_target": p95 / fg.qos_target_s,
            "switches": fg.switch_history.len(),
            "cpu_ratio": cpu,
            "mem_ratio": mem,
        }));
    }
    r.line(format!(
        "mean pool pressure (cpu/io/net): {:.2}/{:.2}/{:.2}; all QoS met: {all_met}",
        amoeba.mean_pressures[0], amoeba.mean_pressures[1], amoeba.mean_pressures[2]
    ));
    r.json = json!(out);
    r
}

/// §V-A's prewarm tradeoff: "too many prewarmed containers result in
/// expensive costs ... fewer ones result in potential QoS violation".
/// Sweeps a multiplier on the Eq. 7 count.
pub fn ablation_prewarm(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "ablation-prewarm",
        "Prewarm sizing: Eq. 7 multiplier vs violations and cost",
    );
    let w = [10, 14, 14, 12];
    r.line(row(
        &[
            "factor".into(),
            "sl-viol%".into(),
            "cold starts".into(),
            "cpu vs 1.0".into(),
        ],
        &w,
    ));
    let spec = amoeba_workload::benchmarks::float();
    let runs: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = [0.25, 0.5, 1.0, 2.0, 4.0]
            .into_iter()
            .map(|factor| {
                let spec = spec.clone();
                s.spawn(move || {
                    let exp = Experiment::builder(
                        SystemVariant::Amoeba,
                        SimDuration::from_secs_f64(day_s),
                        seed,
                    )
                    .services(standard_scenario(spec, day_s))
                    .prewarm_factor(factor)
                    .build();
                    (factor, exp.run())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    let base_cpu = runs
        .iter()
        .find(|(f, _)| (*f - 1.0).abs() < 1e-9)
        .map(|(_, r)| r.services[0].usage.core_seconds)
        .unwrap_or(1.0);
    let mut out = Vec::new();
    for (factor, run) in &runs {
        let fg = &run.services[0];
        let viol = fg.serverless_violation_ratio();
        r.line(row(
            &[
                format!("{factor:.2}"),
                format!("{:.2}", viol * 100.0),
                format!("{}", run.cold_starts),
                format!("{:.3}", fg.usage.core_seconds / base_cpu),
            ],
            &w,
        ));
        out.push(json!({
            "factor": factor,
            "serverless_violation": viol,
            "cold_starts": run.cold_starts,
            "cpu_vs_eq7": fg.usage.core_seconds / base_cpu,
        }));
    }
    r.json = json!(out);
    r
}

/// Percentile-estimator ablation: the exact sorted recorder vs the
/// constant-memory log-bucketed histogram, on real run data — the
/// accuracy/state tradeoff DESIGN.md notes for long-horizon deployments.
pub fn ablation_percentile(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "ablation-percentile",
        "Exact vs log-histogram percentile estimation on run latencies",
    );
    let mut run = run_cell(
        SystemVariant::Amoeba,
        amoeba_workload::benchmarks::matmul(),
        day_s,
        seed,
    );
    let samples = run.services[0].latency.sorted_seconds();
    let mut hist = LogHistogram::for_latency_seconds();
    for &s in &samples {
        hist.record(s);
    }
    let w = [8, 12, 14, 10];
    r.line(row(
        &[
            "q".into(),
            "exact s".into(),
            "histogram s".into(),
            "err%".into(),
        ],
        &w,
    ));
    let n = samples.len();
    let mut out = Vec::new();
    for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = samples[rank - 1];
        let est = hist.quantile(q).unwrap_or(0.0);
        let err = (est - exact).abs() / exact.max(1e-12);
        r.line(row(
            &[
                format!("{q}"),
                format!("{exact:.6}"),
                format!("{est:.6}"),
                format!("{:.2}", err * 100.0),
            ],
            &w,
        ));
        out.push(json!({"q": q, "exact": exact, "histogram": est, "err": err}));
    }
    r.line(format!(
        "samples: {n}; recorder state: {} B, histogram state: ~8.8 KB fixed",
        n * 8
    ));
    r.json = json!(out);
    r
}

/// A compressed work week: five diurnal weekdays followed by two quiet
/// weekend days (55 % / 45 % of weekday traffic). Amoeba should spend
/// visibly more of the weekend on the serverless platform.
pub fn week(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "week",
        "Amoeba across a compressed 7-day week (quiet weekend)",
    );
    let spec = amoeba_workload::benchmarks::float();
    let weekly = [1.0, 1.0, 1.0, 1.0, 1.0, 0.55, 0.45];
    let services = vec![ServiceSetup {
        trace: LoadTrace::new(DiurnalPattern::didi(), spec.peak_qps, day_s)
            .with_weekly_scale(weekly),
        spec,
        background: false,
    }];
    let horizon = SimDuration::from_secs_f64(day_s * 7.0);
    let run = Experiment::builder(SystemVariant::Amoeba, horizon, seed)
        .services(services)
        .build()
        .run();
    let fg = &run.services[0];
    let w = [8, 10, 14, 12];
    r.line(row(
        &[
            "day".into(),
            "scale".into(),
            "serverless %".into(),
            "mean cores".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // day indexes three parallel series
    for day in 0..7 {
        let from = amoeba_sim::SimTime::from_secs_f64(day as f64 * day_s);
        let to = amoeba_sim::SimTime::from_secs_f64((day + 1) as f64 * day_s);
        let sl_share = fg.mode_timeline.mean_step(from, to);
        let cores = fg.cores_timeline.mean_step(from, to);
        r.line(row(
            &[
                format!("{day}"),
                format!("{:.2}", weekly[day]),
                format!("{:.1}", sl_share * 100.0),
                format!("{cores:.1}"),
            ],
            &w,
        ));
        out.push(json!({
            "day": day,
            "scale": weekly[day],
            "serverless_share": sl_share,
            "mean_cores": cores,
        }));
    }
    r.line(format!(
        "switches over the week: {}",
        fg.switch_history.len()
    ));
    r.json = json!(out);
    r
}

/// Placement-policy ablation on the multi-node pool: the same mixed
/// workload over a 4-node fleet under round-robin, least-loaded and
/// warm-affinity placement. Contention is per node, so placement moves
/// both the tail latency and the cold-start count.
pub fn ablation_placement(seed: u64) -> Report {
    use amoeba_platform::{
        ClusterEvent, Effect, MultiNodePool, NodeId, Placement, Query, QueryId, TopologyConfig,
    };
    use amoeba_sim::{EventQueue, SimRng, SimTime};
    let mut r = Report::new(
        "ablation-placement",
        "Multi-node placement policies: p95 latency and cold starts (4 nodes)",
    );
    let w = [14, 12, 12, 12];
    r.line(row(
        &[
            "policy".into(),
            "p95 dd s".into(),
            "p95 float".into(),
            "cold".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    for (name, policy) in [
        ("round-robin", Placement::RoundRobin),
        ("least-loaded", Placement::LeastLoaded),
        ("warm-affinity", Placement::WarmAffinity),
    ] {
        let mut pool = MultiNodePool::from_topology(
            &TopologyConfig {
                node_scales: vec![1.0; 4],
                rtt_s: 0.0,
            },
            amoeba_platform::ServerlessConfig::default(),
            policy,
        );
        let dd = pool.register(amoeba_workload::benchmarks::dd());
        let fl = pool.register(amoeba_workload::benchmarks::float());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut queue: EventQueue<ClusterEvent> = EventQueue::new();
        let mut rec_dd = amoeba_metrics::LatencyRecorder::new();
        let mut rec_fl = amoeba_metrics::LatencyRecorder::new();
        // 120s of mixed steady traffic: dd at 30 qps, float at 60 qps.
        let _horizon = SimTime::from_secs(120);
        let mut arrivals: Vec<(SimTime, amoeba_platform::ServiceId, u64)> = Vec::new();
        let push_stream = |sid, qps: f64, base: u64, arrivals: &mut Vec<_>| {
            let gap_us = (1e6 / qps) as u64;
            let mut t = 0u64;
            let mut id = base;
            while t < 120_000_000 {
                arrivals.push((SimTime::from_micros(t), sid, id));
                id += 1;
                t += gap_us;
            }
        };
        push_stream(dd, 30.0, 0, &mut arrivals);
        push_stream(fl, 60.0, 1 << 32, &mut arrivals);
        arrivals.sort_by_key(|&(t, _, id)| (t, id));
        let mut next = 0usize;
        loop {
            let ev_t = queue.peek_time();
            let ar_t = arrivals.get(next).map(|&(t, _, _)| t);
            let take_event = match (ev_t, ar_t) {
                (None, None) => break,
                (Some(e), Some(a)) => e <= a,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            let effects = if take_event {
                let ev = queue.pop().unwrap();
                pool.handle(ev.payload, ev.time, &mut rng)
                    .into_iter()
                    .map(|e| (ev.time, e))
                    .collect::<Vec<_>>()
            } else {
                let (t, sid, id) = arrivals[next];
                next += 1;
                pool.submit(
                    Query {
                        id: QueryId(id),
                        service: sid,
                        submitted: t,
                    },
                    t,
                    &mut rng,
                )
                .into_iter()
                .map(|e| (t, e))
                .collect::<Vec<_>>()
            };
            for (now, e) in effects {
                match e {
                    Effect::Schedule { after, event } => {
                        queue.push(now + after, event);
                    }
                    Effect::Completed(o)
                        // Skip the warmup third of the run.
                        if o.query.submitted >= SimTime::from_secs(40) => {
                            if o.query.service == dd {
                                rec_dd.record(o.latency());
                            } else {
                                rec_fl.record(o.latency());
                            }
                        }
                    _ => {}
                }
            }
        }
        let p95_dd = rec_dd
            .quantile(0.95)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let p95_fl = rec_fl
            .quantile(0.95)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let cold: u64 = (0..pool.node_count())
            .map(|i| pool.node(NodeId::new(i)).cold_start_count())
            .sum();
        r.line(row(
            &[
                name.into(),
                format!("{p95_dd:.3}"),
                format!("{p95_fl:.3}"),
                format!("{cold}"),
            ],
            &w,
        ));
        out.push(json!({
            "policy": name, "p95_dd": p95_dd, "p95_float": p95_fl, "cold_starts": cold,
        }));
    }
    r.json = json!(out);
    r
}

/// One traced Amoeba run summarised from the telemetry stream alone —
/// switch count, time-in-mode, and violation attribution all come from
/// [`amoeba_telemetry::Trace::summary`], nothing from the `RunResult`.
pub fn trace_summary(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new("trace", "Telemetry trace summary of one Amoeba run");
    let spec = amoeba_workload::benchmarks::float();
    let (_run, trace) = run_cell_traced(SystemVariant::Amoeba, spec, day_s, seed);
    let summary = trace.summary();
    for line in summary.to_string().lines() {
        r.line(line.to_string());
    }
    let services: Vec<_> = summary
        .services
        .iter()
        .map(|(name, s)| {
            json!({
                "name": name.clone(),
                "switches": s.switches,
                "aborted": s.aborted,
                "time_in_iaas_s": s.time_in_iaas.as_secs_f64(),
                "time_in_serverless_s": s.time_in_serverless.as_secs_f64(),
                "violations_cold_start": s.violations_cold_start,
                "violations_queueing": s.violations_queueing,
                "violations_contention": s.violations_contention,
            })
        })
        .collect();
    r.json = json!({
        "events": trace.len(),
        "ticks": summary.ticks,
        "heartbeats": summary.heartbeats,
        "switches": summary.switches,
        "aborted_switches": summary.aborted_switches,
        "services": services,
    });
    r
}

/// All extension reports at default scale.
pub fn all() -> Vec<Report> {
    vec![
        cost(DEFAULT_DAY_S, DEFAULT_SEED),
        multi_tenant(DEFAULT_DAY_S, DEFAULT_SEED),
        ablation_prewarm(DEFAULT_DAY_S, DEFAULT_SEED),
        ablation_percentile(DEFAULT_DAY_S, DEFAULT_SEED),
        week(DEFAULT_DAY_S, DEFAULT_SEED),
        ablation_placement(DEFAULT_SEED),
        trace_summary(DEFAULT_DAY_S, DEFAULT_SEED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_matches_paper_economics() {
        let r = cost(240.0, 5);
        for row in r.json.as_array().unwrap() {
            let amoeba = row["amoeba"].as_f64().unwrap();
            let nameko = row["nameko"].as_f64().unwrap();
            let ow = row["openwhisk"].as_f64().unwrap();
            // The hybrid never costs more than always-on IaaS...
            assert!(amoeba <= nameko * 1.02, "{row}");
            // ...and pure serverless is the cheapest bill (it just breaks
            // QoS at peak, which the bill does not show — that is the
            // whole point of the paper's QoS-aware switching).
            assert!(ow <= amoeba * 1.02, "{row}");
        }
    }

    #[test]
    fn multi_tenant_meets_qos_and_switches() {
        let r = multi_tenant(300.0, 5);
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 5);
        let mut switched = 0;
        for row in rows {
            assert_eq!(row["qos_met"], true, "{row}");
            if row["switches"].as_u64().unwrap() > 0 {
                switched += 1;
            }
        }
        assert!(switched >= 3, "most tenants should switch: {rows:?}");
    }

    #[test]
    fn prewarm_sweep_shows_the_tradeoff() {
        let r = ablation_prewarm(300.0, 5);
        let rows = r.json.as_array().unwrap();
        let viol = |i: usize| rows[i]["serverless_violation"].as_f64().unwrap();
        let colds = |i: usize| rows[i]["cold_starts"].as_u64().unwrap();
        // Starving the prewarm (0.25x) must cause more cold starts than
        // the Eq. 7 sizing (index 2), and not fewer violations.
        assert!(colds(0) >= colds(2), "{rows:?}");
        assert!(viol(0) >= viol(2) * 0.9, "{rows:?}");
        // Over-prewarming (4x) must not reduce violations much further
        // but must not be cheaper than Eq. 7.
        let cpu4 = rows[4]["cpu_vs_eq7"].as_f64().unwrap();
        assert!(cpu4 >= 0.99, "over-prewarming can't be cheaper: {rows:?}");
    }

    #[test]
    fn placement_policies_differ_meaningfully() {
        let r = ablation_placement(5);
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        // Warm affinity minimises cold starts.
        let cold = |i: usize| rows[i]["cold_starts"].as_u64().unwrap();
        assert!(
            cold(2) <= cold(0) && cold(2) <= cold(1),
            "warm-affinity should cold-start least: {rows:?}"
        );
        // Everything completes with finite percentiles.
        for row in rows {
            assert!(row["p95_dd"].as_f64().unwrap() > 0.0);
            assert!(row["p95_float"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn week_spends_more_weekend_time_serverless() {
        let r = week(300.0, 5);
        let rows = r.json.as_array().unwrap();
        let weekday_sl: f64 = (0..5)
            .map(|d| rows[d]["serverless_share"].as_f64().unwrap())
            .sum::<f64>()
            / 5.0;
        let weekend_sl: f64 = (5..7)
            .map(|d| rows[d]["serverless_share"].as_f64().unwrap())
            .sum::<f64>()
            / 2.0;
        assert!(
            weekend_sl > weekday_sl,
            "weekend serverless share {weekend_sl} vs weekday {weekday_sl}"
        );
        // And the weekend allocation is correspondingly cheaper.
        let weekday_cores: f64 = (0..5)
            .map(|d| rows[d]["mean_cores"].as_f64().unwrap())
            .sum::<f64>()
            / 5.0;
        let weekend_cores: f64 = (5..7)
            .map(|d| rows[d]["mean_cores"].as_f64().unwrap())
            .sum::<f64>()
            / 2.0;
        assert!(
            weekend_cores < weekday_cores,
            "{weekend_cores} vs {weekday_cores}"
        );
    }

    #[test]
    fn histogram_percentiles_match_exact_within_precision() {
        let r = ablation_percentile(240.0, 5);
        for row in r.json.as_array().unwrap() {
            let err = row["err"].as_f64().unwrap();
            assert!(err < 0.05, "histogram error {err} too large: {row}");
        }
    }
}
