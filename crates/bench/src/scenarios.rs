//! Standard experiment scenarios (§VII-A).
//!
//! The paper evaluates each benchmark with a diurnal pattern "whose peak
//! load is set high enough to arise transformation", while `float`, `dd`
//! and `cloud_stor` run at lower peaks as background services that put "a
//! slight pressure" on the serverless platform. A full day is compressed
//! into [`DEFAULT_DAY_S`] simulated seconds so one diurnal cycle fits in
//! an experiment run (§II-A: the exact fluctuation pattern does not
//! affect the analysis).

use amoeba_core::{Experiment, ServiceSetup, SystemVariant};
use amoeba_sim::SimDuration;
use amoeba_workload::{benchmarks, DiurnalPattern, LoadTrace, MicroserviceSpec};

/// Compressed day length, simulated seconds.
pub const DEFAULT_DAY_S: f64 = 480.0;

/// Default experiment seed.
pub const DEFAULT_SEED: u64 = 42;

/// Fractions of each background service's nominal peak (§VII-A: "a lower
/// peak load ... by carefully designed parameters").
const BACKGROUND: [(&str, f64); 3] = [("float", 0.20), ("dd", 0.15), ("cloud_stor", 0.20)];

/// The three §VII-A background services on their reduced peaks —
/// shared by the standard scenario and the workflow report, so every
/// comparison runs against the same contention floor.
pub fn background_services(day_s: f64) -> Vec<ServiceSetup> {
    BACKGROUND
        .iter()
        .map(|&(name, frac)| {
            let mut spec = benchmarks::benchmark_by_name(name).expect("known benchmark");
            let peak = spec.peak_qps * frac;
            spec.name = format!("bg_{name}");
            spec.peak_qps = peak;
            ServiceSetup {
                trace: LoadTrace::new(DiurnalPattern::didi(), peak, day_s),
                spec,
                background: true,
            }
        })
        .collect()
}

/// The §VII-A setup: one foreground benchmark plus the three background
/// services, all on Didi-shaped diurnal traces over a compressed day.
pub fn standard_scenario(foreground: MicroserviceSpec, day_s: f64) -> Vec<ServiceSetup> {
    let mut setups = vec![ServiceSetup {
        trace: LoadTrace::new(DiurnalPattern::didi(), foreground.peak_qps, day_s),
        spec: foreground,
        background: false,
    }];
    setups.extend(background_services(day_s));
    setups
}

/// A ready experiment for (variant, foreground benchmark).
pub fn standard_experiment(
    variant: SystemVariant,
    foreground: MicroserviceSpec,
    day_s: f64,
    seed: u64,
) -> Experiment {
    Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
        .services(standard_scenario(foreground, day_s))
        .build()
}

/// Run one (variant, benchmark) cell of the evaluation grid.
pub fn run_cell(
    variant: SystemVariant,
    foreground: MicroserviceSpec,
    day_s: f64,
    seed: u64,
) -> amoeba_core::RunResult {
    standard_experiment(variant, foreground, day_s, seed).run()
}

/// [`run_cell`] with the telemetry stream captured — for analyses that
/// read the controller/switch record instead of the aggregate results.
/// The results half is bit-identical to [`run_cell`] at the same seed.
pub fn run_cell_traced(
    variant: SystemVariant,
    foreground: MicroserviceSpec,
    day_s: f64,
    seed: u64,
) -> (amoeba_core::RunResult, amoeba_telemetry::Trace) {
    standard_experiment(variant, foreground, day_s, seed).run_traced()
}

/// The five foreground benchmarks in Table III order.
pub fn foregrounds() -> Vec<MicroserviceSpec> {
    benchmarks::standard_benchmarks()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_has_one_foreground_three_background() {
        let s = standard_scenario(benchmarks::matmul(), DEFAULT_DAY_S);
        assert_eq!(s.len(), 4);
        assert!(!s[0].background);
        assert!(s[1..].iter().all(|x| x.background));
        assert_eq!(s[0].spec.name, "matmul");
    }

    #[test]
    fn background_peaks_are_slight_pressure() {
        let s = standard_scenario(benchmarks::float(), DEFAULT_DAY_S);
        for bg in &s[1..] {
            let nominal = benchmarks::benchmark_by_name(&bg.spec.name["bg_".len()..])
                .unwrap()
                .peak_qps;
            assert!(bg.spec.peak_qps <= nominal * 0.25, "{}", bg.spec.name);
        }
    }

    #[test]
    fn run_cell_smoke() {
        let r = run_cell(SystemVariant::Nameko, benchmarks::float(), 60.0, 1);
        assert_eq!(r.services.len(), 4);
        assert!(r.services[0].completed > 0);
    }
}
