//! Steady-state capacity probing.
//!
//! Fig. 3 and Fig. 15 both need the *actual* maximum load a deployment
//! sustains under a QoS target, found by driving the platform at a flat
//! rate and bisecting on the measured r-ile latency — the paper's
//! "λ_real achieved by enumeration".

use amoeba_core::{Experiment, ServiceSetup, SystemVariant};
use amoeba_platform::ServerlessConfig;
use amoeba_sim::SimDuration;
use amoeba_workload::{DiurnalPattern, LoadTrace, MicroserviceSpec};

/// How long each steady probe runs (simulated seconds).
const PROBE_S: f64 = 150.0;

/// Measured r-ile latency (seconds) of `spec` at a flat `qps`, deployed
/// per `variant` (use [`SystemVariant::OpenWhisk`] for serverless,
/// [`SystemVariant::Nameko`] for IaaS), with optional background
/// services also at flat rates. Returns `None` when too few queries
/// completed to call a percentile.
pub fn steady_qos_latency(
    spec: &MicroserviceSpec,
    qps: f64,
    variant: SystemVariant,
    serverless_cfg: ServerlessConfig,
    background: &[(MicroserviceSpec, f64)],
    seed: u64,
) -> Option<f64> {
    let day = PROBE_S * 1000.0; // flat anyway; keep the trace constant
    let mut services = vec![ServiceSetup {
        trace: LoadTrace::new(DiurnalPattern::flat(1.0), qps.max(0.01), day),
        spec: spec.clone(),
        background: false,
    }];
    for (bg, bg_qps) in background {
        services.push(ServiceSetup {
            trace: LoadTrace::new(DiurnalPattern::flat(1.0), bg_qps.max(0.01), day),
            spec: bg.clone(),
            background: true,
        });
    }
    // The warm pool needs time to grow to its steady LIFO size before
    // the percentile is representative (cold-start transients are a
    // start-up artefact at a *steady* rate, not part of the sustained
    // capacity the probe measures).
    let exp = Experiment::builder(variant, SimDuration::from_secs_f64(PROBE_S), seed)
        .services(services)
        .serverless_cfg(serverless_cfg)
        .warmup(SimDuration::from_secs(60))
        .build();
    let mut run = exp.run();
    let fg = &mut run.services[0];
    if fg.completed < 50 {
        return None;
    }
    fg.qos_latency()
}

/// A steady flat-rate probe returning (mean warm service latency of the
/// foreground, monitor mean pressures, final PCA weights) — the
/// calibration inputs Fig. 15 needs under the *same* conditions as the
/// λ_real enumeration.
pub fn steady_probe(
    spec: &MicroserviceSpec,
    qps: f64,
    serverless_cfg: ServerlessConfig,
    background: &[(MicroserviceSpec, f64)],
    seed: u64,
) -> (f64, [f64; 3], [f64; 3]) {
    let day = PROBE_S * 1000.0;
    let mut services = vec![ServiceSetup {
        trace: LoadTrace::new(DiurnalPattern::flat(1.0), qps.max(0.01), day),
        spec: spec.clone(),
        background: false,
    }];
    for (bg, bg_qps) in background {
        services.push(ServiceSetup {
            trace: LoadTrace::new(DiurnalPattern::flat(1.0), bg_qps.max(0.01), day),
            spec: bg.clone(),
            background: true,
        });
    }
    let exp = Experiment::builder(
        SystemVariant::OpenWhisk,
        SimDuration::from_secs_f64(PROBE_S * 1.5),
        seed,
    )
    .services(services)
    .serverless_cfg(serverless_cfg)
    .warmup(SimDuration::from_secs(20))
    .build();
    let run = exp.run();
    let bd = &run.services[0].breakdown;
    let mean_service = bd.auth_s + bd.code_load_s + bd.result_post_s + bd.exec_s;
    (mean_service, run.mean_pressures, run.final_weights)
}

/// The largest flat load (qps) at which `spec` still meets its QoS on
/// the given deployment — bisection over [`steady_qos_latency`].
pub fn max_steady_qps(
    spec: &MicroserviceSpec,
    variant: SystemVariant,
    serverless_cfg: ServerlessConfig,
    background: &[(MicroserviceSpec, f64)],
    lo_hint: f64,
    hi_hint: f64,
    seed: u64,
) -> f64 {
    let meets = |qps: f64| -> bool {
        match steady_qos_latency(spec, qps, variant, serverless_cfg, background, seed) {
            Some(l) => l <= spec.qos_target_s,
            None => true, // too little traffic to violate anything
        }
    };
    let mut lo = lo_hint.max(0.1);
    let mut hi = hi_hint;
    if !meets(lo) {
        return 0.0;
    }
    // Expand hi until it fails (or give up at 4x the hint).
    let mut cap = hi_hint * 4.0;
    while meets(hi) {
        lo = hi;
        hi *= 1.5;
        if hi > cap {
            return lo;
        }
    }
    let _ = &mut cap;
    // Bisect to ~2% relative.
    for _ in 0..12 {
        if (hi - lo) / hi < 0.02 {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_workload::benchmarks;

    #[test]
    fn low_load_meets_qos_on_both_platforms() {
        let spec = benchmarks::float();
        let cfg = ServerlessConfig::default();
        let sl = steady_qos_latency(&spec, 3.0, SystemVariant::OpenWhisk, cfg, &[], 1).unwrap();
        assert!(sl <= spec.qos_target_s, "serverless p95 {sl}");
        let ia = steady_qos_latency(&spec, 3.0, SystemVariant::Nameko, cfg, &[], 1).unwrap();
        assert!(ia <= spec.qos_target_s, "iaas p95 {ia}");
        // Serverless includes the per-query overheads: strictly slower.
        assert!(sl > ia, "serverless {sl} vs iaas {ia}");
    }

    #[test]
    fn overload_violates_qos_on_serverless() {
        let spec = benchmarks::dd();
        let cfg = ServerlessConfig::default();
        // dd at its full peak saturates the disk in the shared pool.
        let l = steady_qos_latency(&spec, spec.peak_qps, SystemVariant::OpenWhisk, cfg, &[], 2)
            .unwrap();
        assert!(
            l > spec.qos_target_s,
            "p95 {l} vs target {}",
            spec.qos_target_s
        );
    }

    #[test]
    fn capacity_search_is_between_zero_and_hint_expansion() {
        let spec = benchmarks::float();
        let cfg = ServerlessConfig::default();
        let max = max_steady_qps(
            &spec,
            SystemVariant::OpenWhisk,
            cfg,
            &[],
            2.0,
            spec.peak_qps,
            3,
        );
        assert!(max > 5.0, "max {max}");
        // And the found point indeed meets QoS.
        let l =
            steady_qos_latency(&spec, max * 0.95, SystemVariant::OpenWhisk, cfg, &[], 3).unwrap();
        assert!(l <= spec.qos_target_s * 1.1, "p95 {l}");
    }
}
