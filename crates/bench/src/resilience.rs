//! The `resilience` extension report (beyond the paper): sweep a
//! deterministic fault plan (`amoeba-chaos`) over the §VII-A float
//! scenario and compare how each system variant degrades. Amoeba's
//! switch protocol is built so that every failure mode has a bounded
//! recovery — lost acks retry then roll back with the router still on
//! the old platform, crashed containers re-queue their in-flight
//! query, failed boots re-boot — so its QoS violations should grow no
//! faster than the baselines' as the fault rate rises.

use std::collections::BTreeMap;

use crate::report::{row, Report};
use crate::scenarios::standard_scenario;
use amoeba_chaos::FaultPlan;
use amoeba_core::{Experiment, MonitorConfig, RunResult, SystemVariant};
use amoeba_json::json;
use amoeba_sim::SimDuration;
use amoeba_telemetry::Trace;
use amoeba_workload::benchmarks;

/// Multipliers on [`FaultPlan::mixed`]'s rates. Level 0 is the
/// fault-free control (the injector is attached but schedules nothing).
const LEVELS: [f64; 3] = [0.0, 1.0, 2.0];

/// Runs averaged per (variant, level) cell, seeds `seed..seed+SEEDS`.
const SEEDS: u64 = 2;

/// The systems under comparison: Amoeba and its proactive extension
/// against the all-serverless baseline and the no-prewarm ablation.
const VARIANTS: [SystemVariant; 4] = [
    SystemVariant::Amoeba,
    SystemVariant::AmoebaPro,
    SystemVariant::OpenWhisk,
    SystemVariant::AmoebaNoP,
];

/// One traced run of the float scenario under a scaled mixed plan.
pub fn resilience_cell(
    variant: SystemVariant,
    day_s: f64,
    seed: u64,
    level: f64,
) -> (RunResult, Trace) {
    Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
        .services(standard_scenario(benchmarks::float(), day_s))
        .fault_plan(FaultPlan::mixed().scaled(level))
        // The hardened monitor: a short median pre-filter so injected
        // outliers and outage edges cannot yank the pressure estimate.
        .monitor_cfg(MonitorConfig {
            median_window: 3,
            ..MonitorConfig::default()
        })
        .build()
        .run_traced()
}

/// Per-cell aggregates over the comparison seeds.
#[derive(Default)]
struct CellTotals {
    submitted: usize,
    completed: usize,
    failed: usize,
    violations: u64,
    failed_switches: u64,
    wasted_prewarms: u64,
    faults: u64,
    recoveries: u64,
    recovery_s_sum: f64,
}

/// Resilience under injected faults: violations, failed switches and
/// recovery behaviour across the fault-rate sweep.
pub fn resilience(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "resilience",
        "Fault injection: QoS and recovery under a chaos sweep",
    );

    let jobs: Vec<(SystemVariant, f64, u64)> = LEVELS
        .iter()
        .flat_map(|&lvl| {
            VARIANTS
                .iter()
                .flat_map(move |&v| (0..SEEDS).map(move |i| (v, lvl, seed + i)))
        })
        .collect();
    let runs: Vec<(SystemVariant, f64, u64, RunResult, Trace)> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(v, lvl, sd)| s.spawn(move || resilience_cell(v, day_s, sd, lvl)))
            .collect();
        jobs.iter()
            .zip(handles)
            .map(|(&(v, lvl, sd), h)| {
                let (run, trace) = h.join().unwrap();
                (v, lvl, sd, run, trace)
            })
            .collect()
    });

    r.line(format!(
        "Mixed fault plan (container crashes, boot failures, lost acks, \
         meter outages/outliers, pressure spikes) scaled by level, \
         {SEEDS} seeds per cell, {day_s:.0} s day:"
    ));
    let cw = [12, 6, 10, 8, 8, 9, 10, 8, 11];
    r.line(row(
        &[
            "system".into(),
            "level".into(),
            "viol(fg)".into(),
            "failed".into(),
            "aborts".into(),
            "wasted".into(),
            "faults".into(),
            "recov".into(),
            "recov_s".into(),
        ],
        &cw,
    ));

    // Key by (level index, variant label) so rows group by level.
    let mut totals: BTreeMap<(usize, &'static str), CellTotals> = BTreeMap::new();
    for (v, lvl, _sd, run, trace) in &runs {
        let li = LEVELS.iter().position(|x| x == lvl).expect("known level");
        let t = totals.entry((li, v.label())).or_default();
        let fg_name = &run.services[0].name;
        let summary = trace.summary();
        t.violations += summary.services[fg_name].violations();
        for s in &run.services {
            t.submitted += s.submitted;
            t.completed += s.completed;
            t.failed += s.failed;
        }
        t.failed_switches += run.failed_switches;
        t.wasted_prewarms += run.wasted_prewarms;
        t.faults += trace.faults().count() as u64;
        for rec in trace.recoveries() {
            t.recoveries += 1;
            t.recovery_s_sum += rec.after_s;
        }
    }

    let mut cells = Vec::new();
    for (li, &lvl) in LEVELS.iter().enumerate() {
        for v in VARIANTS {
            let t = &totals[&(li, v.label())];
            let mean_recovery = if t.recoveries > 0 {
                t.recovery_s_sum / t.recoveries as f64
            } else {
                0.0
            };
            r.line(row(
                &[
                    v.label().into(),
                    format!("{lvl:.1}"),
                    t.violations.to_string(),
                    t.failed.to_string(),
                    t.failed_switches.to_string(),
                    t.wasted_prewarms.to_string(),
                    t.faults.to_string(),
                    t.recoveries.to_string(),
                    format!("{mean_recovery:.2}"),
                ],
                &cw,
            ));
            cells.push(json!({
                "variant": v.label(),
                "level": lvl,
                "violations_fg": t.violations,
                "submitted": t.submitted,
                "completed": t.completed,
                "failed": t.failed,
                "failed_switches": t.failed_switches,
                "wasted_prewarms": t.wasted_prewarms,
                "faults_injected": t.faults,
                "recoveries": t.recoveries,
                "mean_recovery_s": mean_recovery,
            }));
        }
        r.line("");
    }
    r.line(
        "failed = queries lost to crash-drops; aborts = switches rolled \
         back after ack-retry exhaustion; wasted = prewarmed containers \
         discarded by retries/rollbacks; recov_s = mean time to recovery",
    );
    r.json = json!({
        "levels": (LEVELS.iter().map(|&l| json!(l)).collect::<Vec<_>>()),
        "seeds": SEEDS,
        "cells": cells,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{DEFAULT_DAY_S, DEFAULT_SEED};

    #[test]
    fn report_meets_the_acceptance_bar() {
        let r = resilience(DEFAULT_DAY_S, DEFAULT_SEED);
        let cells = r.json["cells"].as_array().unwrap();
        assert_eq!(cells.len(), LEVELS.len() * VARIANTS.len());

        let get = |lvl: f64, variant: &str| {
            cells
                .iter()
                .find(|c| c["level"].as_f64() == Some(lvl) && c["variant"] == variant)
                .unwrap()
        };
        for &lvl in &LEVELS {
            // Conservation holds in every cell: nothing vanishes, losses
            // are explicit.
            for v in VARIANTS {
                let c = get(lvl, v.label());
                assert_eq!(
                    c["submitted"].as_u64().unwrap(),
                    c["completed"].as_u64().unwrap() + c["failed"].as_u64().unwrap(),
                    "{c}"
                );
            }
            // Amoeba absorbs faults at least as well as the serverless
            // baseline and the no-prewarm ablation at every fault rate.
            let amoeba = get(lvl, "Amoeba")["violations_fg"].as_u64().unwrap();
            let ow = get(lvl, "OpenWhisk")["violations_fg"].as_u64().unwrap();
            let nop = get(lvl, "Amoeba-NoP")["violations_fg"].as_u64().unwrap();
            assert!(
                amoeba <= ow,
                "level {lvl}: Amoeba {amoeba} vs OpenWhisk {ow}"
            );
            assert!(amoeba <= nop, "level {lvl}: Amoeba {amoeba} vs NoP {nop}");
        }
        // The fault-free control injects nothing; the sweep does.
        for v in VARIANTS {
            assert_eq!(get(0.0, v.label())["faults_injected"].as_u64(), Some(0));
        }
        let injected = get(2.0, "Amoeba")["faults_injected"].as_u64().unwrap();
        assert!(injected > 0, "level 2 must inject faults");
    }

    #[test]
    fn cells_are_deterministic() {
        let (a, ta) = resilience_cell(SystemVariant::Amoeba, 240.0, 7, 1.0);
        let (b, tb) = resilience_cell(SystemVariant::Amoeba, 240.0, 7, 1.0);
        for (x, y) in a.services.iter().zip(&b.services) {
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.failed, y.failed);
        }
        assert_eq!(a.failed_switches, b.failed_switches);
        assert_eq!(ta.to_jsonl(), tb.to_jsonl(), "traces bit-identical");
    }
}
