//! §II investigation experiments: Table III, Fig. 2, Fig. 3, Fig. 4.

use crate::report::{row, Report};
use crate::scenarios::{run_cell, DEFAULT_DAY_S, DEFAULT_SEED};
use crate::steady::max_steady_qps;
use amoeba_core::SystemVariant;
use amoeba_json::json;
use amoeba_platform::{required_cores, IaasConfig, NodeConfig, ServerlessConfig};
use amoeba_workload::benchmarks::{self, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS};
use amoeba_workload::ResourceKind;

/// Table II: the simulated platform configuration.
pub fn table2() -> Report {
    let mut r = Report::new("table2", "Hardware and software setup (simulated)");
    let node = NodeConfig::default();
    r.line(node.table_ii());
    let sl = ServerlessConfig::default();
    r.line(format!(
        "Serverless | container: {:.0} MB, keep-alive: {}, cold start median: {:.1}s, tenant cap: {}",
        sl.container_memory_mb, sl.keep_alive, sl.cold_start_median_s, sl.tenant_container_cap
    ));
    let ia = IaasConfig::default();
    r.line(format!(
        "IaaS       | VM: {} cores / {:.0} GB, boot: {:.0}s, sizing headroom: {:.2}",
        ia.cores_per_vm,
        ia.vm_memory_mb / 1024.0,
        ia.boot_time_s,
        ia.sizing_headroom
    ));
    r.json = json!({
        "cores": node.cores,
        "dram_mb": node.dram_mb,
        "disk_bw_mbps": node.disk_bw_mbps,
        "nic_bw_mbps": node.nic_bw_mbps,
    });
    r
}

/// Table III: benchmark sensitivity classification, derived from the
/// demand vectors (a unit test pins this to the paper's table).
pub fn table3() -> Report {
    let mut r = Report::new("table3", "The benchmarks used in the experiments");
    let w = [12, 8, 8, 10, 9];
    r.line(row(
        &[
            "Name".into(),
            "CPU".into(),
            "Memory".into(),
            "Disk I/O".into(),
            "Network".into(),
        ],
        &w,
    ));
    let mut rows = Vec::new();
    for b in benchmarks::standard_benchmarks() {
        let s = |k: ResourceKind| {
            b.demand
                .sensitivity(k, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS)
                .label()
                .to_string()
        };
        let cells = [
            b.name.clone(),
            s(ResourceKind::Cpu),
            s(ResourceKind::Memory),
            s(ResourceKind::Io),
            s(ResourceKind::Network),
        ];
        r.line(row(&cells, &w));
        rows.push(json!({
            "name": b.name, "cpu": cells[1], "memory": cells[2],
            "io": cells[3], "network": cells[4],
        }));
    }
    r.json = json!(rows);
    r
}

/// Fig. 2: lowest / average / highest CPU utilisation of each benchmark
/// under pure IaaS deployment (paper: 2.6–15.1 % / 13.6–70.9 % /
/// 24.1–95.1 %).
pub fn fig2(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "fig2",
        "CPU utilisation of the benchmarks with IaaS-based deployment",
    );
    let w = [12, 8, 8, 8];
    r.line(row(
        &["Name".into(), "min%".into(), "avg%".into(), "max%".into()],
        &w,
    ));
    let mut rows = Vec::new();
    let results: Vec<_> = std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = benchmarks::standard_benchmarks()
            .into_iter()
            .map(|b| {
                s.spawn(move || {
                    (
                        b.name.clone(),
                        run_cell(SystemVariant::Nameko, b, day_s, seed),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, run) in results {
        let u = &run.services[0].usage;
        r.line(row(
            &[
                name.clone(),
                format!("{:.1}", u.min_utilization * 100.0),
                format!("{:.1}", u.avg_utilization * 100.0),
                format!("{:.1}", u.max_utilization * 100.0),
            ],
            &w,
        ));
        rows.push(json!({
            "name": name,
            "min": u.min_utilization, "avg": u.avg_utilization, "max": u.max_utilization,
        }));
    }
    r.json = json!(rows);
    r
}

/// Fig. 3: achievable serverless peak load normalised to the IaaS peak
/// with the same resources (paper: 73.9–89.2 %).
pub fn fig3(seed: u64) -> Report {
    let mut r = Report::new(
        "fig3",
        "Serverless peak load normalised to IaaS peak with the same resources",
    );
    let w = [12, 12, 12, 10];
    r.line(row(
        &[
            "Name".into(),
            "IaaS qps".into(),
            "SL qps".into(),
            "ratio".into(),
        ],
        &w,
    ));
    let iaas_cfg = IaasConfig::default();
    let mut rows = Vec::new();
    let results: Vec<_> = std::thread::scope(|scope| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = benchmarks::standard_benchmarks()
            .into_iter()
            .map(|b| {
                scope.spawn(move || {
                    // IaaS peak with its just-enough sizing.
                    let iaas_peak = max_steady_qps(
                        &b,
                        SystemVariant::Nameko,
                        ServerlessConfig::default(),
                        &[],
                        b.peak_qps * 0.3,
                        b.peak_qps * 1.2,
                        seed,
                    );
                    // Serverless restricted to the *same rented*
                    // footprint: the cores and memory of the IaaS VM
                    // group. Disk and NIC stay at the node's full rates —
                    // Table II's deployments sit on identical hardware,
                    // and what a maintainer rents is compute/memory, not
                    // the NVMe.
                    let cores = required_cores(&b, &iaas_cfg) as f64;
                    let base = NodeConfig::default();
                    let vms = (cores / iaas_cfg.cores_per_vm as f64).ceil();
                    let mut cfg = ServerlessConfig::default();
                    cfg.node = NodeConfig {
                        cores,
                        dram_mb: vms * iaas_cfg.vm_memory_mb,
                        disk_bw_mbps: base.disk_bw_mbps,
                        nic_bw_mbps: base.nic_bw_mbps,
                    };
                    cfg.pool_memory_mb = vms * iaas_cfg.vm_memory_mb;
                    cfg.tenant_container_cap = cfg.memory_container_cap();
                    let sl_peak = max_steady_qps(
                        &b,
                        SystemVariant::OpenWhisk,
                        cfg,
                        &[],
                        1.0,
                        b.peak_qps * 1.2,
                        seed,
                    );
                    (b.name, iaas_peak, sl_peak)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, iaas_peak, sl_peak) in results {
        let ratio = if iaas_peak > 0.0 {
            sl_peak / iaas_peak
        } else {
            0.0
        };
        r.line(row(
            &[
                name.clone(),
                format!("{iaas_peak:.1}"),
                format!("{sl_peak:.1}"),
                format!("{:.1}%", ratio * 100.0),
            ],
            &w,
        ));
        rows.push(json!({"name": name, "iaas_peak": iaas_peak, "serverless_peak": sl_peak, "ratio": ratio}));
    }
    r.json = json!(rows);
    r
}

/// Fig. 4: the serverless latency breakdown (paper: extra overheads take
/// 10–45 % of end-to-end latency, queueing and cold start excluded).
pub fn fig4(seed: u64) -> Report {
    let mut r = Report::new(
        "fig4",
        "Latency breakdown of queries with serverless-based deployment",
    );
    let w = [12, 9, 10, 9, 9, 10];
    r.line(row(
        &[
            "Name".into(),
            "auth ms".into(),
            "load ms".into(),
            "exec ms".into(),
            "post ms".into(),
            "overhead%".into(),
        ],
        &w,
    ));
    let mut rows = Vec::new();
    for b in benchmarks::standard_benchmarks() {
        // A light flat load on an otherwise idle pool: warm queries, no
        // co-tenant contention, matching the paper's breakdown
        // experiment (Fig. 4 excludes queueing and cold start).
        let mut spec = b.clone();
        spec.peak_qps = (b.peak_qps * 0.2).max(1.0);
        let services = vec![amoeba_core::ServiceSetup {
            trace: amoeba_workload::LoadTrace::new(
                amoeba_workload::DiurnalPattern::flat(1.0),
                spec.peak_qps,
                DEFAULT_DAY_S,
            ),
            spec: spec.clone(),
            background: false,
        }];
        // Run with the memory sink attached and rebuild the breakdown
        // from the trace's warm samples — the report is a pure consumer
        // of the telemetry stream.
        let (_run, trace) = amoeba_core::Experiment::builder(
            SystemVariant::OpenWhisk,
            amoeba_sim::SimDuration::from_secs_f64(DEFAULT_DAY_S / 4.0),
            seed,
        )
        .services(services)
        .build()
        .run_traced();
        let bd = amoeba_core::BreakdownMeans::from_warm_samples(
            trace.warm_samples().filter(|s| s.service == 0),
        );
        let bd = &bd;
        r.line(row(
            &[
                b.name.clone(),
                format!("{:.1}", bd.auth_s * 1000.0),
                format!("{:.1}", bd.code_load_s * 1000.0),
                format!("{:.1}", bd.exec_s * 1000.0),
                format!("{:.1}", bd.result_post_s * 1000.0),
                format!("{:.1}", bd.overhead_fraction() * 100.0),
            ],
            &w,
        ));
        rows.push(json!({
            "name": b.name, "auth_s": bd.auth_s, "code_load_s": bd.code_load_s,
            "exec_s": bd.exec_s, "result_post_s": bd.result_post_s,
            "overhead_fraction": bd.overhead_fraction(),
        }));
    }
    r.json = json!(rows);
    r
}

/// All §II investigation reports at the default scale.
pub fn all() -> Vec<Report> {
    vec![
        table2(),
        table3(),
        fig2(DEFAULT_DAY_S, DEFAULT_SEED),
        fig3(DEFAULT_SEED),
        fig4(DEFAULT_SEED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let r = table3();
        let text = r.render();
        assert!(text.contains("float"));
        assert!(text.contains("high"));
        // dd row: medium CPU, high IO.
        let dd_line = r.lines.iter().find(|l| l.contains("dd")).unwrap();
        assert!(dd_line.contains("medium") && dd_line.contains("high"));
    }

    #[test]
    fn fig2_utilization_bands() {
        let r = fig2(120.0, 5);
        // Five benchmark rows plus a header.
        assert_eq!(r.lines.len(), 6);
        let rows = r.json.as_array().unwrap();
        for row in rows {
            let min = row["min"].as_f64().unwrap();
            let avg = row["avg"].as_f64().unwrap();
            let max = row["max"].as_f64().unwrap();
            assert!(min <= avg && avg <= max, "{row}");
            assert!(max <= 1.0);
            // The paper's point: IaaS leaves plenty idle on a diurnal
            // trace — average utilisation well below 100 %.
            assert!(avg < 0.85, "avg {avg}");
        }
    }

    #[test]
    fn fig4_overhead_fraction_in_band() {
        let r = fig4(5);
        for row in r.json.as_array().unwrap() {
            let f = row["overhead_fraction"].as_f64().unwrap();
            assert!((0.05..=0.50).contains(&f), "{row}");
        }
    }
}
