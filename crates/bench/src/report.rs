//! Experiment output: human-readable text plus machine-readable JSON.

use amoeba_json::Value;

/// One experiment's rendered result.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("fig2", "table3", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The text body (tables, series).
    pub lines: Vec<String>,
    /// Structured result for regression diffing.
    pub json: Value,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            lines: Vec::new(),
            json: Value::Null,
        }
    }

    /// Append one output line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Render the full text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// Format a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_header_and_lines() {
        let mut r = Report::new("fig2", "CPU utilisation");
        r.line("a");
        r.line("b");
        let text = r.render();
        assert!(text.contains("fig2"));
        assert!(text.contains("CPU utilisation"));
        assert!(text.ends_with("a\nb\n"));
    }

    #[test]
    fn row_alignment() {
        let s = row(&["x".into(), "42".into()], &[3, 5]);
        assert_eq!(s, "  x     42");
    }
}
