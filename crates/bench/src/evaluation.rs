//! §VII-B evaluation: Fig. 10 (latency CDFs), Fig. 11 (resource usage),
//! Fig. 12 (switch timeline), Fig. 13 (usage timeline).

use crate::report::{row, Report};
use crate::scenarios::{foregrounds, run_cell, DEFAULT_DAY_S, DEFAULT_SEED};
use amoeba_core::{DeployMode, RunResult, SystemVariant};
use amoeba_json::json;
use amoeba_metrics::Cdf;
use amoeba_sim::{SimDuration, SimTime};

/// Run the (benchmark × variant) grid in parallel.
fn run_grid(variants: &[SystemVariant], day_s: f64, seed: u64) -> Vec<(String, Vec<RunResult>)> {
    std::thread::scope(|s| {
        // Collecting the handles before joining is load-bearing:
        // it spawns every job before any join, which is what runs
        // the cells in parallel rather than one at a time.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = foregrounds()
            .into_iter()
            .map(|b| {
                let variants = variants.to_vec();
                s.spawn(move || {
                    let name = b.name.clone();
                    let runs: Vec<RunResult> = variants
                        .iter()
                        .map(|&v| run_cell(v, b.clone(), day_s, seed))
                        .collect();
                    (name, runs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    })
}

/// Fig. 10: cumulative distribution of latencies normalised to the QoS
/// target, for Amoeba vs Nameko vs OpenWhisk. The paper's reading: the
/// 95 %-ile is under 1.0 for Nameko and Amoeba; OpenWhisk violates for
/// the contention-heavy benchmarks; Amoeba's curve tracks OpenWhisk at
/// short latencies and Nameko in the tail.
pub fn fig10(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "fig10",
        "CDF of latencies normalised to QoS targets (Amoeba / Nameko / OpenWhisk)",
    );
    let variants = [
        SystemVariant::Amoeba,
        SystemVariant::Nameko,
        SystemVariant::OpenWhisk,
    ];
    let grid = run_grid(&variants, day_s, seed);
    let w = [12, 12, 14, 10];
    let mut out = Vec::new();
    for (name, mut runs) in grid {
        r.line(format!("-- {name} --"));
        r.line(row(
            &[
                "system".into(),
                "p95/target".into(),
                "violations%".into(),
                "queries".into(),
            ],
            &w,
        ));
        let mut per_variant = Vec::new();
        for (v, run) in variants.iter().zip(runs.iter_mut()) {
            let target = run.services[0].qos_target_s;
            let fg = &mut run.services[0];
            let p95 = fg.qos_latency().unwrap_or(0.0);
            let viol = fg.violation_ratio();
            r.line(row(
                &[
                    v.label().into(),
                    format!("{:.3}", p95 / target),
                    format!("{:.2}", viol * 100.0),
                    format!("{}", fg.completed),
                ],
                &w,
            ));
            let samples = fg.latency.sorted_seconds();
            let cdf = Cdf::normalized(&samples, target);
            let pts: Vec<_> = cdf
                .downsample(25)
                .iter()
                .map(|p| json!({"x": p.x, "p": p.p}))
                .collect();
            per_variant.push(json!({
                "system": v.label(),
                "p95_over_target": p95 / target,
                "violation_ratio": viol,
                "cdf": pts,
            }));
        }
        out.push(json!({"benchmark": name, "systems": per_variant}));
    }
    r.json = json!(out);
    r
}

/// Fig. 11: resource usage of Amoeba normalised to Nameko (paper: CPU
/// −29.1 % … −72.9 %, memory −30.2 % … −84.9 %).
pub fn fig11(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new(
        "fig11",
        "Normalised resource usage of the benchmarks with Amoeba vs Nameko",
    );
    let variants = [SystemVariant::Amoeba, SystemVariant::Nameko];
    let grid = run_grid(&variants, day_s, seed);
    let w = [12, 10, 10, 12, 12];
    r.line(row(
        &[
            "Name".into(),
            "CPU".into(),
            "Memory".into(),
            "CPU saved".into(),
            "Mem saved".into(),
        ],
        &w,
    ));
    let mut out = Vec::new();
    for (name, runs) in grid {
        let amoeba = &runs[0].services[0].usage;
        let nameko = &runs[1].services[0].usage;
        let cpu = amoeba.cpu_relative_to(nameko);
        let mem = amoeba.mem_relative_to(nameko);
        r.line(row(
            &[
                name.clone(),
                format!("{cpu:.3}"),
                format!("{mem:.3}"),
                format!("{:.1}%", (1.0 - cpu) * 100.0),
                format!("{:.1}%", (1.0 - mem) * 100.0),
            ],
            &w,
        ));
        out.push(json!({"name": name, "cpu_ratio": cpu, "mem_ratio": mem}));
    }
    r.json = json!(out);
    r
}

fn mode_char(m: f64) -> char {
    if m >= 0.5 {
        's' // serverless
    } else {
        'I' // IaaS
    }
}

/// Fig. 12: the deploy-mode switch timeline of `float` and `dd` — load
/// curve, active mode, and the switch points with the load at which each
/// switch happened (the paper's black/blue stars). The up- and
/// down-switch loads are not identical.
pub fn fig12(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new("fig12", "Timeline of the deploy mode switch with Amoeba");
    let mut out = Vec::new();
    for name in ["float", "dd"] {
        let spec = amoeba_workload::benchmarks::benchmark_by_name(name).unwrap();
        let run = run_cell(SystemVariant::Amoeba, spec, day_s, seed);
        let fg = &run.services[0];
        r.line(format!("-- {name} --"));
        let step = SimDuration::from_secs_f64(day_s / 48.0);
        let grid = fg
            .load_timeline
            .resample(SimTime::ZERO, SimTime::from_secs_f64(day_s), step);
        let modes = fg
            .mode_timeline
            .resample(SimTime::ZERO, SimTime::from_secs_f64(day_s), step);
        let peak = grid.iter().map(|&(_, v)| v).fold(0.0, f64::max).max(1.0);
        for ((t, load), (_, m)) in grid.iter().zip(&modes) {
            let bar = "#".repeat((load / peak * 30.0).round() as usize);
            r.line(format!(
                "t={:>7.0}s [{}] load={:>6.1} {}",
                t.as_secs_f64(),
                mode_char(*m),
                load,
                bar
            ));
        }
        let mut switches = Vec::new();
        for (t, mode, load) in &fg.switch_history {
            let dir = match mode {
                DeployMode::Serverless => "-> serverless",
                DeployMode::Iaas => "-> IaaS",
            };
            r.line(format!(
                "  * switch at t={:.1}s {} (load {:.1} qps)",
                t.as_secs_f64(),
                dir,
                load
            ));
            switches.push(json!({
                "t_s": t.as_secs_f64(),
                "to": format!("{mode:?}"),
                "load_qps": load,
            }));
        }
        out.push(json!({"benchmark": name, "switches": switches}));
    }
    r.json = json!(out);
    r
}

/// Fig. 13: the resource-usage timeline of `float` and `dd` with Amoeba
/// (the paper's two patterns: step changes for tight-QoS services,
/// smooth tracking otherwise).
pub fn fig13(day_s: f64, seed: u64) -> Report {
    let mut r = Report::new("fig13", "Timeline of resource usage variation with Amoeba");
    let mut out = Vec::new();
    for name in ["float", "dd"] {
        let spec = amoeba_workload::benchmarks::benchmark_by_name(name).unwrap();
        let run = run_cell(SystemVariant::Amoeba, spec, day_s, seed);
        let fg = &run.services[0];
        r.line(format!("-- {name} --"));
        let step = SimDuration::from_secs_f64(day_s / 48.0);
        let cores = fg
            .cores_timeline
            .resample(SimTime::ZERO, SimTime::from_secs_f64(day_s), step);
        let mem = fg
            .mem_timeline
            .resample(SimTime::ZERO, SimTime::from_secs_f64(day_s), step);
        let mut series = Vec::new();
        for ((t, c), (_, m)) in cores.iter().zip(&mem) {
            r.line(format!(
                "t={:>7.0}s cores={:>6.1} mem={:>8.0}MB {}",
                t.as_secs_f64(),
                c,
                m,
                "#".repeat((*c).min(40.0).round() as usize)
            ));
            series.push(json!({"t_s": t.as_secs_f64(), "cores": c, "mem_mb": m}));
        }
        out.push(json!({"benchmark": name, "series": series}));
    }
    r.json = json!(out);
    r
}

/// All evaluation reports at default scale.
pub fn all() -> Vec<Report> {
    vec![
        fig10(DEFAULT_DAY_S, DEFAULT_SEED),
        fig11(DEFAULT_DAY_S, DEFAULT_SEED),
        fig12(DEFAULT_DAY_S, DEFAULT_SEED),
        fig13(DEFAULT_DAY_S, DEFAULT_SEED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_DAY: f64 = 300.0;

    #[test]
    fn fig10_qos_shape_holds() {
        let r = fig10(TEST_DAY, 7);
        let mut openwhisk_violations = 0usize;
        for bench in r.json.as_array().unwrap() {
            for sys in bench["systems"].as_array().unwrap() {
                let label = sys["system"].as_str().unwrap();
                let p95 = sys["p95_over_target"].as_f64().unwrap();
                match label {
                    "Nameko" => assert!(p95 <= 1.0, "{bench}"),
                    "Amoeba" => assert!(p95 <= 1.05, "Amoeba p95/target {p95} in {bench}"),
                    "OpenWhisk" if p95 > 1.0 => {
                        openwhisk_violations += 1;
                    }
                    _ => {}
                }
            }
        }
        // Paper: OpenWhisk violates QoS for several benchmarks (matmul,
        // dd, cloud_stor there).
        assert!(
            openwhisk_violations >= 2,
            "violations {openwhisk_violations}"
        );
    }

    #[test]
    fn fig11_amoeba_saves_resources() {
        let r = fig11(TEST_DAY, 7);
        let rows = r.json.as_array().unwrap();
        assert_eq!(rows.len(), 5);
        let mut saved_any = 0;
        for row in rows {
            let cpu = row["cpu_ratio"].as_f64().unwrap();
            let mem = row["mem_ratio"].as_f64().unwrap();
            assert!(cpu < 1.05, "{row}");
            assert!(mem < 1.05, "{row}");
            if cpu < 0.9 && mem < 0.9 {
                saved_any += 1;
            }
        }
        assert!(saved_any >= 3, "at least most benchmarks save >10%: {r:?}");
    }

    #[test]
    fn fig12_switch_loads_differ() {
        let r = fig12(TEST_DAY, 7);
        for bench in r.json.as_array().unwrap() {
            let switches = bench["switches"].as_array().unwrap();
            assert!(
                !switches.is_empty(),
                "{} must switch at least once",
                bench["benchmark"]
            );
            // Where both directions occur, the switch loads differ (the
            // Fig. 12 observation).
            let to_sl: Vec<f64> = switches
                .iter()
                .filter(|s| s["to"] == "Serverless")
                .map(|s| s["load_qps"].as_f64().unwrap())
                .collect();
            let to_iaas: Vec<f64> = switches
                .iter()
                .filter(|s| s["to"] == "Iaas")
                .map(|s| s["load_qps"].as_f64().unwrap())
                .collect();
            if !to_sl.is_empty() && !to_iaas.is_empty() {
                assert!(
                    (to_sl[0] - to_iaas[0]).abs() > 1.0,
                    "switch loads identical: {switches:?}"
                );
            }
        }
    }
}
