//! Criterion micro-benchmarks of the hot paths: event calendar, RNG,
//! M/M/N evaluation, PCA, surface interpolation, percentile extraction.

use amoeba_linalg::{Matrix, Pca};
use amoeba_meters::LatencySurface;
use amoeba_metrics::LatencyRecorder;
use amoeba_queueing::MmnModel;
use amoeba_sim::{Distributions, EventQueue, SimDuration, SimRng, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(1);
            for i in 0..10_000u64 {
                let t = SimTime::from_micros(rng.next_u64() % 1_000_000);
                q.push(t, i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            black_box(sum)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exponential_100k", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.exponential(10.0);
            }
            black_box(acc)
        })
    });
}

fn bench_mmn(c: &mut Criterion) {
    let m = MmnModel::new(16, 8.0).unwrap();
    c.bench_function("mmn/wait_quantile", |b| {
        b.iter(|| black_box(m.wait_quantile(black_box(100.0), 0.95)))
    });
    c.bench_function("mmn/discriminant_lambda", |b| {
        b.iter(|| black_box(m.discriminant_lambda(black_box(0.5), 0.95)))
    });
}

fn bench_pca(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(3);
    let rows: Vec<Vec<f64>> = (0..240)
        .map(|_| (0..3).map(|_| rng.uniform()).collect())
        .collect();
    let data = Matrix::from_nested(&rows);
    c.bench_function("pca/fit_240x3", |b| {
        b.iter(|| black_box(Pca::default().fit(&data)))
    });
}

fn bench_surface(c: &mut Criterion) {
    let surface = LatencySurface::analytic(
        [0.08, 0.0, 0.0],
        0.02,
        0,
        1.2,
        16,
        0.95,
        vec![0.5, 10.0, 30.0, 60.0, 120.0],
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9],
    );
    c.bench_function("surface/predict", |b| {
        b.iter(|| black_box(surface.predict(black_box(42.0), black_box(0.55))))
    });
}

fn bench_percentiles(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(4);
    c.bench_function("latency_recorder/p95_of_100k", |b| {
        b.iter_with_setup(
            || {
                let mut r = LatencyRecorder::new();
                for _ in 0..100_000 {
                    r.record(SimDuration::from_micros(rng.next_u64() % 1_000_000));
                }
                r
            },
            |mut r| black_box(r.quantile(0.95)),
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_mmn,
    bench_pca,
    bench_surface,
    bench_percentiles
);
criterion_main!(benches);
