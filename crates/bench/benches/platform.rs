//! Criterion benchmarks of the simulated platforms: serverless
//! submit→complete cycles (warm and contended) and full experiment-cell
//! throughput.

use amoeba_bench::scenarios::run_cell;
use amoeba_core::SystemVariant;
use amoeba_platform::{ClusterEvent, Effect, Query, QueryId, ServerlessConfig, ServerlessPlatform};
use amoeba_sim::{EventQueue, SimRng, SimTime};
use amoeba_workload::benchmarks;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Drive a batch of queries through a fresh serverless platform to
/// completion; returns the number of completions (sanity anchor).
fn serverless_batch(n: u64) -> usize {
    let mut p = ServerlessPlatform::new(ServerlessConfig::default());
    let mut rng = SimRng::seed_from_u64(7);
    let sid = p.register(benchmarks::float());
    let mut queue: EventQueue<ClusterEvent> = EventQueue::new();
    let mut completions = 0usize;
    let absorb = |effects: Vec<Effect>,
                  now: SimTime,
                  queue: &mut EventQueue<ClusterEvent>,
                  completions: &mut usize| {
        for e in effects {
            match e {
                Effect::Schedule { after, event } => {
                    queue.push(now + after, event);
                }
                Effect::Completed(_) => *completions += 1,
                _ => {}
            }
        }
    };
    for i in 0..n {
        let t = SimTime::from_millis(i * 25);
        let q = Query {
            id: QueryId(i),
            service: sid,
            submitted: t,
        };
        let eff = p.submit(q, t, &mut rng);
        absorb(eff, t, &mut queue, &mut completions);
        // Drain events that are due before the next arrival.
        while let Some(peek) = queue.peek_time() {
            if peek > SimTime::from_millis((i + 1) * 25) {
                break;
            }
            let ev = queue.pop().unwrap();
            let eff = p.handle(ev.payload, ev.time, &mut rng);
            absorb(eff, ev.time, &mut queue, &mut completions);
        }
    }
    while let Some(ev) = queue.pop() {
        let eff = p.handle(ev.payload, ev.time, &mut rng);
        absorb(eff, ev.time, &mut queue, &mut completions);
    }
    completions
}

fn bench_serverless(c: &mut Criterion) {
    c.bench_function("serverless/1k_queries_end_to_end", |b| {
        b.iter(|| black_box(serverless_batch(1_000)))
    });
}

fn bench_experiment_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_cell");
    g.sample_size(10);
    g.bench_function("nameko_float_60s_day", |b| {
        b.iter(|| {
            black_box(run_cell(
                SystemVariant::Nameko,
                benchmarks::float(),
                60.0,
                1,
            ))
        })
    });
    g.bench_function("amoeba_float_60s_day", |b| {
        b.iter(|| {
            black_box(run_cell(
                SystemVariant::Amoeba,
                benchmarks::float(),
                60.0,
                1,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_serverless, bench_experiment_cell);
criterion_main!(benches);
