//! Criterion benchmarks of the Amoeba control plane: the per-tick
//! decision cost (what a cloud vendor pays per service per control
//! period) and the monitor update path.

use amoeba_core::controller::ServiceModel;
use amoeba_core::{
    ContentionMonitor, ControllerConfig, DeployMode, DeploymentController, MonitorConfig,
};
use amoeba_meters::{LatencySurface, ProfileCurve};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_workload::benchmarks;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn model() -> ServiceModel {
    let spec = benchmarks::dd();
    let phases = [
        spec.demand.cpu_s,
        spec.demand.io_mb / 500.0,
        spec.demand.net_mb / 250.0,
    ];
    let l0 = phases.iter().sum::<f64>() + 0.02;
    let surfaces: [LatencySurface; 3] = [0, 1, 2].map(|r| {
        LatencySurface::analytic(
            phases,
            0.02,
            r,
            [1.2, 1.8, 1.5][r],
            16,
            0.95,
            vec![0.5, 12.5, 25.0, 50.0, 62.5],
            vec![0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9],
        )
    });
    ServiceModel {
        spec,
        l0_s: l0,
        surfaces,
        util_per_qps: [0.001, 0.04, 0.0001],
        n_max: 16,
    }
}

fn bench_decide(c: &mut Criterion) {
    let mut ctl = DeploymentController::new(ControllerConfig::default());
    ctl.register(model());
    let now = SimTime::from_secs(100);
    for i in 0..100 {
        ctl.record_arrival(0, now - SimDuration::from_millis(i * 35));
    }
    c.bench_function("controller/decide", |b| {
        b.iter(|| {
            black_box(ctl.decide(
                0,
                DeployMode::Iaas,
                now,
                SimTime::ZERO,
                black_box([0.1, 0.4, 0.05]),
                [0.34, 0.33, 0.33],
                &[],
            ))
        })
    });
    c.bench_function("controller/lambda_max", |b| {
        b.iter(|| black_box(ctl.lambda_max(0, black_box([0.1, 0.4, 0.05]), [0.34, 0.33, 0.33])))
    });
}

fn bench_monitor(c: &mut Criterion) {
    let curves: [ProfileCurve; 3] = [0, 1, 2]
        .map(|r| ProfileCurve::analytic([0.04, 0.0, 0.0], 0, 0.02, [1.2, 1.8, 1.5][r], 0.95, 40));
    c.bench_function("monitor/observe_and_heartbeat", |b| {
        let mut m = ContentionMonitor::new(MonitorConfig::default(), curves.clone());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.observe_meter_latency(0, 0.06 + (i % 13) as f64 * 0.002);
            m.observe_meter_latency(1, 0.05 + (i % 7) as f64 * 0.003);
            m.observe_meter_latency(2, 0.045 + (i % 5) as f64 * 0.001);
            m.heartbeat();
            black_box(m.weights())
        })
    });
}

criterion_group!(benches, bench_decide, bench_monitor);
criterion_main!(benches);
