//! The simulation-core hot-loop benchmark: one full Amoeba experiment
//! over a compressed 1-day Didi diurnal trace, end to end through the
//! event-dispatch kernel (arrivals → platforms → effects → controller
//! ticks → completions). The guarded figure is simulated queries per
//! wall-clock second; `results/BENCH_simcore.json` records the baseline
//! and refactors of the kernel must stay within 5% of it.

use amoeba_core::{Experiment, SystemVariant};
use amoeba_sim::SimDuration;
use amoeba_workload::{benchmarks, DiurnalPattern, LoadTrace, MicroserviceSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The standard paper scenario: float in the foreground at full
/// benchmark peak, the three background services at low peak (§VII-A),
/// all on the Didi diurnal shape compressed into `day_s` seconds.
fn scenario(day_s: f64) -> Vec<amoeba_core::ServiceSetup> {
    let fg: MicroserviceSpec = benchmarks::float();
    let mut setups = vec![amoeba_core::ServiceSetup {
        trace: LoadTrace::new(DiurnalPattern::didi(), fg.peak_qps, day_s),
        spec: fg,
        background: false,
    }];
    for (spec, frac) in [
        (benchmarks::float(), 0.2),
        (benchmarks::dd(), 0.15),
        (benchmarks::cloud_stor(), 0.2),
    ] {
        let peak = spec.peak_qps * frac;
        let mut bg = spec;
        bg.name = format!("bg_{}", bg.name);
        setups.push(amoeba_core::ServiceSetup {
            trace: LoadTrace::new(DiurnalPattern::didi(), peak, day_s),
            spec: bg,
            background: true,
        });
    }
    setups
}

fn run_day(variant: SystemVariant, day_s: f64, seed: u64) -> usize {
    let result = Experiment::builder(variant, SimDuration::from_secs_f64(day_s), seed)
        .services(scenario(day_s))
        .build()
        .run();
    result.services.iter().map(|s| s.completed).sum()
}

fn bench_sim_hot_loop(c: &mut Criterion) {
    let day_s = 360.0;
    // Report the workload size once so ns/iter converts to simulated
    // queries per second: qps = completed / (ns_per_iter * 1e-9).
    let completed = run_day(SystemVariant::Amoeba, day_s, 7);
    println!("sim_hot_loop: {completed} queries per iteration (day_s = {day_s})");

    let mut g = c.benchmark_group("sim_hot_loop");
    g.sample_size(10);
    g.bench_function("amoeba_day", |b| {
        b.iter(|| black_box(run_day(SystemVariant::Amoeba, day_s, 7)))
    });
    g.bench_function("openwhisk_day", |b| {
        b.iter(|| black_box(run_day(SystemVariant::OpenWhisk, day_s, 7)))
    });
    g.finish();
}

criterion_group!(benches, bench_sim_hot_loop);
criterion_main!(benches);
