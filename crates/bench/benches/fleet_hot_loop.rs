//! The fleet-executor hot-loop benchmark: a small multi-cell fleet
//! driven end to end through the epoch-barrier executor (cell worlds →
//! shard workers → barrier exchange → aggregation) at 1/2/4/8 worker
//! threads. The guarded figure is service-epochs advanced per
//! wall-clock second; `results/BENCH_simcore.json` records the
//! baseline per thread count. Telemetry is disabled (`run_quiet`) so
//! the benchmark measures the simulation and the barrier machinery,
//! not per-event serialisation.

use amoeba_fleet::FleetSpec;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// 48 services over two compressed days in 8 cells: big enough that
/// every thread count up to 8 gets distinct shards, small enough for a
/// benchmark iteration.
fn spec() -> FleetSpec {
    FleetSpec::new(7)
        .services(48)
        .cells(8)
        .days(2.0)
        .day_seconds(90.0)
        .epoch_s(15.0)
        .peak_scale(0.05, 0.1)
        .peak_floor(0.5)
}

fn run_fleet(threads: usize) -> u64 {
    spec().build().run_quiet(threads).events
}

fn bench_fleet_hot_loop(c: &mut Criterion) {
    // Report the workload size once so ns/iter converts to throughput:
    // service_epochs_per_s = services * epochs / (ns_per_iter * 1e-9).
    let probe = spec().build().run_quiet(1);
    println!(
        "fleet_hot_loop: {} services x {} epochs, {} events per iteration",
        probe.totals.services, probe.epochs, probe.events
    );

    let mut g = c.benchmark_group("fleet_hot_loop");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let name = format!("threads_{threads}");
        g.bench_function(&name, |b| b.iter(|| black_box(run_fleet(threads))));
    }
    g.finish();
}

criterion_group!(benches, bench_fleet_hot_loop);
criterion_main!(benches);
