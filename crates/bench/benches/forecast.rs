//! Criterion benchmarks of the forecaster hot path: the per-tick
//! `observe` + `predict` pair the proactive controller pays for every
//! unpinned service at every control period.

use amoeba_forecast::{Ewma, Forecaster, HoltLinear, HoltWintersDiurnal, Naive};
use amoeba_sim::{SimDuration, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// One simulated day at the report scale (480 s) with 240 seasonal
/// buckets — the configuration the runtime attaches to Amoeba-Pro.
fn hw() -> HoltWintersDiurnal {
    HoltWintersDiurnal::new(SimDuration::from_secs_f64(480.0), 240)
}

/// A deterministic diurnal-ish rate without any RNG.
fn rate_at(t_s: f64) -> f64 {
    60.0 + 55.0 * (t_s * std::f64::consts::TAU / 480.0).sin()
}

fn seeded(mut f: Box<dyn Forecaster>) -> Box<dyn Forecaster> {
    for i in 0..960 {
        let t = i as f64 * 1.0;
        f.observe(SimTime::from_secs_f64(t), rate_at(t));
    }
    f
}

fn bench_tick(c: &mut Criterion) {
    let horizon = SimDuration::from_secs(6);
    let models: Vec<Box<dyn Forecaster>> = vec![
        Box::new(Naive::new()),
        Box::new(Ewma::default()),
        Box::new(HoltLinear::default()),
        Box::new(hw()),
    ];
    for model in models {
        let name = model.name();
        let mut f = seeded(model);
        let mut i = 960u64;
        c.bench_function(&format!("forecast/tick/{name}"), |b| {
            b.iter(|| {
                i += 1;
                let t = i as f64 * 1.0;
                f.observe(SimTime::from_secs_f64(t), black_box(rate_at(t)));
                black_box(f.predict(horizon))
            })
        });
    }
}

fn bench_predict_only(c: &mut Criterion) {
    let mut f = seeded(Box::new(hw()));
    let horizon = SimDuration::from_secs(6);
    c.bench_function("forecast/predict/holt_winters", |b| {
        b.iter(|| black_box(f.predict(black_box(horizon))))
    });
    let _ = &mut f;
}

criterion_group!(benches, bench_tick, bench_predict_only);
criterion_main!(benches);
