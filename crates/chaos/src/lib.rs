#![warn(missing_docs)]
//! Deterministic fault injection for the Amoeba simulation.
//!
//! Serverless platforms fail routinely — containers crash mid-query, VM
//! boots fail or straggle, control-plane acks get lost, monitoring
//! samples drop out — and Amoeba's whole value proposition is holding
//! QoS while a live service is mid-flight between platforms. This crate
//! turns those failure modes into a *plan*: a pure-data [`FaultPlan`]
//! describing per-hour fault rates and per-event failure probabilities,
//! and a [`FaultInjector`] that expands the plan into a deterministic
//! schedule of [`TimedFault`]s plus point-in-time failure decisions.
//!
//! Determinism is the design center. The injector owns its own
//! [`SimRng`] stream, seeded from `run seed ^ plan salt`, so:
//!
//! - the same seed and the same plan produce bit-identical fault
//!   sequences (and therefore bit-identical run traces), and
//! - a run with **no** plan draws nothing from the injector stream and
//!   is bit-identical to a run built before this crate existed.
//!
//! The injector never touches the simulation directly; the `core`
//! runtime schedules the [`TimedFault`]s into its event loop and calls
//! the decision methods ([`FaultInjector::vm_boot_outcome`],
//! [`FaultInjector::drop_prewarm_ack`], …) at the moments the
//! corresponding actions happen. Consumers stay simulation-agnostic:
//! everything here is expressible in terms of `amoeba-sim` time and RNG
//! primitives alone.

use amoeba_sim::{Distributions, SimDuration, SimRng, SimTime};

/// Domain-separation constant folded into the injector's seed so the
/// chaos stream never collides with the platform/arrival streams even
/// when `seed_salt` is zero.
const CHAOS_STREAM: u64 = 0xC4A0_5F41_7B1D_0001;

/// A declarative fault-injection plan: rates are events per simulated
/// hour (Poisson processes), probabilities are per-opportunity.
///
/// The default plan is all-zero — no faults — and a runtime handed the
/// default plan behaves bit-identically to one handed no plan at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Container crashes per simulated hour. Each crash kills one
    /// running (busy, warming or idle) container chosen uniformly from
    /// the pool at fire time; in-flight queries are re-queued unless
    /// [`crash_drop_prob`](Self::crash_drop_prob) says otherwise.
    pub container_crash_rate_per_hour: f64,
    /// Probability that a query displaced by a container crash is lost
    /// outright instead of re-queued (models non-idempotent work).
    pub crash_drop_prob: f64,
    /// Probability that a VM boot fails and must be retried from
    /// scratch (the group stays `Booting`, paying the boot time again).
    pub vm_boot_failure_prob: f64,
    /// Probability that a VM boot straggles: the ready event is
    /// re-delivered after `slow_boot_multiplier` extra boot times.
    pub vm_slow_boot_prob: f64,
    /// Extra boot-times a slow boot costs (1.0 doubles the boot).
    pub slow_boot_multiplier: f64,
    /// Probability that a prewarm ack (serverless `PrewarmReady`) is
    /// dropped on the way to the engine, forcing the ack-timeout /
    /// retry / abort machinery to engage.
    pub ack_drop_prob: f64,
    /// Meter blackouts per simulated hour. During a blackout every
    /// meter observation is discarded for
    /// [`meter_outage_duration_s`](Self::meter_outage_duration_s).
    pub meter_outage_rate_per_hour: f64,
    /// Length of one meter blackout, seconds.
    pub meter_outage_duration_s: f64,
    /// Corrupted meter samples per simulated hour: one meter's next
    /// observation is multiplied by
    /// [`outlier_factor`](Self::outlier_factor).
    pub meter_outlier_rate_per_hour: f64,
    /// Multiplier applied to an outlier meter sample (e.g. 50.0 models
    /// a GC pause or scheduling stall hitting the meter probe).
    pub outlier_factor: f64,
    /// Transient co-tenant pressure spikes per simulated hour: a burst
    /// of synthetic interference queries lands on the shared pool.
    pub pressure_spike_rate_per_hour: f64,
    /// Length of one pressure spike, seconds.
    pub spike_duration_s: f64,
    /// Interference queries per second injected during a spike.
    pub spike_qps: f64,
    /// Extra salt XOR-ed into the injector seed, so two plans with the
    /// same rates can still produce decorrelated fault sequences.
    pub seed_salt: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            container_crash_rate_per_hour: 0.0,
            crash_drop_prob: 0.0,
            vm_boot_failure_prob: 0.0,
            vm_slow_boot_prob: 0.0,
            slow_boot_multiplier: 1.0,
            ack_drop_prob: 0.0,
            meter_outage_rate_per_hour: 0.0,
            meter_outage_duration_s: 10.0,
            meter_outlier_rate_per_hour: 0.0,
            outlier_factor: 25.0,
            pressure_spike_rate_per_hour: 0.0,
            spike_duration_s: 10.0,
            spike_qps: 0.0,
            seed_salt: 0,
        }
    }
}

impl FaultPlan {
    /// True when the plan can never produce a fault: all rates and
    /// probabilities are zero (durations/multipliers are irrelevant).
    pub fn is_noop(&self) -> bool {
        self.container_crash_rate_per_hour == 0.0
            && self.vm_boot_failure_prob == 0.0
            && self.vm_slow_boot_prob == 0.0
            && self.ack_drop_prob == 0.0
            && self.meter_outage_rate_per_hour == 0.0
            && self.meter_outlier_rate_per_hour == 0.0
            && self.pressure_spike_rate_per_hour == 0.0
    }

    /// A reference mixed-fault plan at unit intensity, covering every
    /// fault class at rates calibrated for the compressed benchmark
    /// days (minutes, not hours) used across the test suite. Scale it
    /// with [`scaled`](Self::scaled) to sweep severity.
    pub fn mixed() -> Self {
        FaultPlan {
            container_crash_rate_per_hour: 60.0,
            crash_drop_prob: 0.1,
            vm_boot_failure_prob: 0.1,
            vm_slow_boot_prob: 0.1,
            slow_boot_multiplier: 2.0,
            ack_drop_prob: 0.1,
            meter_outage_rate_per_hour: 30.0,
            meter_outage_duration_s: 5.0,
            meter_outlier_rate_per_hour: 60.0,
            outlier_factor: 25.0,
            pressure_spike_rate_per_hour: 30.0,
            spike_duration_s: 5.0,
            spike_qps: 40.0,
            seed_salt: 0,
        }
    }

    /// Scale every rate and per-opportunity probability by `factor`
    /// (probabilities clamp at 1.0); durations and multipliers are
    /// left alone. `scaled(0.0)` is a no-op plan.
    pub fn scaled(&self, factor: f64) -> Self {
        let p = |x: f64| (x * factor).min(1.0);
        FaultPlan {
            container_crash_rate_per_hour: self.container_crash_rate_per_hour * factor,
            crash_drop_prob: p(self.crash_drop_prob),
            vm_boot_failure_prob: p(self.vm_boot_failure_prob),
            vm_slow_boot_prob: p(self.vm_slow_boot_prob),
            ack_drop_prob: p(self.ack_drop_prob),
            meter_outage_rate_per_hour: self.meter_outage_rate_per_hour * factor,
            meter_outlier_rate_per_hour: self.meter_outlier_rate_per_hour * factor,
            pressure_spike_rate_per_hour: self.pressure_spike_rate_per_hour * factor,
            ..self.clone()
        }
    }
}

/// A scheduled fault occurrence, delivered to the runtime's event loop
/// at a pre-computed instant.
///
/// Deliberately all-integer (`Copy + Eq`): victims and magnitudes are
/// sampled from the injector at *fire* time, so the event payload can
/// ride inside the runtime's `Copy + Eq` event enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedFault {
    /// Kill one container in the shared serverless pool.
    ContainerCrash,
    /// Start a meter blackout window.
    MeterOutage,
    /// Corrupt this meter's next latency observation.
    MeterOutlier {
        /// Index of the affected contention meter (resource index).
        meter: usize,
    },
    /// Start a transient co-tenant pressure spike on the shared pool.
    PressureSpike,
}

/// Outcome of one VM boot attempt under the plan's boot-fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootOutcome {
    /// The boot completes on time.
    Healthy,
    /// The boot fails; the group must re-boot from scratch.
    Fail,
    /// The boot straggles; readiness is delayed by
    /// `slow_boot_multiplier` boot times.
    Slow,
}

/// Expands a [`FaultPlan`] into concrete, reproducible fault decisions.
///
/// All randomness comes from a private [`SimRng`] stream derived from
/// `seed ^ plan.seed_salt ^ CHAOS_STREAM`, independent of the
/// simulation's own RNG forks — injecting faults never perturbs
/// arrival times or execution jitter of the underlying run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
}

impl FaultInjector {
    /// Build an injector for `plan` on a run seeded with `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let rng = SimRng::seed_from_u64(seed ^ plan.seed_salt ^ CHAOS_STREAM);
        FaultInjector { plan, rng }
    }

    /// The plan this injector realises.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Pre-generate the timed-fault schedule for a run of length
    /// `horizon`, sorted by fire time. Each rate-driven fault class is
    /// an independent Poisson process; `n_meters` bounds the meter
    /// index sampled for [`TimedFault::MeterOutlier`].
    pub fn schedule(
        &mut self,
        horizon: SimDuration,
        n_meters: usize,
    ) -> Vec<(SimTime, TimedFault)> {
        let mut out: Vec<(SimTime, TimedFault)> = Vec::new();
        let horizon_s = horizon.as_secs_f64();
        // Fixed class order keeps the RNG draw sequence stable.
        self.poisson_times(
            self.plan.container_crash_rate_per_hour,
            horizon_s,
            |t, me| {
                out.push((t, TimedFault::ContainerCrash));
                let _ = me;
            },
        );
        self.poisson_times(self.plan.meter_outage_rate_per_hour, horizon_s, |t, _| {
            out.push((t, TimedFault::MeterOutage));
        });
        self.poisson_times(self.plan.meter_outlier_rate_per_hour, horizon_s, |t, me| {
            let meter = me.rng.uniform_usize(n_meters.max(1));
            out.push((t, TimedFault::MeterOutlier { meter }));
        });
        self.poisson_times(self.plan.pressure_spike_rate_per_hour, horizon_s, |t, _| {
            out.push((t, TimedFault::PressureSpike));
        });
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// Walk one Poisson process at `rate_per_hour` over `[0, horizon_s)`
    /// calling `f(fire_time, self)` per event.
    fn poisson_times(
        &mut self,
        rate_per_hour: f64,
        horizon_s: f64,
        mut f: impl FnMut(SimTime, &mut Self),
    ) {
        if rate_per_hour <= 0.0 {
            return;
        }
        let lambda = rate_per_hour / 3600.0; // events per second
        let mut t = 0.0;
        loop {
            t += self.rng.exponential(lambda);
            if t >= horizon_s {
                return;
            }
            f(SimTime::from_secs_f64(t), self);
        }
    }

    /// Decide the fate of one VM boot attempt. Consumes exactly one
    /// RNG draw regardless of outcome.
    pub fn vm_boot_outcome(&mut self) -> BootOutcome {
        let u = self.rng.uniform();
        if u < self.plan.vm_boot_failure_prob {
            BootOutcome::Fail
        } else if u < self.plan.vm_boot_failure_prob + self.plan.vm_slow_boot_prob {
            BootOutcome::Slow
        } else {
            BootOutcome::Healthy
        }
    }

    /// Should this prewarm ack be dropped on its way to the engine?
    pub fn drop_prewarm_ack(&mut self) -> bool {
        self.rng.bernoulli(self.plan.ack_drop_prob)
    }

    /// Should this crash-displaced query be lost instead of re-queued?
    pub fn drop_crashed_query(&mut self) -> bool {
        self.rng.bernoulli(self.plan.crash_drop_prob)
    }

    /// Pick a uniform index in `[0, n)` from the chaos stream — used by
    /// the runtime to choose crash victims among live containers.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.uniform_usize(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    #[test]
    fn default_plan_is_noop_and_schedules_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        let mut inj = FaultInjector::new(plan, 7);
        assert!(inj.schedule(hour(), 3).is_empty());
        assert_eq!(inj.vm_boot_outcome(), BootOutcome::Healthy);
        assert!(!inj.drop_prewarm_ack());
        assert!(!inj.drop_crashed_query());
    }

    #[test]
    fn same_seed_and_plan_give_identical_schedules() {
        let plan = FaultPlan::mixed();
        let a = FaultInjector::new(plan.clone(), 42).schedule(hour(), 3);
        let b = FaultInjector::new(plan, 42).schedule(hour(), 3);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let plan = FaultPlan::mixed();
        let a = FaultInjector::new(plan.clone(), 1).schedule(hour(), 3);
        let b = FaultInjector::new(plan, 2).schedule(hour(), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn seed_salt_decorrelates_equal_rate_plans() {
        let base = FaultPlan::mixed();
        let salted = FaultPlan {
            seed_salt: 0xDEAD,
            ..base.clone()
        };
        let a = FaultInjector::new(base, 9).schedule(hour(), 3);
        let b = FaultInjector::new(salted, 9).schedule(hour(), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn schedule_is_sorted_and_respects_horizon() {
        let plan = FaultPlan::mixed().scaled(3.0);
        let sched = FaultInjector::new(plan, 5).schedule(SimDuration::from_secs(600), 3);
        assert!(!sched.is_empty());
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(sched.last().unwrap().0 < SimTime::from_secs(600));
        for (_, f) in &sched {
            if let TimedFault::MeterOutlier { meter } = f {
                assert!(*meter < 3);
            }
        }
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        // 60/hour over 10 hours ≈ 600 events; allow generous slack.
        let plan = FaultPlan {
            container_crash_rate_per_hour: 60.0,
            ..FaultPlan::default()
        };
        let n = FaultInjector::new(plan, 11)
            .schedule(SimDuration::from_secs(36_000), 3)
            .len();
        assert!((400..800).contains(&n), "got {n}");
    }

    #[test]
    fn boot_outcome_frequencies_match_the_plan() {
        let plan = FaultPlan {
            vm_boot_failure_prob: 0.3,
            vm_slow_boot_prob: 0.2,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 13);
        let mut fail = 0;
        let mut slow = 0;
        for _ in 0..10_000 {
            match inj.vm_boot_outcome() {
                BootOutcome::Fail => fail += 1,
                BootOutcome::Slow => slow += 1,
                BootOutcome::Healthy => {}
            }
        }
        assert!((2700..3300).contains(&fail), "fail {fail}");
        assert!((1700..2300).contains(&slow), "slow {slow}");
    }

    #[test]
    fn scaled_zero_is_noop() {
        assert!(FaultPlan::mixed().scaled(0.0).is_noop());
    }

    #[test]
    fn scaling_clamps_probabilities() {
        let p = FaultPlan::mixed().scaled(100.0);
        assert!(p.ack_drop_prob <= 1.0);
        assert!(p.vm_boot_failure_prob <= 1.0);
        assert!(p.container_crash_rate_per_hour > FaultPlan::mixed().container_crash_rate_per_hour);
    }
}
