//! Empirical cumulative distribution functions.
//!
//! Fig. 10 of the paper plots "the cumulative distribution of the
//! benchmarks' latencies *normalized to their QoS targets*" for Amoeba,
//! Nameko and OpenWhisk; this module turns a recorder's samples into that
//! exact series.

/// One point of an empirical CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// The value (e.g. latency / QoS target).
    pub x: f64,
    /// Cumulative fraction of samples ≤ `x`.
    pub p: f64,
}

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    points: Vec<CdfPoint>,
}

impl Cdf {
    /// Build from already-sorted samples (ascending). Duplicate values are
    /// merged into a single step. Panics in debug builds if unsorted.
    pub fn from_sorted_seconds(sorted: &[f64]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let n = sorted.len();
        let mut points: Vec<CdfPoint> = Vec::new();
        for (i, &x) in sorted.iter().enumerate() {
            let p = (i + 1) as f64 / n as f64;
            match points.last_mut() {
                Some(last) if last.x == x => last.p = p,
                _ => points.push(CdfPoint { x, p }),
            }
        }
        Cdf { points }
    }

    /// Build from unsorted samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf::from_sorted_seconds(&s)
    }

    /// Build from samples, dividing each by `scale` first — the
    /// "normalized to QoS target" transform of Fig. 10.
    pub fn normalized(samples: &[f64], scale: f64) -> Self {
        assert!(scale > 0.0, "normalisation scale must be positive");
        let scaled: Vec<f64> = samples.iter().map(|&x| x / scale).collect();
        Cdf::from_samples(&scaled)
    }

    /// The step points.
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        match self
            .points
            .binary_search_by(|p| p.x.partial_cmp(&x).unwrap())
        {
            Ok(i) => self.points[i].p,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].p,
        }
    }

    /// Smallest `x` with `P(X ≤ x) ≥ q`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.points.iter().find(|p| p.p >= q).map(|p| p.x)
    }

    /// Downsample to at most `n` points for plotting, always keeping the
    /// first and last step.
    pub fn downsample(&self, n: usize) -> Vec<CdfPoint> {
        if self.points.len() <= n || n < 2 {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        let last = self.points.len() - 1;
        for k in 0..n {
            let idx = k * last / (n - 1);
            out.push(self.points[idx]);
        }
        out.dedup_by(|a, b| a.x == b.x);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_cdf_steps() {
        let c = Cdf::from_samples(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.0), 0.75);
        assert_eq!(c.eval(2.5), 0.75);
        assert_eq!(c.eval(3.0), 1.0);
        assert_eq!(c.eval(10.0), 1.0);
    }

    #[test]
    fn duplicates_merge_into_one_step() {
        let c = Cdf::from_samples(&[1.0, 1.0, 1.0]);
        assert_eq!(c.points().len(), 1);
        assert_eq!(c.points()[0], CdfPoint { x: 1.0, p: 1.0 });
    }

    #[test]
    fn normalized_divides_by_scale() {
        let c = Cdf::normalized(&[0.5, 1.0, 2.0], 1.0);
        let cn = Cdf::normalized(&[0.5, 1.0, 2.0], 2.0);
        assert_eq!(c.quantile(1.0), Some(2.0));
        assert_eq!(cn.quantile(1.0), Some(1.0));
        // Fraction under the (normalised) QoS target of 1.0:
        assert_eq!(cn.eval(1.0), 1.0);
        assert!((c.eval(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn normalized_rejects_zero_scale() {
        Cdf::normalized(&[1.0], 0.0);
    }

    #[test]
    fn quantile_finds_first_crossing() {
        let c = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(0.75), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.quantile(0.01), Some(1.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_samples(&[]);
        assert!(c.points().is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn downsample_keeps_ends() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let c = Cdf::from_samples(&samples);
        let d = c.downsample(10);
        assert!(d.len() <= 10);
        assert_eq!(d.first().unwrap().x, 1.0);
        assert_eq!(d.last().unwrap().x, 1000.0);
    }

    proptest::proptest! {
        #[test]
        fn cdf_is_monotone(samples in proptest::collection::vec(0.0f64..100.0, 1..200)) {
            let c = Cdf::from_samples(&samples);
            let pts = c.points();
            for w in pts.windows(2) {
                prop_assert!(w[0].x < w[1].x);
                prop_assert!(w[0].p < w[1].p);
            }
            prop_assert!((pts.last().unwrap().p - 1.0).abs() < 1e-12);
        }

        #[test]
        fn eval_and_quantile_are_consistent(samples in proptest::collection::vec(0.0f64..100.0, 1..100), q in 0.01f64..1.0) {
            let c = Cdf::from_samples(&samples);
            let x = c.quantile(q).unwrap();
            prop_assert!(c.eval(x) >= q);
        }
    }

    use proptest::prelude::*;
}
