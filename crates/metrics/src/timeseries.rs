//! Timestamped series for the timeline figures (Fig. 12 deploy-mode
//! switches, Fig. 13 resource-usage variation).

use amoeba_sim::{SimDuration, SimTime};

/// A time-ordered sequence of `(SimTime, T)` samples.
#[derive(Debug, Clone)]
pub struct TimeSeries<T> {
    samples: Vec<(SimTime, T)>,
}

impl<T> Default for TimeSeries<T> {
    fn default() -> Self {
        TimeSeries {
            samples: Vec::new(),
        }
    }
}

impl<T> TimeSeries<T> {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Timestamps must be non-decreasing (simulation
    /// time only moves forward); violations panic in debug builds.
    pub fn push(&mut self, at: SimTime, value: T) {
        debug_assert!(
            self.samples.last().is_none_or(|(t, _)| *t <= at),
            "time series sample out of order"
        );
        self.samples.push((at, value));
    }

    /// All samples in order.
    pub fn samples(&self) -> &[(SimTime, T)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The last sample at or before `at` (step-function semantics).
    pub fn at(&self, at: SimTime) -> Option<&T> {
        match self.samples.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => Some(&self.samples[i].1),
            Err(0) => None,
            Err(i) => Some(&self.samples[i - 1].1),
        }
    }

    /// Iterate over samples within `[from, to)`.
    pub fn range(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &(SimTime, T)> {
        self.samples
            .iter()
            .filter(move |(t, _)| *t >= from && *t < to)
    }
}

impl TimeSeries<f64> {
    /// Integrate the series as a right-continuous step function over
    /// `[from, to)`: each sample's value holds until the next sample.
    pub fn integrate_step(&self, from: SimTime, to: SimTime) -> f64 {
        if self.samples.is_empty() || to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cur_t = from;
        let mut cur_v = match self.at(from) {
            Some(&v) => v,
            None => 0.0,
        };
        for &(t, v) in &self.samples {
            if t <= from {
                continue;
            }
            if t >= to {
                break;
            }
            acc += cur_v * t.duration_since(cur_t).as_secs_f64();
            cur_t = t;
            cur_v = v;
        }
        acc += cur_v * to.duration_since(cur_t).as_secs_f64();
        acc
    }

    /// Mean value over `[from, to)` under step semantics.
    pub fn mean_step(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.duration_since(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.integrate_step(from, to) / span
    }

    /// Downsample onto a fixed grid (step semantics), for plotting long
    /// timelines with bounded output size.
    pub fn resample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero());
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push((t, self.at(t).copied().unwrap_or(0.0)));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_lookup() {
        let mut ts = TimeSeries::new();
        ts.push(t(1), "a");
        ts.push(t(5), "b");
        assert_eq!(ts.at(t(0)), None);
        assert_eq!(ts.at(t(1)), Some(&"a"));
        assert_eq!(ts.at(t(3)), Some(&"a"));
        assert_eq!(ts.at(t(5)), Some(&"b"));
        assert_eq!(ts.at(t(100)), Some(&"b"));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics_in_debug() {
        let mut ts = TimeSeries::new();
        ts.push(t(5), 1.0);
        ts.push(t(4), 2.0);
    }

    #[test]
    fn range_is_half_open() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(t(i), i);
        }
        let got: Vec<u64> = ts.range(t(2), t(5)).map(|&(_, v)| v).collect();
        assert_eq!(got, [2, 3, 4]);
    }

    #[test]
    fn integrate_step_constant() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 2.0);
        assert!((ts.integrate_step(t(0), t(10)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_step_with_changes() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 1.0);
        ts.push(t(4), 3.0);
        ts.push(t(8), 0.0);
        // 4s at 1 + 4s at 3 + 2s at 0.
        assert!((ts.integrate_step(t(0), t(10)) - 16.0).abs() < 1e-9);
        // Partial window starting mid-segment.
        assert!((ts.integrate_step(t(2), t(6)) - (2.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn integrate_before_first_sample_counts_zero() {
        let mut ts = TimeSeries::new();
        ts.push(t(5), 2.0);
        // [0,5) contributes nothing, [5,10) contributes 10.
        assert!((ts.integrate_step(t(0), t(10)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_step() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 4.0);
        ts.push(t(5), 0.0);
        assert!((ts.mean_step(t(0), t(10)) - 2.0).abs() < 1e-9);
        assert_eq!(ts.mean_step(t(5), t(5)), 0.0);
    }

    #[test]
    fn empty_series_integrates_to_zero() {
        let ts: TimeSeries<f64> = TimeSeries::new();
        assert_eq!(ts.integrate_step(t(0), t(10)), 0.0);
        assert!(ts.is_empty());
    }

    #[test]
    fn resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(t(0), 1.0);
        ts.push(t(3), 2.0);
        let grid = ts.resample(t(0), t(6), SimDuration::from_secs(2));
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], (t(0), 1.0));
        assert_eq!(grid[1], (t(2), 1.0));
        assert_eq!(grid[2], (t(4), 2.0));
    }
}
