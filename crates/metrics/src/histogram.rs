//! Log-bucketed streaming histogram.
//!
//! Constant-memory alternative to [`crate::latency::LatencyRecorder`] for
//! long-horizon runs: values are binned geometrically so relative
//! quantile error is bounded by the bucket growth factor (~1% by default)
//! regardless of sample count.

/// Geometric histogram over positive `f64` values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Smallest representable value; everything below lands in bucket 0.
    min_value: f64,
    /// Geometric growth factor between bucket boundaries (> 1).
    growth: f64,
    /// ln(growth), cached.
    ln_growth: f64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// A histogram covering `[min_value, min_value * growth^buckets]` with
    /// the given relative precision. Panics on invalid parameters.
    pub fn new(min_value: f64, growth: f64, bucket_count: usize) -> Self {
        assert!(min_value > 0.0 && growth > 1.0 && bucket_count > 0);
        LogHistogram {
            min_value,
            growth,
            ln_growth: growth.ln(),
            buckets: vec![0; bucket_count],
            count: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// Default configuration for latencies in seconds: 1 µs to >1000 s at
    /// ~2% relative precision.
    pub fn for_latency_seconds() -> Self {
        // 1e-6 * 1.02^n >= 1e3  =>  n ≈ ln(1e9)/ln(1.02) ≈ 1047.
        LogHistogram::new(1e-6, 1.02, 1100)
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value <= self.min_value {
            return 0;
        }
        let idx = ((value / self.min_value).ln() / self.ln_growth).floor() as usize;
        idx.min(self.buckets.len() - 1)
    }

    /// Lower boundary of bucket `i`.
    fn bucket_floor(&self, i: usize) -> f64 {
        self.min_value * self.growth.powi(i as i32)
    }

    /// Record a value. Non-finite and non-positive values are counted in
    /// the lowest bucket (they only ever arise from degenerate inputs and
    /// must not poison the tail).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let idx = self.bucket_index(v);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max_seen {
            self.max_seen = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Largest recorded value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max_seen)
        }
    }

    /// Approximate `q`-quantile: the *upper* boundary of the bucket
    /// containing the target rank, so the estimate errs on the
    /// conservative (larger) side — the safe direction for a QoS check.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        debug_assert!((0.0..=1.0).contains(&q));
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Upper boundary, clipped to the observed max.
                return Some(
                    self.bucket_floor(i + 1)
                        .min(self.max_seen.max(self.min_value)),
                );
            }
        }
        Some(self.max_seen)
    }

    /// Reset to empty, keeping the configuration.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0.0;
        self.max_seen = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let h = LogHistogram::for_latency_seconds();
        assert!(h.quantile(0.95).is_none());
        assert!(h.mean().is_none());
        assert!(h.max().is_none());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn mean_and_max_exact() {
        let mut h = LogHistogram::for_latency_seconds();
        for v in [0.010, 0.020, 0.030] {
            h.record(v);
        }
        assert!((h.mean().unwrap() - 0.020).abs() < 1e-12);
        assert_eq!(h.max().unwrap(), 0.030);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_within_relative_precision() {
        let mut h = LogHistogram::for_latency_seconds();
        // 1000 samples: 1ms .. 1000ms.
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0);
        }
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 0.950).abs() / 0.950 < 0.03, "p95 {p95}");
        let p50 = h.quantile(0.50).unwrap();
        assert!((p50 - 0.500).abs() / 0.500 < 0.03, "p50 {p50}");
    }

    #[test]
    fn quantile_is_conservative() {
        // The estimate must never be below the true nearest-rank value.
        let mut h = LogHistogram::for_latency_seconds();
        let mut vals: Vec<f64> = (1..=500).map(|i| 0.002 * i as f64).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.5, 0.9, 0.95, 0.99] {
            let exact = vals[((q * 500.0_f64).ceil() as usize).clamp(1, 500) - 1];
            let est = h.quantile(q).unwrap();
            assert!(est >= exact * 0.999, "q={q}: est {est} < exact {exact}");
        }
    }

    #[test]
    fn degenerate_values_go_to_lowest_bucket() {
        let mut h = LogHistogram::for_latency_seconds();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(0.0);
        assert_eq!(h.count(), 3);
        // Quantile of all-degenerate data collapses to the minimum bucket.
        assert!(h.quantile(0.95).unwrap() <= 2e-6);
    }

    #[test]
    fn values_beyond_range_clamp_to_last_bucket() {
        let mut h = LogHistogram::new(1.0, 2.0, 4); // covers 1..16
        h.record(1e12);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).unwrap() <= 1e12);
    }

    #[test]
    fn clear_resets() {
        let mut h = LogHistogram::for_latency_seconds();
        h.record(0.5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
    }

    proptest::proptest! {
        #[test]
        fn quantile_relative_error_bounded(vals in proptest::collection::vec(1e-4f64..100.0, 10..300), q in 0.1f64..0.99) {
            let mut h = LogHistogram::for_latency_seconds();
            for &v in &vals {
                h.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = sorted.len();
            let exact = sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
            let est = h.quantile(q).unwrap();
            // Conservative and within one bucket (2%) plus clipping slack.
            prop_assert!(est >= exact * 0.999, "est {est} exact {exact}");
            prop_assert!(est <= exact * 1.05 + 1e-6, "est {est} exact {exact}");
        }
    }

    use proptest::prelude::*;
}
