#![warn(missing_docs)]
//! Measurement infrastructure for the Amoeba experiments.
//!
//! The paper's evaluation reports four kinds of artefacts, and each has a
//! direct counterpart here:
//!
//! * tail latencies and QoS-normalised CDFs (Fig. 10, Fig. 16) —
//!   [`LatencyRecorder`], [`cdf`];
//! * resource usage normalised to the IaaS baseline (Fig. 11, Fig. 14) —
//!   [`UsageMeter`], which integrates core-seconds and MB-seconds over
//!   simulated time;
//! * utilisation statistics (Fig. 2) — the min/avg/max windows of
//!   [`UsageSummary`];
//! * timelines of load, deploy mode and usage (Fig. 12, Fig. 13) —
//!   [`TimeSeries`].

pub mod cdf;
pub mod cost;
pub mod histogram;
pub mod latency;
pub mod timeseries;
pub mod usage;

pub use cdf::{Cdf, CdfPoint};
pub use cost::{BillableUsage, CostModel};
pub use histogram::LogHistogram;
pub use latency::{LatencyRecorder, LatencyStats};
pub use timeseries::TimeSeries;
pub use usage::{UsageMeter, UsageSummary};
