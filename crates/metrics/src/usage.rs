//! Resource-usage accounting.
//!
//! The headline numbers of the paper — "reduces up to 72.9% of CPU usage
//! and up to 84.9% of memory usage" (Fig. 11) — are integrals of
//! *allocated* resources over time, normalised to the pure-IaaS baseline.
//! [`UsageMeter`] integrates a step function of allocations (cores, MB)
//! against the simulation clock and also tracks the *consumed* share so
//! Fig. 2's utilisation statistics fall out of the same instrument.

use amoeba_sim::SimTime;

/// Integrates allocated and consumed resource over simulated time.
///
/// "Allocated" is what the maintainer pays for (VM cores held, container
/// memory reserved); "consumed" is what the queries actually used.
/// Utilisation = consumed / allocated.
#[derive(Debug, Clone)]
pub struct UsageMeter {
    last_change: SimTime,
    alloc_cores: f64,
    alloc_mem_mb: f64,
    consumed_core_rate: f64,
    // Integrals.
    core_seconds_alloc: f64,
    mem_mb_seconds_alloc: f64,
    core_seconds_consumed: f64,
    // Peak trackers.
    peak_cores: f64,
    peak_mem_mb: f64,
    // Windowed utilisation samples for min/avg/max (Fig. 2).
    util_samples: Vec<f64>,
    window_start: SimTime,
    window_core_alloc: f64,
    window_core_consumed: f64,
    window_len_s: f64,
}

/// Final summary of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageSummary {
    /// Allocated core-seconds over the run.
    pub core_seconds: f64,
    /// Allocated MB-seconds over the run.
    pub mem_mb_seconds: f64,
    /// Consumed core-seconds over the run.
    pub core_seconds_consumed: f64,
    /// Peak concurrent cores allocated.
    pub peak_cores: f64,
    /// Peak concurrent memory allocated, MB.
    pub peak_mem_mb: f64,
    /// Mean CPU utilisation (consumed / allocated) over windows where
    /// anything was allocated.
    pub avg_utilization: f64,
    /// Lowest windowed utilisation.
    pub min_utilization: f64,
    /// Highest windowed utilisation.
    pub max_utilization: f64,
}

impl UsageMeter {
    /// A meter starting at `t = 0` with nothing allocated. `window_len_s`
    /// is the utilisation sampling window (Fig. 2 uses coarse windows over
    /// a diurnal run).
    pub fn new(window_len_s: f64) -> Self {
        assert!(window_len_s > 0.0);
        UsageMeter {
            last_change: SimTime::ZERO,
            alloc_cores: 0.0,
            alloc_mem_mb: 0.0,
            consumed_core_rate: 0.0,
            core_seconds_alloc: 0.0,
            mem_mb_seconds_alloc: 0.0,
            core_seconds_consumed: 0.0,
            peak_cores: 0.0,
            peak_mem_mb: 0.0,
            util_samples: Vec::new(),
            window_start: SimTime::ZERO,
            window_core_alloc: 0.0,
            window_core_consumed: 0.0,
            window_len_s,
        }
    }

    fn integrate_to(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_change).as_secs_f64();
        if dt > 0.0 {
            self.core_seconds_alloc += self.alloc_cores * dt;
            self.mem_mb_seconds_alloc += self.alloc_mem_mb * dt;
            self.core_seconds_consumed += self.consumed_core_rate * dt;
            self.window_core_alloc += self.alloc_cores * dt;
            self.window_core_consumed += self.consumed_core_rate * dt;
            self.last_change = now;
        }
        // Close windows that ended at or before `now`.
        while now.duration_since(self.window_start).as_secs_f64() >= self.window_len_s {
            if self.window_core_alloc > 0.0 {
                self.util_samples
                    .push((self.window_core_consumed / self.window_core_alloc).min(1.0));
            }
            self.window_start += amoeba_sim::SimDuration::from_secs_f64(self.window_len_s);
            self.window_core_alloc = 0.0;
            self.window_core_consumed = 0.0;
        }
    }

    /// Record that the allocation changed at `now`.
    pub fn set_allocation(&mut self, now: SimTime, cores: f64, mem_mb: f64) {
        debug_assert!(cores >= 0.0 && mem_mb >= 0.0);
        self.integrate_to(now);
        self.alloc_cores = cores;
        self.alloc_mem_mb = mem_mb;
        self.peak_cores = self.peak_cores.max(cores);
        self.peak_mem_mb = self.peak_mem_mb.max(mem_mb);
    }

    /// Record that the instantaneous CPU consumption rate changed at
    /// `now` (cores actively burning).
    pub fn set_consumption(&mut self, now: SimTime, cores_busy: f64) {
        debug_assert!(cores_busy >= 0.0);
        self.integrate_to(now);
        self.consumed_core_rate = cores_busy;
    }

    /// Close the books at the end of the run and summarise.
    pub fn finish(mut self, now: SimTime) -> UsageSummary {
        self.integrate_to(now);
        // Flush the trailing partial window.
        if self.window_core_alloc > 0.0 {
            self.util_samples
                .push((self.window_core_consumed / self.window_core_alloc).min(1.0));
        }
        let (min_u, max_u, avg_u) = if self.util_samples.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            let min = self.util_samples.iter().cloned().fold(f64::MAX, f64::min);
            let max = self.util_samples.iter().cloned().fold(0.0, f64::max);
            let avg = self.util_samples.iter().sum::<f64>() / self.util_samples.len() as f64;
            (min, max, avg)
        };
        UsageSummary {
            core_seconds: self.core_seconds_alloc,
            mem_mb_seconds: self.mem_mb_seconds_alloc,
            core_seconds_consumed: self.core_seconds_consumed,
            peak_cores: self.peak_cores,
            peak_mem_mb: self.peak_mem_mb,
            avg_utilization: avg_u,
            min_utilization: min_u,
            max_utilization: max_u,
        }
    }
}

impl UsageSummary {
    /// This run's CPU usage as a fraction of `baseline`'s — the Fig. 11
    /// normalisation ("resource usage of a benchmark is normalized to its
    /// resource usage with the long term IaaS-based deployment").
    pub fn cpu_relative_to(&self, baseline: &UsageSummary) -> f64 {
        if baseline.core_seconds <= 0.0 {
            return 0.0;
        }
        self.core_seconds / baseline.core_seconds
    }

    /// Memory counterpart of [`Self::cpu_relative_to`].
    pub fn mem_relative_to(&self, baseline: &UsageSummary) -> f64 {
        if baseline.mem_mb_seconds <= 0.0 {
            return 0.0;
        }
        self.mem_mb_seconds / baseline.mem_mb_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_sim::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn integrates_step_allocation() {
        let mut m = UsageMeter::new(10.0);
        m.set_allocation(t(0), 4.0, 1024.0);
        m.set_allocation(t(10), 2.0, 512.0);
        let s = m.finish(t(20));
        assert!((s.core_seconds - (4.0 * 10.0 + 2.0 * 10.0)).abs() < 1e-9);
        assert!((s.mem_mb_seconds - (1024.0 * 10.0 + 512.0 * 10.0)).abs() < 1e-9);
        assert_eq!(s.peak_cores, 4.0);
        assert_eq!(s.peak_mem_mb, 1024.0);
    }

    #[test]
    fn consumption_tracks_utilization() {
        let mut m = UsageMeter::new(5.0);
        m.set_allocation(t(0), 4.0, 0.0);
        m.set_consumption(t(0), 1.0); // 25% busy
        let s = m.finish(t(10));
        assert!((s.core_seconds_consumed - 10.0).abs() < 1e-9);
        assert!((s.avg_utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn windowed_utilization_min_max() {
        let mut m = UsageMeter::new(10.0);
        m.set_allocation(t(0), 2.0, 0.0);
        m.set_consumption(t(0), 2.0); // window 1: 100%
        m.set_consumption(t(10), 0.2); // window 2: 10%
        let s = m.finish(t(20));
        assert!((s.max_utilization - 1.0).abs() < 1e-9);
        assert!((s.min_utilization - 0.1).abs() < 1e-9);
        assert!((s.avg_utilization - 0.55).abs() < 1e-9);
    }

    #[test]
    fn zero_allocation_windows_are_skipped() {
        let mut m = UsageMeter::new(5.0);
        // Nothing allocated for 10s, then busy.
        m.set_allocation(t(10), 1.0, 0.0);
        m.set_consumption(t(10), 1.0);
        let s = m.finish(t(20));
        // Only the allocated windows count toward utilisation stats.
        assert!((s.avg_utilization - 1.0).abs() < 1e-9);
        assert!((s.min_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalisation_against_baseline() {
        let mut base = UsageMeter::new(10.0);
        base.set_allocation(t(0), 10.0, 1000.0);
        let base = base.finish(t(100));
        let mut amoeba = UsageMeter::new(10.0);
        amoeba.set_allocation(t(0), 10.0, 1000.0);
        amoeba.set_allocation(t(30), 1.0, 100.0); // switched to serverless
        let am = amoeba.finish(t(100));
        let cpu_ratio = am.cpu_relative_to(&base);
        assert!((cpu_ratio - (10.0 * 30.0 + 1.0 * 70.0) / 1000.0).abs() < 1e-9);
        assert!(am.mem_relative_to(&base) < 1.0);
    }

    #[test]
    fn empty_meter_summary_is_zeroes() {
        let s = UsageMeter::new(1.0).finish(t(10));
        assert_eq!(s.core_seconds, 0.0);
        assert_eq!(s.avg_utilization, 0.0);
        assert_eq!(s.cpu_relative_to(&s), 0.0);
    }

    #[test]
    fn repeated_allocation_at_same_instant() {
        let mut m = UsageMeter::new(10.0);
        m.set_allocation(t(0), 4.0, 0.0);
        m.set_allocation(t(0), 8.0, 0.0); // overrides before time passes
        let s = m.finish(t(10));
        assert!((s.core_seconds - 80.0).abs() < 1e-9);
        assert_eq!(s.peak_cores, 8.0);
    }

    #[test]
    fn sub_second_precision() {
        let mut m = UsageMeter::new(1.0);
        m.set_allocation(SimTime::ZERO, 1.0, 0.0);
        let end = SimTime::ZERO + SimDuration::from_millis(1500);
        let s = m.finish(end);
        assert!((s.core_seconds - 1.5).abs() < 1e-9);
    }
}
