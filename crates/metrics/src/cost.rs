//! Cloud billing model.
//!
//! The paper's motivation is economic: "maintainers pay for each
//! function invocation instead of the whole infrastructure" (§I, citing
//! the Berkeley view). This module prices a run's resource usage under
//! both billing schemes so experiments can report the maintainer-side
//! cost next to the vendor-side resource integrals:
//!
//! * **IaaS billing** — rented core-hours and GB-hours, busy or not;
//! * **serverless billing** — per-invocation fee plus GB-seconds of
//!   container time, the Lambda-style formula.

use crate::usage::UsageSummary;

/// Price card, in abstract currency units.
///
/// # Examples
///
/// ```
/// use amoeba_metrics::{BillableUsage, CostModel};
///
/// let model = CostModel::default();
/// let day = 86_400.0;
/// // A 4-core VM rented for a day vs the same work as 2 qps of 100 ms
/// // serverless invocations: the idle VM loses.
/// let iaas = BillableUsage {
///     iaas_core_seconds: 4.0 * day,
///     iaas_mem_mb_seconds: 8.0 * 1024.0 * day,
///     ..Default::default()
/// };
/// let serverless = BillableUsage {
///     invocations: (2.0 * day) as u64,
///     serverless_mem_mb_seconds: 2.0 * day * 0.1 * 256.0,
///     ..Default::default()
/// };
/// assert!(model.cost(&serverless) < model.cost(&iaas));
/// ```
///
/// Defaults are modelled on
/// public-cloud list prices (c5-class VM ≈ $0.0425/core-hour, Lambda ≈
/// $0.20 per million invocations + $0.0000166667 per GB-second) — the
/// absolute unit is irrelevant, the IaaS:serverless *ratio* is what the
/// experiments exercise.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Price of one rented core for one hour.
    pub per_core_hour: f64,
    /// Price of one rented GB of VM memory for one hour.
    pub per_gb_hour: f64,
    /// Price of one function invocation.
    pub per_invocation: f64,
    /// Price of one GB-second of serverless container time.
    pub per_gb_second: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_core_hour: 0.0425,
            per_gb_hour: 0.0057,
            per_invocation: 0.2e-6,
            per_gb_second: 0.0000166667,
        }
    }
}

/// A run's billing-relevant aggregates, split by platform. The usage
/// integrals in [`UsageSummary`] mix both platforms (that is what the
/// vendor's hardware sees); billing needs the split, which the runtime
/// tracks separately.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BillableUsage {
    /// IaaS core-seconds rented.
    pub iaas_core_seconds: f64,
    /// IaaS memory MB-seconds rented.
    pub iaas_mem_mb_seconds: f64,
    /// Serverless invocations executed.
    pub invocations: u64,
    /// Serverless container MB-seconds (busy time × container memory).
    pub serverless_mem_mb_seconds: f64,
}

impl CostModel {
    /// Total cost of a run's billable usage.
    pub fn cost(&self, u: &BillableUsage) -> f64 {
        self.iaas_cost(u) + self.serverless_cost(u)
    }

    /// The IaaS component.
    pub fn iaas_cost(&self, u: &BillableUsage) -> f64 {
        u.iaas_core_seconds / 3600.0 * self.per_core_hour
            + u.iaas_mem_mb_seconds / 1024.0 / 3600.0 * self.per_gb_hour
    }

    /// The serverless component.
    pub fn serverless_cost(&self, u: &BillableUsage) -> f64 {
        u.invocations as f64 * self.per_invocation
            + u.serverless_mem_mb_seconds / 1024.0 * self.per_gb_second
    }

    /// Price an always-on IaaS deployment directly from a usage summary
    /// (everything allocated is rented).
    pub fn cost_if_all_iaas(&self, u: &UsageSummary) -> f64 {
        self.iaas_cost(&BillableUsage {
            iaas_core_seconds: u.core_seconds,
            iaas_mem_mb_seconds: u.mem_mb_seconds,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iaas_cost_scales_linearly() {
        let m = CostModel::default();
        let u = BillableUsage {
            iaas_core_seconds: 3600.0 * 10.0,            // 10 core-hours
            iaas_mem_mb_seconds: 1024.0 * 3600.0 * 20.0, // 20 GB-hours
            ..Default::default()
        };
        let want = 10.0 * m.per_core_hour + 20.0 * m.per_gb_hour;
        assert!((m.cost(&u) - want).abs() < 1e-12);
        let double = BillableUsage {
            iaas_core_seconds: u.iaas_core_seconds * 2.0,
            iaas_mem_mb_seconds: u.iaas_mem_mb_seconds * 2.0,
            ..Default::default()
        };
        assert!((m.cost(&double) - 2.0 * want).abs() < 1e-12);
    }

    #[test]
    fn serverless_cost_counts_invocations_and_gb_seconds() {
        let m = CostModel::default();
        let u = BillableUsage {
            invocations: 1_000_000,
            serverless_mem_mb_seconds: 1024.0 * 100_000.0, // 100k GB-s
            ..Default::default()
        };
        let want = 0.2 + 100_000.0 * m.per_gb_second;
        assert!((m.cost(&u) - want).abs() < 1e-9);
    }

    #[test]
    fn empty_usage_is_free() {
        assert_eq!(CostModel::default().cost(&BillableUsage::default()), 0.0);
    }

    #[test]
    fn low_utilisation_favors_serverless() {
        // The paper's economics: a service busy 5 % of the time on a
        // 4-core VM vs paying per invocation.
        let m = CostModel::default();
        let day = 86_400.0;
        let iaas = BillableUsage {
            iaas_core_seconds: 4.0 * day,
            iaas_mem_mb_seconds: 8.0 * 1024.0 * day,
            ..Default::default()
        };
        // Same work serverless: 2 qps × 100 ms × 256 MB.
        let invocations = (2.0 * day) as u64;
        let serverless = BillableUsage {
            invocations,
            serverless_mem_mb_seconds: invocations as f64 * 0.1 * 256.0,
            ..Default::default()
        };
        assert!(
            m.cost(&serverless) < m.cost(&iaas) / 5.0,
            "serverless {} vs iaas {}",
            m.cost(&serverless),
            m.cost(&iaas)
        );
    }

    #[test]
    fn high_utilisation_favors_iaas() {
        let m = CostModel::default();
        let day = 86_400.0;
        let iaas = BillableUsage {
            iaas_core_seconds: 4.0 * day,
            iaas_mem_mb_seconds: 8.0 * 1024.0 * day,
            ..Default::default()
        };
        // Pushing enough sustained traffic through serverless (150 qps
        // of 100 ms / 256 MB invocations) that the per-GB-second bill
        // crosses the flat VM rent — the list-price crossover sits well
        // above the point where the VM's cores are merely busy.
        let invocations = (150.0 * day) as u64;
        let serverless = BillableUsage {
            invocations,
            serverless_mem_mb_seconds: invocations as f64 * 0.1 * 256.0,
            ..Default::default()
        };
        assert!(
            m.cost(&iaas) < m.cost(&serverless),
            "iaas {} vs serverless {}",
            m.cost(&iaas),
            m.cost(&serverless)
        );
    }

    #[test]
    fn cost_if_all_iaas_matches_manual_split() {
        let m = CostModel::default();
        let summary = UsageSummary {
            core_seconds: 1000.0,
            mem_mb_seconds: 2048.0 * 500.0,
            core_seconds_consumed: 100.0,
            peak_cores: 4.0,
            peak_mem_mb: 2048.0,
            avg_utilization: 0.1,
            min_utilization: 0.0,
            max_utilization: 0.3,
        };
        let direct = m.cost_if_all_iaas(&summary);
        let manual = m.cost(&BillableUsage {
            iaas_core_seconds: 1000.0,
            iaas_mem_mb_seconds: 2048.0 * 500.0,
            ..Default::default()
        });
        assert!((direct - manual).abs() < 1e-12);
    }
}
