//! Exact latency recording and percentile extraction.
//!
//! The QoS of a benchmark is "the 95%-ile latency" (paper §VII-A), and the
//! experiment runs are short enough (minutes of simulated time, ≤ a few
//! million queries) that storing every sample and sorting on demand is both
//! exact and fast. The streaming [`crate::histogram::LogHistogram`] exists
//! for the long-horizon ablations where exact storage is wasteful.

use amoeba_sim::SimDuration;

/// Collects individual query latencies.
///
/// # Examples
///
/// ```
/// use amoeba_metrics::LatencyRecorder;
/// use amoeba_sim::SimDuration;
///
/// let mut r = LatencyRecorder::new();
/// for ms in [80, 95, 110, 300] {
///     r.record(SimDuration::from_millis(ms));
/// }
/// // The paper's QoS metric: the 95th-percentile latency.
/// assert_eq!(r.quantile(0.95).unwrap().as_millis(), 300);
/// assert_eq!(r.violation_ratio(SimDuration::from_millis(200)), 0.25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
    sorted: bool,
}

/// Summary statistics extracted from a recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median (p50), seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds — the paper's QoS metric.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one query latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples_us.push(latency.as_micros());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples_us.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
    }

    /// Exact `q`-quantile (`0 ≤ q ≤ 1`) by the nearest-rank method, which
    /// is what "the 95%-ile latency of the benchmark" means operationally:
    /// the smallest sample such that ≥ q of all samples are ≤ it.
    /// `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        if self.samples_us.is_empty() {
            return None;
        }
        debug_assert!((0.0..=1.0).contains(&q));
        self.ensure_sorted();
        let n = self.samples_us.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(SimDuration::from_micros(self.samples_us[rank - 1]))
    }

    /// Mean latency. `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples_us.is_empty() {
            return None;
        }
        let sum: u128 = self.samples_us.iter().map(|&x| x as u128).sum();
        Some(SimDuration::from_micros(
            (sum / self.samples_us.len() as u128) as u64,
        ))
    }

    /// Largest sample. `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples_us
            .iter()
            .max()
            .map(|&x| SimDuration::from_micros(x))
    }

    /// Fraction of samples strictly above `threshold` — the QoS-violation
    /// ratio of Fig. 16.
    pub fn violation_ratio(&self, threshold: SimDuration) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let over = self
            .samples_us
            .iter()
            .filter(|&&x| x > threshold.as_micros())
            .count();
        over as f64 / self.samples_us.len() as f64
    }

    /// Full summary. `None` when empty.
    pub fn stats(&mut self) -> Option<LatencyStats> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mean_s = self.mean().unwrap().as_secs_f64();
        Some(LatencyStats {
            count: self.count(),
            mean_s,
            p50_s: self.quantile(0.50).unwrap().as_secs_f64(),
            p95_s: self.quantile(0.95).unwrap().as_secs_f64(),
            p99_s: self.quantile(0.99).unwrap().as_secs_f64(),
            max_s: self.max().unwrap().as_secs_f64(),
        })
    }

    /// The raw samples in sorted order, as seconds — input to
    /// [`crate::cdf::Cdf::from_sorted_seconds`].
    pub fn sorted_seconds(&mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.samples_us.iter().map(|&us| us as f64 / 1e6).collect()
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals_ms: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &v in vals_ms {
            r.record(SimDuration::from_millis(v));
        }
        r
    }

    #[test]
    fn empty_recorder_returns_none() {
        let mut r = LatencyRecorder::new();
        assert!(r.quantile(0.95).is_none());
        assert!(r.mean().is_none());
        assert!(r.max().is_none());
        assert!(r.stats().is_none());
        assert_eq!(r.violation_ratio(SimDuration::from_millis(1)), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut r = rec(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.quantile(0.5).unwrap().as_millis(), 50);
        assert_eq!(r.quantile(0.95).unwrap().as_millis(), 100);
        assert_eq!(r.quantile(0.9).unwrap().as_millis(), 90);
        assert_eq!(r.quantile(0.0).unwrap().as_millis(), 10);
        assert_eq!(r.quantile(1.0).unwrap().as_millis(), 100);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut r = rec(&[42]);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(r.quantile(q).unwrap().as_millis(), 42);
        }
    }

    #[test]
    fn mean_and_max() {
        let r = rec(&[10, 20, 30]);
        assert_eq!(r.mean().unwrap().as_millis(), 20);
        assert_eq!(r.max().unwrap().as_millis(), 30);
    }

    #[test]
    fn violation_ratio_counts_strictly_above() {
        let r = rec(&[10, 20, 30, 40]);
        assert_eq!(r.violation_ratio(SimDuration::from_millis(20)), 0.5);
        assert_eq!(r.violation_ratio(SimDuration::from_millis(40)), 0.0);
        assert_eq!(r.violation_ratio(SimDuration::from_millis(5)), 1.0);
    }

    #[test]
    fn recording_after_quantile_stays_correct() {
        let mut r = rec(&[30, 10]);
        assert_eq!(r.quantile(1.0).unwrap().as_millis(), 30);
        r.record(SimDuration::from_millis(50));
        assert_eq!(r.quantile(1.0).unwrap().as_millis(), 50);
        assert_eq!(r.count(), 3);
    }

    #[test]
    fn stats_all_fields_consistent() {
        let mut r = rec(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let s = r.stats().unwrap();
        assert_eq!(s.count, 10);
        assert!((s.mean_s - 0.0055).abs() < 1e-9);
        assert!((s.p95_s - 0.010).abs() < 1e-9);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = rec(&[10, 20]);
        let b = rec(&[30]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max().unwrap().as_millis(), 30);
    }

    #[test]
    fn sorted_seconds_ascending() {
        let mut r = rec(&[30, 10, 20]);
        let s = r.sorted_seconds();
        assert_eq!(s, vec![0.010, 0.020, 0.030]);
    }

    proptest::proptest! {
        #[test]
        fn quantile_matches_sorted_index(mut vals in proptest::collection::vec(0u64..10_000, 1..200), q in 0.0f64..=1.0) {
            let mut r = LatencyRecorder::new();
            for &v in &vals {
                r.record(SimDuration::from_micros(v));
            }
            vals.sort_unstable();
            let n = vals.len();
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            prop_assert_eq!(r.quantile(q).unwrap().as_micros(), vals[rank - 1]);
        }

        #[test]
        fn quantile_is_monotone_in_q(vals in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut r = LatencyRecorder::new();
            for &v in &vals {
                r.record(SimDuration::from_micros(v));
            }
            let mut prev = 0;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let x = r.quantile(q).unwrap().as_micros();
                prop_assert!(x >= prev);
                prev = x;
            }
        }
    }

    use proptest::prelude::*;
}
