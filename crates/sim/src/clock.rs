//! The simulation clock: a monotone wrapper around [`SimTime`] that the
//! driver loop advances as events pop.

use crate::time::{SimDuration, SimTime};

/// Monotone virtual clock.
///
/// Advancing backwards is a logic error in the driver loop and panics in
/// debug builds; in release it clamps (the saturating arithmetic in
/// [`SimTime`] makes that safe).
#[derive(Debug, Clone, Copy, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at `t = 0`.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance to `t`. `t` must not be in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        if t > self.now {
            self.now = t;
        }
    }

    /// Advance by a span.
    pub fn advance_by(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Elapsed time since an earlier instant.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        self.now.duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
        c.advance_by(SimDuration::from_secs(2));
        assert_eq!(c.now(), SimTime::from_secs(7));
    }

    #[test]
    fn since_measures_elapsed() {
        let mut c = Clock::new();
        let start = c.now();
        c.advance_by(SimDuration::from_millis(1500));
        assert_eq!(c.since(start), SimDuration::from_millis(1500));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    #[cfg(debug_assertions)]
    fn backwards_advance_panics_in_debug() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(5));
        c.advance_to(SimTime::from_secs(4));
    }

    #[test]
    fn advancing_to_same_instant_is_ok() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(1));
        c.advance_to(SimTime::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(1));
    }
}
