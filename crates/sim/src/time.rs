//! Virtual time. All simulation timestamps are integer microseconds so that
//! event ordering never depends on floating-point rounding.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second, as the base unit conversion.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds. Non-negative by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for deadlines that are never meant to fire.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// actually later, which makes interval accounting robust against
    /// same-timestamp event races.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    /// NaN and negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        // `!(x > 0)` is deliberate: it catches NaN as well as <= 0.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(factor > 0.0) {
            return SimDuration::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

fn secs_to_micros(s: f64) -> u64 {
    // `!(x > 0)` is deliberate: it catches NaN as well as <= 0.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(s > 0.0) {
        return 0;
    }
    let us = s * MICROS_PER_SEC as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        self.saturating_sub(other)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < MICROS_PER_SEC {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-2.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - SimTime::from_secs(6), SimDuration::from_secs(4));
        // Saturating: "earlier - later" is zero, not underflow.
        assert_eq!(SimTime::from_secs(6) - t, SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let a = SimDuration::from_secs(2);
        let b = SimDuration::from_secs(3);
        assert_eq!(b - a, SimDuration::from_secs(1));
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(SimDuration::MAX + a, SimDuration::MAX);
        assert_eq!(SimDuration::MAX * 2, SimDuration::MAX);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_micros(1000);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(1500));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "250us");
        assert_eq!(format!("{}", SimDuration::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::from_secs(1).checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(2))
        );
    }
}
