//! Reproducible randomness.
//!
//! The core generator is xoshiro256** seeded through SplitMix64 — the
//! canonical seeding procedure recommended by the xoshiro authors — both
//! implemented locally so the simulation's determinism does not depend on
//! an external crate's version. [`Distributions`] adds the samplers the
//! workload generators need (exponential inter-arrivals for the Poisson
//! processes of the M/M/N model, normal/lognormal noise for service times).

/// SplitMix64: a tiny, full-period 64-bit generator used to expand one seed
/// word into the 256-bit xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the main simulation generator. Fast, 2^256−1 period,
/// passes BigCrush; plenty for a workload simulator.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion (never yields the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The long-jump function: advances the stream by 2^192 steps, used to
    /// split one seed into independent substreams (one per simulated
    /// service) without correlation.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x76e15d3efefdcbbf,
            0xc5004e441c522fb3,
            0x77710069854ee241,
            0x39109bb02acbe635,
        ];
        let mut s = [0u64; 4];
        for &jump in &LONG_JUMP {
            for b in 0..64 {
                if (jump >> b) & 1 == 1 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

/// The simulation RNG with distribution samplers attached.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256StarStar,
    /// Cached second normal variate from Box-Muller.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Seed the RNG.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Fork an independent substream (2^192 apart on the underlying
    /// sequence). Use one stream per service so adding a service never
    /// perturbs the arrivals of another.
    pub fn fork(&mut self) -> SimRng {
        // Child continues from the current position; the parent long-jumps
        // 2^192 steps ahead, so the two streams cannot overlap at any
        // realistic sample count.
        let child = self.inner.clone();
        self.inner.long_jump();
        SimRng {
            inner: child,
            spare_normal: None,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Distribution samplers over a uniform bit source.
pub trait Distributions {
    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn uniform(&mut self) -> f64;

    /// Uniform in `[lo, hi)`. Requires `lo <= hi`.
    fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via rejection-free Lemire reduction
    /// (bias negligible at simulator scale).
    fn uniform_usize(&mut self, n: usize) -> usize;

    /// Exponential with rate `lambda` (mean `1/lambda`). This is the
    /// inter-arrival sampler behind every Poisson arrival process in the
    /// workload crate. `lambda` must be positive.
    fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        // 1 - uniform() is in (0, 1], so ln() is finite.
        -(1.0 - self.uniform()).ln() / lambda
    }

    /// Standard normal via Box-Muller.
    fn standard_normal(&mut self) -> f64;

    /// Normal with the given mean and standard deviation.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal: `exp(N(mu, sigma))`. Used for cold-start and service-time
    /// jitter, which are right-skewed in real serverless platforms.
    fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bernoulli with probability `p`.
    fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

impl Distributions for SimRng {
    fn uniform(&mut self) -> f64 {
        // Top 53 bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn uniform_usize(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box-Muller on two uniforms; u1 in (0, 1] avoids ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(13);
        let lambda = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative_and_finite() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..50_000 {
            let x = rng.exponential(0.5);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(19);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::seed_from_u64(23);
        for _ in 0..10_000 {
            assert!(rng.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn forked_streams_are_independentish() {
        let mut parent = SimRng::seed_from_u64(99);
        let mut child = parent.fork();
        // The two streams should not produce identical sequences.
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let mut ca = a.fork();
        let mut cb = b.fork();
        for _ in 0..100 {
            assert_eq!(ca.next_u64(), cb.next_u64());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_usize_bounds() {
        let mut rng = SimRng::seed_from_u64(31);
        for _ in 0..10_000 {
            assert!(rng.uniform_usize(7) < 7);
        }
        assert_eq!(rng.uniform_usize(0), 0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::seed_from_u64(37);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }
}
