#![warn(missing_docs)]
//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate on which the Amoeba reproduction runs. The
//! paper evaluated Amoeba on a physical 3-node cluster (OpenWhisk +
//! Nameko-on-VMs); here the cluster is replaced by a discrete-event
//! simulation, so everything above this crate needs three primitives:
//!
//! * a microsecond-resolution virtual clock ([`SimTime`], [`SimDuration`]),
//! * a cancellable, deterministically ordered event calendar
//!   ([`EventQueue`]),
//! * reproducible randomness ([`rng`]) so that every experiment is exactly
//!   replayable from a seed.
//!
//! Determinism is load-bearing: Fig. 15 of the paper compares the
//! controller's *predicted* switch point against the *real* one found by
//! enumeration, which is only meaningful if re-running the same workload
//! yields the same latencies.

pub mod clock;
pub mod events;
pub mod rng;
pub mod time;

pub use clock::Clock;
pub use events::{EventId, EventQueue, ScheduledEvent};
pub use rng::{Distributions, SimRng, SplitMix64, Xoshiro256StarStar};
pub use time::{SimDuration, SimTime};
