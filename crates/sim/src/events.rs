//! Cancellable event calendar with deterministic ordering.
//!
//! Events scheduled for the same instant pop in the order they were pushed
//! (FIFO tie-break on a monotone sequence number), so a simulation run is a
//! pure function of its inputs and seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number, mostly useful in logs.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event popped from the queue: when it fires, its handle, and the
/// caller-defined payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of future events.
///
/// # Examples
///
/// ```
/// use amoeba_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// let first = q.push(SimTime::from_secs(1), "sooner");
/// q.cancel(first);
/// assert_eq!(q.pop().unwrap().payload, "later");
/// ```
///
/// Cancellation is lazy: cancelled entries stay in the heap and are skipped
/// on pop, which keeps `cancel` O(log n) amortised without a secondary
/// index into the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    // Sorted would be overkill: cancellations are rare relative to pushes.
    cancelled: std::collections::HashSet<u64>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns a handle that can be
    /// used to cancel it.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
        self.live += 1;
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually prevented it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // An id can refer to an event that already popped; inserting it into
        // the tombstone set would leak, so only count ids we can still see.
        if self.contains_seq(id.0) && self.cancelled.insert(id.0) {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn contains_seq(&self, seq: u64) -> bool {
        // O(n) scan, but cancel is used for keep-alive timers and prewarm
        // deadlines — a handful per simulated second.
        self.heap.iter().any(|e| e.seq == seq) && !self.cancelled.contains(&seq)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live -= 1;
            return Some(ScheduledEvent {
                time: entry.time,
                id: EventId(entry.seq),
                payload: entry.payload,
            });
        }
        None
    }

    /// The firing time of the earliest pending event, if any.
    ///
    /// Takes `&mut self` to sweep cancelled tombstones off the top of
    /// the heap as it looks — amortised O(1) per call, which the
    /// epoch-sliced runtime relies on (it peeks before every pop).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_pop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        let b = q.push(t(1), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
        // b already fired; cancelling must be a no-op, not a leak.
        assert!(!q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(4), "b");
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let ids: Vec<_> = (0..10).map(|i| q.push(t(i), i)).collect();
        assert_eq!(q.len(), 10);
        q.cancel(ids[3]);
        q.cancel(ids[7]);
        assert_eq!(q.len(), 8);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 8);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        q.push(t(1), 1u64);
        q.push(t(5), 5);
        let mut seen = Vec::new();
        while let Some(ev) = q.pop() {
            assert!(ev.time >= now, "time went backwards");
            now = ev.time;
            seen.push(ev.payload);
            if ev.payload == 1 {
                // Schedule both before and after the remaining event.
                q.push(t(3), 3);
                q.push(t(9), 9);
            }
        }
        assert_eq!(seen, [1, 3, 5, 9]);
        let _ = SimDuration::ZERO;
    }
}
