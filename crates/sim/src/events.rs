//! Cancellable event calendar with deterministic ordering.
//!
//! Events scheduled for the same instant pop in the order they were pushed
//! (FIFO tie-break on a monotone sequence number), so a simulation run is a
//! pure function of its inputs and seed.
//!
//! The queue is a calendar (bucket ring) keyed on the discrete microsecond
//! grid rather than a binary heap: each bucket covers `2^BUCKET_SHIFT` µs
//! and holds its events in ascending `(time, seq)` order, so the hot path —
//! push at `now + δ`, pop the front of the cursor's bucket — is O(1) with
//! no heap sift. Events past the ring's horizon stay in their modulo slot
//! and are filtered by an absolute-bucket lap check; a full fruitless lap
//! makes the cursor jump straight to the earliest occupied bucket, so a
//! sparse calendar never degenerates into a linear scan per pop.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Bucket width: `2^BUCKET_SHIFT` microseconds (≈16.4 ms).
const BUCKET_SHIFT: u32 = 14;
/// Number of buckets in the ring. Together with the width this spans a
/// ≈33.6 s horizon; later events wrap and are lap-checked.
const RING: usize = 2048;
const RING_MASK: u64 = (RING as u64) - 1;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number, mostly useful in logs.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event popped from the queue: when it fires, its handle, and the
/// caller-defined payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The caller-defined payload.
    pub payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// Absolute bucket index on the tick grid (not yet masked to the ring).
    fn abs(&self) -> u64 {
        self.time.as_micros() >> BUCKET_SHIFT
    }
}

/// A priority queue of future events.
///
/// # Examples
///
/// ```
/// use amoeba_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// let first = q.push(SimTime::from_secs(1), "sooner");
/// q.cancel(first);
/// assert_eq!(q.pop().unwrap().payload, "later");
/// ```
///
/// Cancellation is lazy: cancelled entries stay in their bucket and are
/// skipped when the cursor reaches them, which keeps `cancel` cheap without
/// a secondary index into the calendar.
pub struct EventQueue<E> {
    /// The bucket ring. Each bucket holds entries whose absolute bucket
    /// index is congruent to its slot, in ascending `(time, seq)` order.
    ring: Vec<VecDeque<Entry<E>>>,
    /// Absolute bucket index the cursor is currently draining. Invariant:
    /// no entry's absolute index is below this (pushes into the past
    /// rewind it).
    cur_abs: u64,
    next_seq: u64,
    // Sorted would be overkill: cancellations are rare relative to pushes.
    cancelled: std::collections::HashSet<u64>,
    /// Pending (non-cancelled) events.
    live: usize,
    /// All stored entries, including not-yet-swept tombstones.
    entries: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            ring: (0..RING).map(|_| VecDeque::new()).collect(),
            cur_abs: 0,
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
            entries: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns a handle that can be
    /// used to cancel it.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let abs = time.as_micros() >> BUCKET_SHIFT;
        // Scheduling before the cursor (never done by the runtime, but
        // legal) rewinds it so the entry is still reachable.
        if abs < self.cur_abs {
            self.cur_abs = abs;
        }
        let bucket = &mut self.ring[(abs & RING_MASK) as usize];
        let entry = Entry { time, seq, payload };
        // `seq` is larger than every existing seq, so ordering within the
        // bucket reduces to time: the entry goes after all entries at or
        // before `time`. Pushes arrive in roughly ascending time, so the
        // common case is a plain append.
        match bucket.back() {
            Some(last) if last.time > time => {
                let mut lo = 0usize;
                let mut hi = bucket.len();
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if bucket[mid].time <= time {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                bucket.insert(lo, entry);
            }
            _ => bucket.push_back(entry),
        }
        self.live += 1;
        self.entries += 1;
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually prevented it from firing).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // An id can refer to an event that already popped; inserting it into
        // the tombstone set would leak, so only count ids we can still see.
        if self.contains_seq(id.0) && self.cancelled.insert(id.0) {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn contains_seq(&self, seq: u64) -> bool {
        // O(n) scan, but cancel is used for keep-alive timers and prewarm
        // deadlines — a handful per simulated second.
        self.ring.iter().flatten().any(|e| e.seq == seq) && !self.cancelled.contains(&seq)
    }

    /// Advance the cursor until the front of its bucket is a live entry
    /// scheduled for the current absolute bucket — the global `(time, seq)`
    /// minimum — sweeping tombstones as they surface. Returns `false` when
    /// no live events remain.
    fn settle(&mut self) -> bool {
        let mut steps = 0usize;
        while self.entries > 0 {
            let bucket = &mut self.ring[(self.cur_abs & RING_MASK) as usize];
            while let Some(front) = bucket.front() {
                // A front from a later lap leaves the bucket parked until
                // the cursor comes back around.
                if front.abs() != self.cur_abs {
                    break;
                }
                // Guard the tombstone probe: cancels are rare, so the
                // set is almost always empty and the hash per settled
                // entry would dominate this loop.
                if !self.cancelled.is_empty() && self.cancelled.remove(&front.seq) {
                    bucket.pop_front();
                    self.entries -= 1;
                    continue;
                }
                return true;
            }
            self.cur_abs += 1;
            steps += 1;
            if steps >= RING {
                // A full fruitless lap: everything left is beyond the
                // ring's horizon. Jump straight to the earliest bucket.
                steps = 0;
                self.cur_abs = self.min_front_abs();
            }
        }
        false
    }

    /// The smallest absolute bucket index over all stored entries. Only
    /// called while `entries > 0`.
    fn min_front_abs(&self) -> u64 {
        self.ring
            .iter()
            .filter_map(|b| b.front())
            .map(|e| e.abs())
            .min()
            .expect("min_front_abs on an empty calendar")
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if !self.settle() {
            return None;
        }
        let bucket = &mut self.ring[(self.cur_abs & RING_MASK) as usize];
        let entry = bucket.pop_front().expect("settle positioned the cursor");
        self.entries -= 1;
        self.live -= 1;
        Some(ScheduledEvent {
            time: entry.time,
            id: EventId(entry.seq),
            payload: entry.payload,
        })
    }

    /// The firing time of the earliest pending event, if any.
    ///
    /// Takes `&mut self` to position the cursor and sweep cancelled
    /// tombstones as it looks — amortised O(1) per call, which the
    /// epoch-sliced runtime relies on (it peeks before every pop).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        self.ring[(self.cur_abs & RING_MASK) as usize]
            .front()
            .map(|e| e.time)
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_pop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        let b = q.push(t(1), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
        // b already fired; cancelling must be a no-op, not a leak.
        assert!(!q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(4), "b");
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let ids: Vec<_> = (0..10).map(|i| q.push(t(i), i)).collect();
        assert_eq!(q.len(), 10);
        q.cancel(ids[3]);
        q.cancel(ids[7]);
        assert_eq!(q.len(), 8);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 8);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        q.push(t(1), 1u64);
        q.push(t(5), 5);
        let mut seen = Vec::new();
        while let Some(ev) = q.pop() {
            assert!(ev.time >= now, "time went backwards");
            now = ev.time;
            seen.push(ev.payload);
            if ev.payload == 1 {
                // Schedule both before and after the remaining event.
                q.push(t(3), 3);
                q.push(t(9), 9);
            }
        }
        assert_eq!(seen, [1, 3, 5, 9]);
        let _ = SimDuration::ZERO;
    }

    #[test]
    fn same_bucket_sub_tick_times_stay_ordered() {
        // Distinct times inside one bucket (< 2^BUCKET_SHIFT µs apart)
        // must still pop by time, not insertion order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(900), "c");
        q.push(SimTime::from_micros(100), "a");
        q.push(SimTime::from_micros(500), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn far_future_beyond_ring_horizon() {
        // Two events a ring-lap apart land in nearby modulo slots; the
        // lap check must keep the later one parked.
        let mut q = EventQueue::new();
        let lap = SimDuration::from_micros((RING as u64) << BUCKET_SHIFT);
        let near = SimTime::from_micros(10);
        let far = near + lap + SimDuration::from_micros(3);
        q.push(far, "far");
        q.push(near, "near");
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop().unwrap().payload, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_before_cursor_rewinds() {
        let mut q = EventQueue::new();
        q.push(t(100), "late");
        assert_eq!(q.pop().unwrap().payload, "late");
        // The cursor now sits at t=100's bucket; a push into the past
        // must still be reachable, and in order.
        q.push(t(1), "early");
        q.push(t(50), "mid");
        assert_eq!(q.pop().unwrap().payload, "early");
        assert_eq!(q.pop().unwrap().payload, "mid");
    }
}
