//! Property: the calendar (bucket-ring) event queue is observationally
//! identical to the binary-heap queue it replaced.
//!
//! A reference model — the old `BinaryHeap` implementation, kept here
//! verbatim in miniature — is driven side by side with [`EventQueue`]
//! under randomized operation streams: pushes with same-tick ties,
//! sub-bucket orderings and far-future times past the ring horizon,
//! lazy cancels (of live, already-popped and never-issued handles),
//! pops and peeks interleaved. Every observable — pop order `(time,
//! seq, payload)`, peeked times, cancel return values, lengths — must
//! match exactly, which is the executable form of the golden-trace
//! argument: swapping the queue cannot perturb any simulation.

use amoeba_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// The pre-calendar implementation, reduced to its observable API.
struct HeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    live: usize,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            live: 0,
        }
    }

    fn push(&mut self, time: SimTime, payload: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
        self.live += 1;
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if seq >= self.next_seq {
            return false;
        }
        let visible = self.heap.iter().any(|e| e.seq == seq) && !self.cancelled.contains(&seq);
        if visible && self.cancelled.insert(seq) {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live -= 1;
            return Some((entry.time, entry.seq, entry.payload));
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// One step of the randomized schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Push at an offset (µs) from the largest time pushed so far.
    /// Small offsets generate same-bucket and same-tick collisions;
    /// zero is an exact tie.
    Push(u32),
    /// Push far past the ring horizon (> 2048 × 16.4 ms ≈ 33.6 s).
    PushFar(u32),
    /// Cancel the id issued by push number `k` (mod pushes so far) —
    /// may be live, already popped, or already cancelled.
    Cancel(u8),
    Pop,
    Peek,
}

/// Decode a generated `(tag, value)` pair into a weighted op: pushes
/// dominate, with far-pushes, cancels, pops and peeks mixed in.
fn decode(tag: u8, value: u32) -> Op {
    match tag % 12 {
        0..=4 => Op::Push(value % 5_000),
        5 => Op::PushFar(value % 100_000),
        6 => Op::Cancel((value % 256) as u8),
        7..=9 => Op::Pop,
        _ => Op::Peek,
    }
}

fn run_schedule(ops: &[Op]) {
    let mut calendar: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    // Handles issued so far, in push order, paired by construction.
    let mut cal_ids = Vec::new();
    let mut heap_ids = Vec::new();
    let mut horizon = SimTime::ZERO;
    let mut payload = 0u64;

    for op in ops {
        match op {
            Op::Push(delta) | Op::PushFar(delta) => {
                let base = if matches!(op, Op::PushFar(_)) {
                    // Past the 2048-bucket × 2^14 µs ring span.
                    horizon + amoeba_sim::SimDuration::from_secs(40)
                } else {
                    horizon
                };
                let t = base + amoeba_sim::SimDuration::from_micros(u64::from(*delta));
                if matches!(op, Op::Push(_)) {
                    horizon = horizon.max(t);
                }
                cal_ids.push(calendar.push(t, payload));
                heap_ids.push(heap.push(t, payload));
                payload += 1;
            }
            Op::Cancel(k) => {
                if !cal_ids.is_empty() {
                    let i = usize::from(*k) % cal_ids.len();
                    assert_eq!(calendar.cancel(cal_ids[i]), heap.cancel(heap_ids[i]));
                }
            }
            Op::Pop => {
                let got = calendar.pop().map(|e| (e.time, e.id.raw(), e.payload));
                assert_eq!(got, heap.pop());
            }
            Op::Peek => {
                assert_eq!(calendar.peek_time(), heap.peek_time());
            }
        }
        assert_eq!(calendar.len(), heap.len());
        assert_eq!(calendar.is_empty(), heap.len() == 0);
    }

    // Drain both: the full remaining order must agree.
    loop {
        let got = calendar.pop().map(|e| (e.time, e.id.raw(), e.payload));
        let want = heap.pop();
        assert_eq!(got, want);
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized interleavings of push / far-push / cancel / pop /
    /// peek observe identical behaviour from both queues.
    #[test]
    fn calendar_matches_binary_heap(
        raw in proptest::collection::vec((0u8..12, 0u32..1_000_000), 1..200),
    ) {
        let ops: Vec<Op> = raw.into_iter().map(|(t, v)| decode(t, v)).collect();
        run_schedule(&ops);
    }
}

/// A fixed adversarial schedule: a burst of exact same-tick ties, a
/// far-future stray, then pop/push interleaving across the tie group —
/// the cases the randomized generator hits only probabilistically.
#[test]
fn same_tick_burst_with_far_future_stray() {
    let ops: Vec<Op> = std::iter::repeat_n(Op::Push(0), 20)
        .chain([Op::PushFar(7), Op::Pop, Op::Push(0), Op::Peek])
        .chain(std::iter::repeat_n(Op::Pop, 25))
        .collect();
    run_schedule(&ops);
}
