#![warn(missing_docs)]
//! Contention meters and the performance models built from them.
//!
//! §IV-B of the paper: "we design three delicate functions as contention
//! meters to capture the pressure value on the shared core, IO bandwidth,
//! and network bandwidth in the serverless platform". Each meter is a
//! tiny function almost pure in one resource; its latency, compared
//! against an offline-profiled latency-vs-pressure curve (Fig. 8), reveals
//! how much pressure the co-located tenants are putting on that resource.
//!
//! The same profiling phase also builds, per microservice × resource, a
//! **latency surface** over (service load, meter pressure) — Fig. 9 —
//! which the deployment controller interpolates to predict `L₁, L₂, L₃`
//! in Eq. 6.

pub mod functions;
pub mod profile;
pub mod surface;

pub use functions::{
    cpu_meter, io_meter, meter_for, meter_overhead_fraction, net_meter, METER_QPS,
};
pub use profile::ProfileCurve;
pub use surface::LatencySurface;
