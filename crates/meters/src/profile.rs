//! Latency-vs-pressure profile curves (Fig. 8) and their inversion.
//!
//! §IV-B, step 1 (*Profiling*): run a meter alone on the platform at
//! increasing pressure and record its latency — a monotone curve per
//! resource. Step 2 (*Measurement*): at runtime, compare the observed
//! meter latency against the curve to recover the pressure on that
//! resource.

/// A monotone pressure → latency curve with both directions of lookup.
///
/// Pressure is the resource's utilisation in `[0, u_max]`; latency is the
/// meter's mean end-to-end latency in seconds.
///
/// # Examples
///
/// ```
/// use amoeba_meters::ProfileCurve;
///
/// let curve = ProfileCurve::from_sweep(vec![
///     (0.0, 0.050),
///     (0.5, 0.080),
///     (0.9, 0.400),
/// ]);
/// // Observe a 80 ms meter latency at runtime -> the pool is at ~50 %.
/// assert!((curve.pressure_at(0.080) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileCurve {
    /// `(pressure, latency_s)` pairs, strictly increasing in both
    /// coordinates.
    points: Vec<(f64, f64)>,
}

impl ProfileCurve {
    /// Build from sweep samples. Pressures must be strictly increasing;
    /// latencies are made non-decreasing by a running maximum (measured
    /// sweeps jitter, but the underlying relation is monotone — the
    /// paper's Fig. 8 curves are). Panics on fewer than two samples.
    pub fn from_sweep(mut samples: Vec<(f64, f64)>) -> Self {
        assert!(samples.len() >= 2, "need at least two profile points");
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(
            samples.windows(2).all(|w| w[1].0 > w[0].0),
            "duplicate pressure points"
        );
        let mut run_max = f64::MIN;
        for p in &mut samples {
            assert!(p.1.is_finite() && p.1 > 0.0, "bad latency {}", p.1);
            run_max = run_max.max(p.1);
            p.1 = run_max;
        }
        ProfileCurve { points: samples }
    }

    /// The analytic curve for a meter on the simulated platform: latency
    /// = overhead + Σ phases·slowdown. Useful as ground truth in tests
    /// and as a bootstrap before any measured sweep exists.
    pub fn analytic(
        phases: [f64; 3],
        resource: usize,
        overhead_s: f64,
        kappa: f64,
        u_max: f64,
        points: usize,
    ) -> Self {
        assert!(resource < 3 && points >= 2);
        let samples = (0..points)
            .map(|i| {
                let u = u_max * i as f64 / (points - 1) as f64;
                let slow = 1.0 + kappa * u * u / (1.0 - u);
                let mut lat = overhead_s;
                for (r, &ph) in phases.iter().enumerate() {
                    lat += if r == resource { ph * slow } else { ph };
                }
                (u, lat)
            })
            .collect();
        ProfileCurve::from_sweep(samples)
    }

    /// The profile points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Latency at a given pressure, linearly interpolated; clamps outside
    /// the profiled range.
    pub fn latency_at(&self, pressure: f64) -> f64 {
        interp(&self.points, pressure, |p| p.0, |p| p.1)
    }

    /// Invert: the pressure that produces `latency_s`. Clamps to the
    /// profiled range — an observed latency below the idle point reads as
    /// zero pressure, above the last point as the maximum profiled
    /// pressure. Flat (zero-sensitivity) stretches resolve to their left
    /// edge, the conservative (lower-pressure) reading.
    pub fn pressure_at(&self, latency_s: f64) -> f64 {
        let pts = &self.points;
        if latency_s <= pts[0].1 {
            return pts[0].0;
        }
        if latency_s >= pts[pts.len() - 1].1 {
            return pts[pts.len() - 1].0;
        }
        for w in pts.windows(2) {
            let (p0, l0) = w[0];
            let (p1, l1) = w[1];
            if latency_s <= l1 {
                if l1 <= l0 {
                    return p0;
                }
                let f = (latency_s - l0) / (l1 - l0);
                return p0 + f * (p1 - p0);
            }
        }
        pts[pts.len() - 1].0
    }

    /// The largest pressure the curve covers.
    pub fn max_pressure(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }
}

fn interp<T>(pts: &[T], x: f64, fx: impl Fn(&T) -> f64, fy: impl Fn(&T) -> f64) -> f64 {
    if x <= fx(&pts[0]) {
        return fy(&pts[0]);
    }
    let last = pts.len() - 1;
    if x >= fx(&pts[last]) {
        return fy(&pts[last]);
    }
    for w in pts.windows(2) {
        let (x0, x1) = (fx(&w[0]), fx(&w[1]));
        if x <= x1 {
            let f = (x - x0) / (x1 - x0);
            return fy(&w[0]) * (1.0 - f) + fy(&w[1]) * f;
        }
    }
    fy(&pts[last])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ProfileCurve {
        ProfileCurve::from_sweep(vec![
            (0.0, 0.050),
            (0.25, 0.060),
            (0.50, 0.085),
            (0.75, 0.150),
            (0.95, 0.600),
        ])
    }

    #[test]
    fn latency_interpolates() {
        let c = curve();
        assert_eq!(c.latency_at(0.0), 0.050);
        assert!((c.latency_at(0.125) - 0.055).abs() < 1e-12);
        assert_eq!(c.latency_at(0.95), 0.600);
    }

    #[test]
    fn latency_clamps_outside_range() {
        let c = curve();
        assert_eq!(c.latency_at(-1.0), 0.050);
        assert_eq!(c.latency_at(2.0), 0.600);
    }

    #[test]
    fn pressure_inverts_latency() {
        let c = curve();
        for &u in &[0.0, 0.1, 0.25, 0.4, 0.6, 0.75, 0.9, 0.95] {
            let lat = c.latency_at(u);
            let back = c.pressure_at(lat);
            assert!((back - u).abs() < 1e-9, "u={u} back={back}");
        }
    }

    #[test]
    fn pressure_clamps_outside_range() {
        let c = curve();
        assert_eq!(c.pressure_at(0.001), 0.0);
        assert_eq!(c.pressure_at(10.0), 0.95);
    }

    #[test]
    fn noisy_sweep_is_monotonised() {
        let c = ProfileCurve::from_sweep(vec![
            (0.0, 0.050),
            (0.2, 0.048), // measurement dip
            (0.4, 0.070),
            (0.6, 0.069), // dip
            (0.8, 0.120),
        ]);
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "not monotone after cleanup: {pts:?}");
        }
    }

    #[test]
    fn flat_stretch_resolves_to_left_edge() {
        let c = ProfileCurve::from_sweep(vec![(0.0, 0.05), (0.5, 0.05), (1.0 - 1e-9, 0.10)]);
        // Within the flat region the conservative answer is pressure 0.
        assert_eq!(c.pressure_at(0.05), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        ProfileCurve::from_sweep(vec![(0.0, 0.05)]);
    }

    #[test]
    #[should_panic(expected = "duplicate pressure")]
    fn rejects_duplicate_pressures() {
        ProfileCurve::from_sweep(vec![(0.5, 0.05), (0.5, 0.06)]);
    }

    #[test]
    fn analytic_curve_matches_slowdown_model() {
        let phases = [0.04, 0.0, 0.0];
        let c = ProfileCurve::analytic(phases, 0, 0.01, 1.2, 0.95, 20);
        // At zero pressure: overhead + cpu phase.
        assert!((c.latency_at(0.0) - 0.05).abs() < 1e-12);
        // At u = 0.5 slowdown = 1 + 1.2*0.25/0.5 = 1.6.
        let want = 0.01 + 0.04 * 1.6;
        assert!((c.latency_at(0.5) - want).abs() < 1e-3);
        // Convex growth toward the pole.
        assert!(c.latency_at(0.95) > c.latency_at(0.5) * 2.0);
    }

    proptest::proptest! {
        #[test]
        fn inversion_round_trip(points in 3usize..20, seed in 0u64..100) {
            // Generate a strictly increasing random curve.
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut next = move || {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                (s % 1000) as f64 / 1000.0
            };
            let mut pressure = 0.0;
            let mut latency = 0.02;
            let mut pts = Vec::new();
            for _ in 0..points {
                pts.push((pressure, latency));
                pressure += 0.01 + next() * 0.2;
                latency += 0.001 + next() * 0.05;
            }
            let c = ProfileCurve::from_sweep(pts.clone());
            for &(u, _) in &pts {
                let back = c.pressure_at(c.latency_at(u));
                prop_assert!((back - u).abs() < 1e-6, "u={u} back={back}");
            }
        }
    }

    use proptest::prelude::*;
}
