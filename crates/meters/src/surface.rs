//! Latency surfaces (Fig. 9).
//!
//! §IV-B: "for each microservice, we co-locate it with each of the
//! contention meters on the serverless platform, adjust the loads of the
//! microservice and the pressure of the contention meter, and built it
//! three latency surfaces that shows how the performance of each
//! microservice degrades as pressure increases in two dimensions."
//!
//! A surface is a rectangular grid over (service load in QPS, resource
//! pressure in utilisation) holding the p95 latency in seconds, with
//! bilinear interpolation between grid points. Surfaces are built either
//! empirically (profiling runs on the simulated platform — see
//! `amoeba-core::profiler`) or analytically from the M/M/N + slowdown
//! closed forms, which is also the ground truth the empirical path is
//! tested against.

use amoeba_queueing::MmnModel;

/// A latency surface: `p95(load, pressure)` for one service × resource.
#[derive(Debug, Clone)]
pub struct LatencySurface {
    /// Load axis (queries/second), strictly increasing.
    loads: Vec<f64>,
    /// Pressure axis (utilisation), strictly increasing.
    pressures: Vec<f64>,
    /// `values[i][j]` = p95 latency at `loads[i]`, `pressures[j]`.
    values: Vec<Vec<f64>>,
}

impl LatencySurface {
    /// Build from a measured grid. Panics on dimension mismatch or
    /// non-increasing axes.
    pub fn from_grid(loads: Vec<f64>, pressures: Vec<f64>, values: Vec<Vec<f64>>) -> Self {
        assert!(loads.len() >= 2 && pressures.len() >= 2, "grid too small");
        assert!(
            loads.windows(2).all(|w| w[1] > w[0]),
            "loads not increasing"
        );
        assert!(
            pressures.windows(2).all(|w| w[1] > w[0]),
            "pressures not increasing"
        );
        assert_eq!(values.len(), loads.len(), "row count");
        for row in &values {
            assert_eq!(row.len(), pressures.len(), "column count");
            assert!(row.iter().all(|v| v.is_finite() && *v > 0.0), "bad latency");
        }
        LatencySurface {
            loads,
            pressures,
            values,
        }
    }

    /// The analytic surface for a service with uncontended phase times
    /// `phases = [cpu, io, net]` (s), per-query overhead (s), contention
    /// curvature `kappa` on the swept `resource`, container ceiling
    /// `n_cap`, and QoS percentile `r`.
    ///
    /// For each grid point the service time is stretched by the swept
    /// resource's slowdown, the container count is what the platform's
    /// autoscaling would settle at for that load, and the p95 latency
    /// comes from the M/M/N waiting-time quantile. Points where the load
    /// exceeds the stable capacity saturate at a large-but-finite
    /// latency so the surface stays monotone and interpolable.
    #[allow(clippy::too_many_arguments)]
    pub fn analytic(
        phases: [f64; 3],
        overhead_s: f64,
        resource: usize,
        kappa: f64,
        n_cap: u32,
        r: f64,
        loads: Vec<f64>,
        pressures: Vec<f64>,
    ) -> Self {
        assert!(resource < 3);
        let base_service_s = overhead_s + phases.iter().sum::<f64>();
        let mut values = Vec::with_capacity(loads.len());
        for &load in &loads {
            // Containers the pool converges to at this load. Sized from
            // the *uncontended* service time, mirroring Eq. 7's prewarm
            // count which depends on the load only — pressure then shows
            // up purely as longer latency, keeping the surface monotone.
            let needed = (load * base_service_s).ceil() as u32 + 2;
            let n = needed.min(n_cap).max(1);
            let mut row: Vec<f64> = Vec::with_capacity(pressures.len());
            for &u in &pressures {
                let slow = 1.0 + kappa * u * u / (1.0 - u);
                let mut service_s = overhead_s;
                for (k, &ph) in phases.iter().enumerate() {
                    service_s += if k == resource { ph * slow } else { ph };
                }
                let mu = 1.0 / service_s;
                let model = MmnModel::new(n, mu).expect("valid model");
                let mut lat = match model.wait_quantile(load, r) {
                    Some(w) => w + service_s,
                    // Unstable: saturate high but finite.
                    None => service_s * 50.0,
                };
                // The stable-side quantile diverges toward the stability
                // boundary while the saturated sentinel is finite; clamp
                // to a running maximum so the row stays monotone across
                // the crossing.
                if let Some(&prev) = row.last() {
                    lat = lat.max(prev);
                }
                row.push(lat);
            }
            values.push(row);
        }
        LatencySurface::from_grid(loads, pressures, values)
    }

    /// Predicted p95 latency at `(load, pressure)`, bilinearly
    /// interpolated and clamped to the grid's bounding box.
    pub fn predict(&self, load: f64, pressure: f64) -> f64 {
        let (i, fi) = locate(&self.loads, load);
        let (j, fj) = locate(&self.pressures, pressure);
        let v00 = self.values[i][j];
        let v01 = self.values[i][j + 1];
        let v10 = self.values[i + 1][j];
        let v11 = self.values[i + 1][j + 1];
        let top = v00 * (1.0 - fj) + v01 * fj;
        let bot = v10 * (1.0 - fj) + v11 * fj;
        top * (1.0 - fi) + bot * fi
    }

    /// Grid axes (load, pressure).
    pub fn axes(&self) -> (&[f64], &[f64]) {
        (&self.loads, &self.pressures)
    }

    /// The raw grid values.
    pub fn values(&self) -> &[Vec<f64>] {
        &self.values
    }
}

/// Find the cell index and in-cell fraction for `x` on `axis`, clamped.
fn locate(axis: &[f64], x: f64) -> (usize, f64) {
    let last = axis.len() - 1;
    if x <= axis[0] {
        return (0, 0.0);
    }
    if x >= axis[last] {
        return (last - 1, 1.0);
    }
    for i in 0..last {
        if x <= axis[i + 1] {
            let f = (x - axis[i]) / (axis[i + 1] - axis[i]);
            return (i, f);
        }
    }
    (last - 1, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> LatencySurface {
        LatencySurface::from_grid(
            vec![0.0, 10.0, 20.0],
            vec![0.0, 0.5, 0.9],
            vec![
                vec![0.10, 0.15, 0.40],
                vec![0.12, 0.20, 0.60],
                vec![0.20, 0.35, 1.20],
            ],
        )
    }

    #[test]
    fn exact_grid_points() {
        let s = grid();
        assert_eq!(s.predict(0.0, 0.0), 0.10);
        assert_eq!(s.predict(10.0, 0.5), 0.20);
        assert_eq!(s.predict(20.0, 0.9), 1.20);
    }

    #[test]
    fn bilinear_between_points() {
        let s = grid();
        // Midpoint of the first cell: mean of its four corners.
        let mid = s.predict(5.0, 0.25);
        let want = (0.10 + 0.15 + 0.12 + 0.20) / 4.0;
        assert!((mid - want).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_grid() {
        let s = grid();
        assert_eq!(s.predict(-5.0, -1.0), 0.10);
        assert_eq!(s.predict(100.0, 5.0), 1.20);
        assert_eq!(s.predict(100.0, 0.0), 0.20);
    }

    #[test]
    fn rejects_bad_grids() {
        let r = std::panic::catch_unwind(|| {
            LatencySurface::from_grid(vec![0.0], vec![0.0, 1.0], vec![vec![1.0, 1.0]])
        });
        assert!(r.is_err(), "too few load points");
        let r = std::panic::catch_unwind(|| {
            LatencySurface::from_grid(
                vec![0.0, 1.0],
                vec![0.0, 1.0],
                vec![vec![1.0, f64::NAN], vec![1.0, 1.0]],
            )
        });
        assert!(r.is_err(), "NaN latency");
    }

    #[test]
    fn analytic_surface_monotone_in_both_axes() {
        let s = LatencySurface::analytic(
            [0.08, 0.0, 0.0],
            0.02,
            0,
            1.2,
            60,
            0.95,
            vec![1.0, 5.0, 10.0, 20.0, 40.0],
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9],
        );
        let (loads, pressures) = s.axes();
        for i in 0..loads.len() {
            for j in 1..pressures.len() {
                assert!(
                    s.values()[i][j] >= s.values()[i][j - 1] - 1e-9,
                    "not monotone in pressure at ({i},{j})"
                );
            }
        }
        // At fixed high pressure, latency grows with load.
        let j = pressures.len() - 1;
        for i in 1..loads.len() {
            assert!(s.values()[i][j] >= s.values()[i - 1][j] - 1e-9);
        }
    }

    #[test]
    fn analytic_surface_idle_point_is_service_time() {
        let s = LatencySurface::analytic(
            [0.08, 0.0, 0.0],
            0.02,
            0,
            1.2,
            60,
            0.95,
            vec![0.5, 10.0],
            vec![0.0, 0.5],
        );
        // At minimal load and zero pressure: p95 ≈ service time (0.1s).
        let v = s.predict(0.5, 0.0);
        assert!((v - 0.10).abs() < 0.01, "idle latency {v}");
    }

    #[test]
    fn analytic_surface_sensitive_only_to_its_resource() {
        // An IO-bound service swept on the CPU axis barely moves.
        let io_heavy = LatencySurface::analytic(
            [0.002, 0.24, 0.0],
            0.02,
            0, // sweep CPU
            1.2,
            60,
            0.95,
            vec![1.0, 10.0],
            vec![0.0, 0.9],
        );
        let base = io_heavy.predict(1.0, 0.0);
        let pressed = io_heavy.predict(1.0, 0.9);
        assert!(
            (pressed - base) / base < 0.1,
            "IO-bound service moved {base} -> {pressed} under CPU pressure"
        );
        // The same service swept on its own (IO) axis moves a lot —
        // exactly the paper's point about per-resource sensitivity.
        let on_io = LatencySurface::analytic(
            [0.002, 0.24, 0.0],
            0.02,
            1, // sweep IO
            1.8,
            60,
            0.95,
            vec![1.0, 10.0],
            vec![0.0, 0.9],
        );
        let pressed_io = on_io.predict(1.0, 0.9);
        let base_io = on_io.predict(1.0, 0.0);
        assert!(pressed_io > base_io * 2.0, "{base_io} -> {pressed_io}");
    }

    #[test]
    fn saturated_region_is_finite() {
        let s = LatencySurface::analytic(
            [0.1, 0.0, 0.0],
            0.0,
            0,
            1.0,
            4, // tiny container cap: load 100 is far beyond capacity
            0.95,
            vec![1.0, 100.0],
            vec![0.0, 0.5],
        );
        let v = s.predict(100.0, 0.5);
        assert!(v.is_finite() && v > 1.0);
    }
}
