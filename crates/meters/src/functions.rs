//! The three contention-meter functions.
//!
//! Each meter's demand vector is ~pure in one metered resource, so its
//! latency is (to first order) a function of that resource's pressure
//! alone. The meters run continuously at [`METER_QPS`] in the background
//! of the serverless platform (§VII-E sets 1 query/second each and
//! measures 1.1 % / 0.5 % / 0.6 % CPU overhead for the CPU-memory / IO /
//! network meters).

use amoeba_workload::{DemandVector, MicroserviceSpec, ResourceKind};

/// Background rate of each meter, queries/second (§VII-E).
pub const METER_QPS: f64 = 1.0;

fn meter_spec(name: &str, demand: DemandVector) -> MicroserviceSpec {
    MicroserviceSpec {
        name: name.to_string(),
        demand,
        // Meters have no QoS of their own; the target is only used by
        // spec validation, so give them a loose one.
        qos_target_s: 5.0,
        qos_percentile: 0.95,
        peak_qps: METER_QPS,
        container_mem_mb: 256.0,
    }
}

/// The CPU/memory contention meter: a pure arithmetic kernel.
pub fn cpu_meter() -> MicroserviceSpec {
    meter_spec(
        "meter_cpu",
        DemandVector {
            cpu_s: 0.040,
            mem_mb: 64.0,
            io_mb: 0.0,
            net_mb: 0.0,
        },
    )
}

/// The IO-bandwidth contention meter: a small disk-streaming kernel.
pub fn io_meter() -> MicroserviceSpec {
    meter_spec(
        "meter_io",
        DemandVector {
            cpu_s: 0.002,
            mem_mb: 64.0,
            io_mb: 30.0,
            net_mb: 0.0,
        },
    )
}

/// The network-bandwidth contention meter: a small transfer kernel.
pub fn net_meter() -> MicroserviceSpec {
    meter_spec(
        "meter_net",
        DemandVector {
            cpu_s: 0.002,
            mem_mb: 64.0,
            io_mb: 0.0,
            net_mb: 15.0,
        },
    )
}

/// The meter covering a metered resource dimension.
pub fn meter_for(kind: ResourceKind) -> MicroserviceSpec {
    match kind {
        ResourceKind::Cpu | ResourceKind::Memory => cpu_meter(),
        ResourceKind::Io => io_meter(),
        ResourceKind::Network => net_meter(),
    }
}

/// Approximate CPU overhead fraction a meter adds to a platform with
/// `platform_cores` cores when run at [`METER_QPS`] — the §VII-E
/// accounting (their node: 1.1 % CPU-memory, 0.5 % IO, 0.6 % network;
/// the bound is dominated by the busiest meter since they can be
/// scheduled round-trip).
pub fn meter_overhead_fraction(meter: &MicroserviceSpec, platform_cores: f64) -> f64 {
    // Each in-flight meter query occupies ~cpu_s cores-seconds per query
    // plus a small container residency overhead.
    let per_query_core_s = meter.demand.cpu_s + 0.002;
    METER_QPS * per_query_core_s / platform_cores
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_workload::benchmarks::{SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS};
    use amoeba_workload::Sensitivity;

    #[test]
    fn meters_are_valid_specs() {
        for m in [cpu_meter(), io_meter(), net_meter()] {
            assert!(m.is_valid(), "{}", m.name);
        }
    }

    #[test]
    fn each_meter_is_pure_in_its_resource() {
        let shares =
            |m: &MicroserviceSpec| m.demand.phase_shares(SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS);
        let cpu = shares(&cpu_meter());
        assert!(cpu[0] > 0.95, "cpu meter shares {cpu:?}");
        let io = shares(&io_meter());
        assert!(io[1] > 0.95, "io meter shares {io:?}");
        let net = shares(&net_meter());
        assert!(net[2] > 0.95, "net meter shares {net:?}");
    }

    #[test]
    fn meter_for_maps_resources() {
        assert_eq!(meter_for(ResourceKind::Cpu).name, "meter_cpu");
        assert_eq!(meter_for(ResourceKind::Memory).name, "meter_cpu");
        assert_eq!(meter_for(ResourceKind::Io).name, "meter_io");
        assert_eq!(meter_for(ResourceKind::Network).name, "meter_net");
    }

    #[test]
    fn overhead_matches_paper_magnitude() {
        // §VII-E: CPU-memory meter ≈ 1.1 %, IO ≈ 0.5 %, net ≈ 0.6 % on a
        // 40-core node; ours should land in the same ballpark (≤ 2 %).
        let cores = 40.0;
        let cpu = meter_overhead_fraction(&cpu_meter(), cores);
        let io = meter_overhead_fraction(&io_meter(), cores);
        let net = meter_overhead_fraction(&net_meter(), cores);
        assert!(cpu < 0.02, "cpu meter overhead {cpu}");
        assert!(io < 0.01, "io meter overhead {io}");
        assert!(net < 0.01, "net meter overhead {net}");
        assert!(cpu > io && cpu > net, "CPU meter is the most expensive");
    }

    #[test]
    fn meters_have_low_sensitivity_off_dimension() {
        let io = io_meter();
        assert_eq!(
            io.demand
                .sensitivity(ResourceKind::Cpu, SOLO_IO_RATE_MBPS, SOLO_NET_RATE_MBPS),
            Sensitivity::Low
        );
    }
}
