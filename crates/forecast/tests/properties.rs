//! Property tests for the forecasters: the interval invariant under
//! arbitrary observation streams, bit-exact determinism, and the
//! Holt-Winters convergence bound on the noiseless diurnal trace.

use amoeba_forecast::{
    backtest, BacktestConfig, Ewma, ForecastInterval, Forecaster, HoltLinear, HoltWintersDiurnal,
    Naive,
};
use amoeba_sim::{SimDuration, SimTime};
use amoeba_workload::{DiurnalPattern, LoadTrace};
use proptest::prelude::*;

/// All four models, fresh, behind one trait object each.
fn fresh_forecasters() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(Naive::new()),
        Box::new(Ewma::default()),
        Box::new(HoltLinear::default()),
        Box::new(HoltWintersDiurnal::new(SimDuration::from_secs(120), 24)),
    ]
}

/// Feed a stream of (gap seconds, rate) pairs in time order.
fn feed(f: &mut dyn Forecaster, stream: &[(f64, f64)]) {
    let mut t = 0.0f64;
    for &(dt, v) in stream {
        t += dt;
        f.observe(SimTime::from_secs_f64(t), v);
    }
}

fn interval_ok(p: &ForecastInterval) -> bool {
    p.lo.is_finite()
        && p.mean.is_finite()
        && p.hi.is_finite()
        && 0.0 <= p.lo
        && p.lo <= p.mean
        && p.mean <= p.hi
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `0 ≤ lo ≤ mean ≤ hi`, all finite, whatever was observed —
    /// including bursts, silence, and hostile rates.
    #[test]
    fn interval_invariant_over_random_streams(
        stream in proptest::collection::vec((0.0f64..30.0, -10.0f64..500.0), 1..80),
        horizon_s in 0.1f64..600.0,
    ) {
        for f in &mut fresh_forecasters() {
            feed(f.as_mut(), &stream);
            let p = f.predict(SimDuration::from_secs_f64(horizon_s));
            prop_assert!(interval_ok(&p), "{}: {p:?}", f.name());
        }
    }

    /// Identical observations give bit-identical predictions: the
    /// forecasters hold no RNG, no clock, and no hidden state outside
    /// the observation stream.
    #[test]
    fn forecasters_are_deterministic(
        stream in proptest::collection::vec((0.05f64..10.0, 0.0f64..300.0), 1..60),
        horizon_s in 0.5f64..120.0,
    ) {
        let h = SimDuration::from_secs_f64(horizon_s);
        let mut first = fresh_forecasters();
        let mut second = fresh_forecasters();
        for (a, b) in first.iter_mut().zip(second.iter_mut()) {
            feed(a.as_mut(), &stream);
            feed(b.as_mut(), &stream);
            let (pa, pb) = (a.predict(h), b.predict(h));
            prop_assert_eq!(pa.mean.to_bits(), pb.mean.to_bits(), "{}", a.name());
            prop_assert_eq!(pa.lo.to_bits(), pb.lo.to_bits(), "{}", a.name());
            prop_assert_eq!(pa.hi.to_bits(), pb.hi.to_bits(), "{}", a.name());
        }
    }
}

/// The ISSUE's convergence bound: after two observed days of the
/// noiseless Didi-shaped diurnal trace, Holt-Winters predicts the third
/// day at the controller's switch horizon within 5 % MAPE.
#[test]
fn holt_winters_converges_on_noiseless_didi_replay() {
    let trace = LoadTrace::new(DiurnalPattern::didi(), 120.0, 480.0);
    let day = SimDuration::from_secs_f64(trace.day_seconds());
    let cfg = BacktestConfig::over_days(
        &trace,
        SimDuration::from_secs(1),
        SimDuration::from_secs(5),
        2.0,
        3.0,
    );
    let mut hw = HoltWintersDiurnal::new(day, 240);
    let r = backtest(&mut hw, &trace, &cfg);
    assert!(r.samples > 400, "backtest actually scored: {}", r.samples);
    assert!(r.mape <= 0.05, "MAPE {:.4} above the 5% bound", r.mape);
    // The interval should also cover the (noiseless) future nearly
    // always once seeded.
    assert!(r.coverage > 0.9, "coverage {:.3}", r.coverage);
}
