#![warn(missing_docs)]
//! Load forecasting for proactive deployment switching (Amoeba-Pro).
//!
//! The paper's controller is purely reactive: it compares the *current*
//! arrival rate λ against the Eq. 5 discriminant, so every switch starts
//! only after load has already crossed the boundary, and the queries in
//! flight during the switch window pay for it (Fig. 16). This crate
//! supplies the anticipation: a [`Forecaster`] observes the controller's
//! load estimates at tick cadence and predicts λ at `now + horizon` as a
//! [`ForecastInterval`] — mean with a lower/upper bound — so the
//! controller can evaluate the discriminant against the *upper* bound at
//! the moment a switch started now would actually take effect.
//!
//! Four implementations, from dumbest to most structured:
//!
//! - [`Naive`] — last observed value (the reactive controller in
//!   forecaster clothing; the baseline every other model must beat).
//! - [`Ewma`] — exponentially weighted moving average.
//! - [`HoltLinear`] — level + trend double exponential smoothing;
//!   anticipates monotone ramps such as a diurnal rush shoulder.
//! - [`HoltWintersDiurnal`] — Holt's method plus an additive seasonal
//!   component with a configurable period, tuned for the 24 h trace:
//!   after one observed day it knows the rush is coming before the
//!   trend does.
//!
//! All forecasters are pure arithmetic over their observation stream:
//! no RNG, no clocks, no allocation after construction — identical
//! observations give bit-identical predictions, which the simulation's
//! determinism contract requires.
//!
//! [`backtest()`] replays any [`amoeba_workload::LoadTrace`] through a
//! forecaster and reports MAE / MAPE / interval coverage; the property
//! tests and the `experiments forecast` bench report both consume it.

pub mod backtest;
pub mod forecaster;

pub use backtest::{backtest, BacktestConfig, BacktestReport};
pub use forecaster::{Ewma, ForecastInterval, Forecaster, HoltLinear, HoltWintersDiurnal, Naive};
