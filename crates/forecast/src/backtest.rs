//! Backtesting: replay a [`LoadTrace`] through a [`Forecaster`] and
//! score the forecasts against the trace's own future.
//!
//! The harness walks the trace on a fixed observation grid (the
//! controller's tick cadence), feeds each deterministic rate to the
//! forecaster, and after a warmup scores every prediction at
//! `t + horizon` against the realized rate. Used by the property tests
//! (Holt-Winters must converge on the noiseless Didi day) and by the
//! `experiments forecast` report (MAPE table over all four models).

use crate::forecaster::Forecaster;
use amoeba_sim::{SimDuration, SimTime};
use amoeba_workload::LoadTrace;

/// How to replay a trace through a forecaster.
#[derive(Debug, Clone, Copy)]
pub struct BacktestConfig {
    /// Observation spacing (the controller tick period).
    pub step: SimDuration,
    /// Forecast horizon being scored (the switch latency).
    pub horizon: SimDuration,
    /// Observations before `warmup` are fed but not scored.
    pub warmup: SimDuration,
    /// Replay end; the last scored forecast targets `end`.
    pub end: SimTime,
}

impl BacktestConfig {
    /// A config for a compressed-day trace: observe at `step`, score a
    /// `horizon`-ahead forecast over `days` of the trace, warming up for
    /// the first `warmup_days`.
    pub fn over_days(
        trace: &LoadTrace,
        step: SimDuration,
        horizon: SimDuration,
        warmup_days: f64,
        days: f64,
    ) -> Self {
        assert!(days > warmup_days && warmup_days >= 0.0);
        let day = trace.day_seconds();
        BacktestConfig {
            step,
            horizon,
            warmup: SimDuration::from_secs_f64(day * warmup_days),
            end: SimTime::from_secs_f64(day * days),
        }
    }
}

/// Forecast accuracy over one replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktestReport {
    /// Forecasts scored.
    pub samples: usize,
    /// Mean absolute error, qps.
    pub mae: f64,
    /// Mean absolute percentage error over points with a meaningfully
    /// non-zero realized rate, as a fraction (0.05 = 5 %).
    pub mape: f64,
    /// Fraction of realized rates inside `[lo, hi]`.
    pub coverage: f64,
    /// Mean interval width, qps (the price paid for coverage).
    pub mean_width: f64,
}

/// Replay `trace` through `forecaster` per `cfg` and score it.
///
/// Deterministic: the trace's noiseless [`LoadTrace::rate_at`] drives
/// both the observations and the scoring, so two backtests of the same
/// forecaster are bit-identical.
pub fn backtest(
    forecaster: &mut dyn Forecaster,
    trace: &LoadTrace,
    cfg: &BacktestConfig,
) -> BacktestReport {
    assert!(cfg.step > SimDuration::ZERO, "step must be positive");
    let mut samples = 0usize;
    let mut abs_err_sum = 0.0;
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    let mut covered = 0usize;
    let mut width_sum = 0.0;
    // Relative floor under which MAPE is meaningless (dividing by a
    // near-zero trough rate turns rounding error into percent).
    let floor = trace.peak_qps() * 1e-3;

    let mut t = SimTime::ZERO + cfg.step;
    let warmup_t = SimTime::ZERO + cfg.warmup;
    while t <= cfg.end {
        forecaster.observe(t, trace.rate_at(t));
        let target = t + cfg.horizon;
        if t >= warmup_t && target <= cfg.end {
            let p = forecaster.predict(cfg.horizon);
            let actual = trace.rate_at(target);
            abs_err_sum += (p.mean - actual).abs();
            if actual > floor {
                ape_sum += (p.mean - actual).abs() / actual;
                ape_n += 1;
            }
            if p.covers(actual) {
                covered += 1;
            }
            width_sum += p.width();
            samples += 1;
        }
        t += cfg.step;
    }

    let n = samples.max(1) as f64;
    BacktestReport {
        samples,
        mae: abs_err_sum / n,
        mape: ape_sum / ape_n.max(1) as f64,
        coverage: covered as f64 / n,
        mean_width: width_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::{Ewma, HoltLinear, HoltWintersDiurnal, Naive};
    use amoeba_workload::DiurnalPattern;

    fn didi_trace() -> LoadTrace {
        LoadTrace::new(DiurnalPattern::didi(), 120.0, 480.0)
    }

    fn didi_cfg(trace: &LoadTrace) -> BacktestConfig {
        BacktestConfig::over_days(
            trace,
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
            2.0,
            3.0,
        )
    }

    #[test]
    fn backtest_scores_every_grid_point() {
        let trace = didi_trace();
        let cfg = didi_cfg(&trace);
        let mut f = Naive::new();
        let r = backtest(&mut f, &trace, &cfg);
        // Scored points: t in [960, 1435] inclusive (t+5 ≤ 1440).
        assert_eq!(r.samples, 476);
        assert!(r.mae > 0.0);
        assert!(r.coverage > 0.0 && r.coverage <= 1.0);
    }

    #[test]
    fn model_ranking_on_the_diurnal_trace() {
        // More structure must not hurt on the structured signal:
        // Holt-Winters (shape-aware) beats Holt beats Naive on MAE.
        let trace = didi_trace();
        let cfg = didi_cfg(&trace);
        let day = SimDuration::from_secs_f64(trace.day_seconds());
        let naive = backtest(&mut Naive::new(), &trace, &cfg);
        let ewma = backtest(&mut Ewma::default(), &trace, &cfg);
        let holt = backtest(&mut HoltLinear::default(), &trace, &cfg);
        let hw = backtest(&mut HoltWintersDiurnal::new(day, 240), &trace, &cfg);
        assert!(hw.mae < holt.mae, "hw {} !< holt {}", hw.mae, holt.mae);
        assert!(hw.mae < naive.mae, "hw {} !< naive {}", hw.mae, naive.mae);
        assert!(hw.mae < ewma.mae, "hw {} !< ewma {}", hw.mae, ewma.mae);
    }

    #[test]
    fn backtests_are_deterministic() {
        let trace = didi_trace();
        let cfg = didi_cfg(&trace);
        let day = SimDuration::from_secs_f64(trace.day_seconds());
        let a = backtest(&mut HoltWintersDiurnal::new(day, 240), &trace, &cfg);
        let b = backtest(&mut HoltWintersDiurnal::new(day, 240), &trace, &cfg);
        assert_eq!(a, b);
    }
}
