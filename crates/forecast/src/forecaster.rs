//! The [`Forecaster`] trait and its four implementations.

use amoeba_sim::{SimDuration, SimTime};

/// A point forecast with an uncertainty band: `lo ≤ mean ≤ hi`, all
/// non-negative (a rate cannot be negative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastInterval {
    /// Expected λ at the horizon, queries/second.
    pub mean: f64,
    /// Lower bound of the band.
    pub lo: f64,
    /// Upper bound of the band — what the proactive controller feeds
    /// into Eq. 5 (conservative toward QoS: uncertainty can only delay a
    /// switch down or advance a switch up).
    pub hi: f64,
}

impl ForecastInterval {
    /// A zero-width interval at `v` (clamped to ≥ 0).
    pub fn point(v: f64) -> Self {
        let v = sanitize(v);
        ForecastInterval {
            mean: v,
            lo: v,
            hi: v,
        }
    }

    /// An interval `mean ± half_width`, clamped so the invariant
    /// `0 ≤ lo ≤ mean ≤ hi` holds whatever the inputs were.
    pub fn around(mean: f64, half_width: f64) -> Self {
        let mean = sanitize(mean);
        let hw = sanitize(half_width);
        ForecastInterval {
            mean,
            lo: (mean - hw).max(0.0),
            hi: mean + hw,
        }
    }

    /// Width of the band, `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Does the band contain `v`?
    pub fn covers(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Non-finite and negative rates collapse to 0 — a rate estimator fed a
/// NaN must not poison every later prediction.
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v.max(0.0)
    } else {
        0.0
    }
}

/// An online λ forecaster: feed it the controller's load estimates in
/// time order, ask for the rate at `now + horizon`.
pub trait Forecaster {
    /// Record the load estimate `lambda_qps` observed at `t`.
    /// Observations must arrive in non-decreasing time order; non-finite
    /// or negative rates are treated as 0.
    fn observe(&mut self, t: SimTime, lambda_qps: f64);

    /// Forecast λ at `horizon` past the last observation. Before any
    /// observation the forecast is a zero point interval.
    fn predict(&self, horizon: SimDuration) -> ForecastInterval;

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

/// Shared residual tracker: an EWMA of the absolute one-step-ahead
/// error and of the observation spacing. The interval half-width at
/// horizon `h` scales the one-step error by `√(h / mean_dt)` — the
/// random-walk growth rate, the standard pragmatic widening when the
/// model's own error dynamics are unknown.
#[derive(Debug, Clone, Copy)]
struct Residuals {
    abs_err: f64,
    mean_dt_s: f64,
    seeded: bool,
}

/// 95 % band multiplier for a roughly symmetric error distribution
/// (1.96 σ with σ ≈ 1.25 · mean absolute error).
const BAND_Z: f64 = 2.45;
/// Smoothing factor for the residual EWMAs.
const RESIDUAL_ALPHA: f64 = 0.1;

impl Residuals {
    fn new() -> Self {
        Residuals {
            abs_err: 0.0,
            mean_dt_s: 1.0,
            seeded: false,
        }
    }

    /// Fold in one realized one-step error and its observation gap.
    fn update(&mut self, predicted: f64, actual: f64, dt_s: f64) {
        let err = (actual - predicted).abs();
        if !err.is_finite() {
            return;
        }
        if self.seeded {
            self.abs_err += RESIDUAL_ALPHA * (err - self.abs_err);
            if dt_s > 0.0 {
                self.mean_dt_s += RESIDUAL_ALPHA * (dt_s - self.mean_dt_s);
            }
        } else {
            self.abs_err = err;
            if dt_s > 0.0 {
                self.mean_dt_s = dt_s;
            }
            self.seeded = true;
        }
    }

    /// Half-width of the band at `horizon`.
    fn half_width(&self, horizon: SimDuration) -> f64 {
        if !self.seeded {
            return 0.0;
        }
        let steps = (horizon.as_secs_f64() / self.mean_dt_s.max(1e-9)).max(1.0);
        BAND_Z * self.abs_err * steps.sqrt()
    }
}

/// Last observed value. The persistence baseline: tomorrow looks like
/// right now.
#[derive(Debug, Clone, Copy)]
pub struct Naive {
    last: Option<f64>,
    last_t: Option<SimTime>,
    residuals: Residuals,
}

impl Naive {
    /// A fresh forecaster with no observations.
    pub fn new() -> Self {
        Naive {
            last: None,
            last_t: None,
            residuals: Residuals::new(),
        }
    }
}

impl Default for Naive {
    fn default() -> Self {
        Naive::new()
    }
}

impl Forecaster for Naive {
    fn observe(&mut self, t: SimTime, lambda_qps: f64) {
        let v = sanitize(lambda_qps);
        if let (Some(prev), Some(pt)) = (self.last, self.last_t) {
            let dt = t.duration_since(pt).as_secs_f64();
            self.residuals.update(prev, v, dt);
        }
        self.last = Some(v);
        self.last_t = Some(t);
    }

    fn predict(&self, horizon: SimDuration) -> ForecastInterval {
        match self.last {
            Some(v) => ForecastInterval::around(v, self.residuals.half_width(horizon)),
            None => ForecastInterval::point(0.0),
        }
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

/// Exponentially weighted moving average: smooths estimator noise but
/// lags every ramp by `~1/α` observations.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    level: Option<f64>,
    last_t: Option<SimTime>,
    residuals: Residuals,
}

impl Ewma {
    /// A fresh forecaster with smoothing factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            level: None,
            last_t: None,
            residuals: Residuals::new(),
        }
    }
}

impl Default for Ewma {
    /// α = 0.3: the controller's load window already smooths arrivals,
    /// so the forecaster only needs mild extra damping.
    fn default() -> Self {
        Ewma::new(0.3)
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, t: SimTime, lambda_qps: f64) {
        let v = sanitize(lambda_qps);
        match self.level {
            Some(level) => {
                let dt = self
                    .last_t
                    .map(|pt| t.duration_since(pt).as_secs_f64())
                    .unwrap_or(0.0);
                self.residuals.update(level, v, dt);
                self.level = Some(level + self.alpha * (v - level));
            }
            None => self.level = Some(v),
        }
        self.last_t = Some(t);
    }

    fn predict(&self, horizon: SimDuration) -> ForecastInterval {
        match self.level {
            Some(level) => ForecastInterval::around(level, self.residuals.half_width(horizon)),
            None => ForecastInterval::point(0.0),
        }
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Holt's double exponential smoothing: a level plus a per-second trend,
/// so a steady ramp is extrapolated instead of lagged. The workhorse for
/// the first simulated day, before the seasonal model has seen a full
/// period.
#[derive(Debug, Clone, Copy)]
pub struct HoltLinear {
    alpha: f64,
    beta: f64,
    level: f64,
    trend_per_s: f64,
    last_t: Option<SimTime>,
    residuals: Residuals,
}

impl HoltLinear {
    /// A fresh forecaster with level smoothing `alpha` and trend
    /// smoothing `beta`, both in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        HoltLinear {
            alpha,
            beta,
            level: 0.0,
            trend_per_s: 0.0,
            last_t: None,
            residuals: Residuals::new(),
        }
    }
}

impl Default for HoltLinear {
    /// α = 0.3, β = 0.1: responsive level, damped trend — a trend that
    /// chases estimator noise overshoots every shoulder of the diurnal
    /// curve.
    fn default() -> Self {
        HoltLinear::new(0.3, 0.1)
    }
}

impl Forecaster for HoltLinear {
    fn observe(&mut self, t: SimTime, lambda_qps: f64) {
        let v = sanitize(lambda_qps);
        let Some(pt) = self.last_t else {
            self.level = v;
            self.last_t = Some(t);
            return;
        };
        let dt = t.duration_since(pt).as_secs_f64();
        if dt <= 0.0 {
            // Repeated observation at the same instant: refresh the
            // level only (a zero gap has no trend information).
            self.level += self.alpha * (v - self.level);
            return;
        }
        let predicted = self.level + self.trend_per_s * dt;
        self.residuals.update(predicted, v, dt);
        let prev_level = self.level;
        self.level = predicted + self.alpha * (v - predicted);
        let step_trend = (self.level - prev_level) / dt;
        self.trend_per_s += self.beta * (step_trend - self.trend_per_s);
        self.last_t = Some(t);
    }

    fn predict(&self, horizon: SimDuration) -> ForecastInterval {
        if self.last_t.is_none() {
            return ForecastInterval::point(0.0);
        }
        let mean = self.level + self.trend_per_s * horizon.as_secs_f64();
        ForecastInterval::around(mean, self.residuals.half_width(horizon))
    }

    fn name(&self) -> &'static str {
        "holt"
    }
}

/// Holt-Winters additive seasonal smoothing with a configurable period,
/// tuned for the diurnal trace: level + trend as in [`HoltLinear`],
/// plus one additive seasonal index per phase bucket of the period.
/// The first pass over a bucket seeds its index directly from the
/// observation (classic Holt-Winters initialisation), so the model is
/// already shape-aware after one observed period; subsequent passes
/// refine it with the `gamma` smoothing.
#[derive(Debug, Clone)]
pub struct HoltWintersDiurnal {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period_s: f64,
    level: f64,
    trend_per_s: f64,
    seasonal: Vec<f64>,
    seen: Vec<bool>,
    last_t: Option<SimTime>,
    residuals: Residuals,
}

impl HoltWintersDiurnal {
    /// Default smoothing for a compressed 24 h trace observed at the
    /// controller's tick cadence (~1 Hz): nearly frozen level and trend,
    /// moderate seasonal refresh. The level must evolve much slower than
    /// the shape — once the seasonal indices are seeded the
    /// deseasonalized signal is constant, and a fast level would chase
    /// the wave itself, leaving the seasonal term to learn its own
    /// transient (a feedback loop that never converges).
    pub fn new(period: SimDuration, buckets: usize) -> Self {
        HoltWintersDiurnal::with_params(period, buckets, 0.02, 0.005, 0.3)
    }

    /// Full constructor. `period` is the seasonal cycle (the trace's
    /// day length), divided into `buckets` phase bins; `alpha`, `beta`,
    /// `gamma` smooth level, trend and seasonal indices respectively.
    pub fn with_params(
        period: SimDuration,
        buckets: usize,
        alpha: f64,
        beta: f64,
        gamma: f64,
    ) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        assert!(buckets >= 2, "need at least two seasonal buckets");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        HoltWintersDiurnal {
            alpha,
            beta,
            gamma,
            period_s: period.as_secs_f64(),
            level: 0.0,
            trend_per_s: 0.0,
            seasonal: vec![0.0; buckets],
            seen: vec![false; buckets],
            last_t: None,
            residuals: Residuals::new(),
        }
    }

    /// Seasonal period, seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// The bucket whose bin contains phase `t mod period`.
    fn bucket(&self, t: SimTime) -> usize {
        let phase = (t.as_secs_f64() / self.period_s).rem_euclid(1.0);
        ((phase * self.seasonal.len() as f64) as usize).min(self.seasonal.len() - 1)
    }

    /// Seasonal index at `t`, linearly interpolated between the two
    /// neighbouring bucket centres (wrapping around the period) so the
    /// forecast is continuous rather than a staircase.
    fn seasonal_at(&self, t: SimTime) -> f64 {
        let n = self.seasonal.len();
        let phase = (t.as_secs_f64() / self.period_s).rem_euclid(1.0);
        let x = phase * n as f64 - 0.5;
        let i = x.floor().rem_euclid(n as f64) as usize % n;
        let j = (i + 1) % n;
        let frac = x - x.floor();
        // An unseen neighbour contributes its partner's index — better
        // a flat estimate than interpolating toward a phantom zero.
        let si = if self.seen[i] {
            self.seasonal[i]
        } else if self.seen[j] {
            self.seasonal[j]
        } else {
            0.0
        };
        let sj = if self.seen[j] { self.seasonal[j] } else { si };
        si * (1.0 - frac) + sj * frac
    }
}

impl Forecaster for HoltWintersDiurnal {
    fn observe(&mut self, t: SimTime, lambda_qps: f64) {
        let v = sanitize(lambda_qps);
        let b = self.bucket(t);
        let Some(pt) = self.last_t else {
            self.level = v;
            self.seasonal[b] = 0.0;
            self.seen[b] = true;
            self.last_t = Some(t);
            return;
        };
        let dt = t.duration_since(pt).as_secs_f64();
        if dt <= 0.0 {
            self.level += self.alpha * (v - self.level - self.seasonal[b]);
            return;
        }
        let s_b = if self.seen[b] {
            self.seasonal[b]
        } else {
            self.seasonal_at(t)
        };
        let predicted = self.level + self.trend_per_s * dt + s_b;
        self.residuals.update(predicted, v, dt);
        let prev_level = self.level;
        let base = self.level + self.trend_per_s * dt;
        self.level = base + self.alpha * (v - s_b - base);
        let step_trend = (self.level - prev_level) / dt;
        self.trend_per_s += self.beta * (step_trend - self.trend_per_s);
        if self.seen[b] {
            self.seasonal[b] += self.gamma * (v - self.level - self.seasonal[b]);
        } else {
            self.seasonal[b] = v - self.level;
            self.seen[b] = true;
        }
        self.last_t = Some(t);
    }

    fn predict(&self, horizon: SimDuration) -> ForecastInterval {
        let Some(pt) = self.last_t else {
            return ForecastInterval::point(0.0);
        };
        let h = horizon.as_secs_f64();
        let mean = self.level + self.trend_per_s * h + self.seasonal_at(pt + horizon);
        ForecastInterval::around(mean, self.residuals.half_width(horizon))
    }

    fn name(&self) -> &'static str {
        "holt_winters"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn interval_invariant_holds_under_hostile_inputs() {
        for (mean, hw) in [
            (5.0, 2.0),
            (1.0, 10.0),
            (-3.0, 1.0),
            (f64::NAN, 4.0),
            (2.0, f64::INFINITY),
            (f64::INFINITY, f64::NAN),
        ] {
            let i = ForecastInterval::around(mean, hw);
            assert!(i.lo >= 0.0, "{i:?}");
            assert!(i.lo <= i.mean && i.mean <= i.hi, "{i:?}");
            assert!(i.lo.is_finite() && i.mean.is_finite(), "{i:?}");
        }
    }

    #[test]
    fn naive_predicts_last_value() {
        let mut f = Naive::new();
        assert_eq!(f.predict(SimDuration::from_secs(5)).mean, 0.0);
        f.observe(t(1.0), 10.0);
        f.observe(t(2.0), 14.0);
        let p = f.predict(SimDuration::from_secs(5));
        assert_eq!(p.mean, 14.0);
        // One step of |14-10| = 4 error widens the band.
        assert!(p.hi > 14.0 && p.lo < 14.0);
    }

    #[test]
    fn ewma_converges_to_constant_rate() {
        let mut f = Ewma::default();
        for i in 0..100 {
            f.observe(t(i as f64), 20.0);
        }
        let p = f.predict(SimDuration::from_secs(3));
        assert!((p.mean - 20.0).abs() < 1e-9);
        assert!(p.width() < 1e-9, "no residuals on a constant signal");
    }

    #[test]
    fn holt_extrapolates_a_ramp() {
        let mut f = HoltLinear::default();
        // λ = 2t: after settling, the 5 s forecast leads the last
        // observation by ~10 qps.
        for i in 0..200 {
            f.observe(t(i as f64), 2.0 * i as f64);
        }
        let p = f.predict(SimDuration::from_secs(5));
        let expected = 2.0 * 199.0 + 2.0 * 5.0;
        assert!(
            (p.mean - expected).abs() < 2.0,
            "mean {} vs {expected}",
            p.mean
        );
        // Naive at the same horizon lags by the full ramp step.
        let mut n = Naive::new();
        for i in 0..200 {
            n.observe(t(i as f64), 2.0 * i as f64);
        }
        assert!((expected - n.predict(SimDuration::from_secs(5)).mean) > 9.0);
    }

    #[test]
    fn holt_winters_learns_a_square_wave() {
        // Period 100 s, 10 buckets; alternating 10/30 half-periods.
        let mut f = HoltWintersDiurnal::new(SimDuration::from_secs(100), 10);
        for i in 0..400 {
            let phase = (i % 100) as f64 / 100.0;
            let v = if phase < 0.5 { 10.0 } else { 30.0 };
            f.observe(t(i as f64), v);
        }
        // At t=399 (phase 0.99), 26 s ahead lands at phase 0.25 → 10.
        let p = f.predict(SimDuration::from_secs(26));
        assert!((p.mean - 10.0).abs() < 4.0, "mean {}", p.mean);
        // 41 s ahead lands at phase 0.40... still 10; 61 s → phase 0.60 → 30.
        let p = f.predict(SimDuration::from_secs(61));
        assert!((p.mean - 30.0).abs() < 4.0, "mean {}", p.mean);
    }

    #[test]
    fn non_finite_observations_do_not_poison_state() {
        let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(Naive::new()),
            Box::new(Ewma::default()),
            Box::new(HoltLinear::default()),
            Box::new(HoltWintersDiurnal::new(SimDuration::from_secs(50), 5)),
        ];
        for f in &mut forecasters {
            f.observe(t(0.0), 10.0);
            f.observe(t(1.0), f64::NAN);
            f.observe(t(2.0), f64::INFINITY);
            f.observe(t(3.0), -5.0);
            f.observe(t(4.0), 10.0);
            let p = f.predict(SimDuration::from_secs(5));
            assert!(p.mean.is_finite() && p.lo.is_finite(), "{}", f.name());
            assert!(p.lo <= p.mean && p.mean <= p.hi, "{}", f.name());
        }
    }

    #[test]
    fn repeated_same_time_observations_are_tolerated() {
        let mut f = HoltLinear::default();
        f.observe(t(1.0), 10.0);
        f.observe(t(1.0), 12.0);
        f.observe(t(1.0), 14.0);
        let p = f.predict(SimDuration::from_secs(1));
        assert!(p.mean > 9.0 && p.mean < 15.0);
        let mut hw = HoltWintersDiurnal::new(SimDuration::from_secs(10), 4);
        hw.observe(t(1.0), 10.0);
        hw.observe(t(1.0), 12.0);
        assert!(hw.predict(SimDuration::from_secs(1)).mean.is_finite());
    }
}
