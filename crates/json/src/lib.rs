#![warn(missing_docs)]
//! A small, self-contained JSON layer: [`Value`], the [`json!`]
//! constructor macro, compact/pretty printers and a strict parser.
//!
//! The experiment reports and the telemetry trace both speak JSON; the
//! container this workspace builds in has no access to crates.io, so the
//! subset of `serde_json` the repo actually needs lives here. The subset
//! is deliberately small: object keys are strings, numbers are `f64` or
//! `u64`/`i64`, and everything is eagerly owned.

pub mod parse;
pub mod value;

pub use parse::{parse, ParseError};
pub use value::{Number, Value};

/// Render any [`Value`] with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, core::fmt::Error> {
    Ok(v.pretty())
}

/// Construct a [`Value`] from literal-ish syntax, a small cousin of
/// `serde_json::json!`:
///
/// ```
/// use amoeba_json::json;
/// let v = json!({"name": "dd", "qps": 12.5, "tags": ["io", "disk"]});
/// assert_eq!(v["name"], "dd");
/// ```
///
/// Keys are string literals; values are nested `{...}` / `[...]`
/// literals, `null`, or arbitrary expressions convertible to `Value`
/// via `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::__json_array!(@elems [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::__json_object!(@entries [] $($tt)*) };
    ($other:expr) => { $crate::Value::from(&$other) };
}

// Array elements, accumulated as exprs inside the bracketed group so the
// raw (not yet parsed) tokens after it can't be confused with them. Each
// step peels one element — `null` and nested literals first, then a
// general expression (the `expr` fragment stops at the top-level comma).
#[macro_export]
#[doc(hidden)]
macro_rules! __json_array {
    (@elems [$($elems:expr,)*]) => {
        $crate::Value::Array(vec![$($elems,)*])
    };
    (@elems [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::__json_array!(@elems [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::__json_array!(@elems [$($elems,)* $crate::json!([$($inner)*]),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::__json_array!(@elems [$($elems,)* $crate::json!({$($inner)*}),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::__json_array!(@elems [$($elems,)* $crate::Value::from(&$next),] $($($rest)*)?)
    };
}

// Object entries; same accumulation scheme, keyed by string literals.
#[macro_export]
#[doc(hidden)]
macro_rules! __json_object {
    (@entries [$($entries:expr,)*]) => {
        $crate::Value::Object(vec![$($entries,)*])
    };
    (@entries [$($entries:expr,)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($entries,)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?
        )
    };
    (@entries [$($entries:expr,)*] $key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($entries,)* ($key.to_string(), $crate::json!([$($inner)*])),] $($($rest)*)?
        )
    };
    (@entries [$($entries:expr,)*] $key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($entries,)* ($key.to_string(), $crate::json!({$($inner)*})),] $($($rest)*)?
        )
    };
    (@entries [$($entries:expr,)*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($entries,)* ($key.to_string(), $crate::Value::from(&$val)),] $($($rest)*)?
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn macro_builds_nested_values() {
        let name = "float";
        let v = json!({
            "name": name,
            "qps": 12.5,
            "hits": 3u64,
            "ok": true,
            "none": null,
            "inner": {"a": 1.0},
            "arr": [1.0, 2.0],
        });
        assert_eq!(v["name"], "float");
        assert_eq!(v["qps"].as_f64(), Some(12.5));
        assert_eq!(v["hits"].as_u64(), Some(3));
        assert_eq!(v["ok"], Value::Bool(true));
        assert!(v["none"].is_null());
        assert_eq!(v["inner"]["a"].as_f64(), Some(1.0));
        assert_eq!(v["arr"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn macro_accepts_expressions_and_vecs() {
        let rows: Vec<Value> = vec![json!({"x": 1.0}), json!({"x": 2.0})];
        let v = json!(rows);
        assert_eq!(v.as_array().unwrap().len(), 2);
        let opt: Value = json!(2.0 + 3.0);
        assert_eq!(opt.as_f64(), Some(5.0));
    }

    #[test]
    fn macro_accepts_multi_token_expressions() {
        struct Row {
            qps: f64,
        }
        let r = Row { qps: 3.5 };
        let nan = f64::NAN;
        let v = json!({
            "field": r.qps,
            "call": r.qps.max(1.0),
            "cond": if nan.is_nan() { Value::Null } else { json!(nan) },
            "arr": [r.qps, r.qps * 2.0],
        });
        assert_eq!(v["field"].as_f64(), Some(3.5));
        assert_eq!(v["call"].as_f64(), Some(3.5));
        assert!(v["cond"].is_null());
        assert_eq!(v["arr"][1].as_f64(), Some(7.0));
    }

    #[test]
    fn pretty_round_trips_through_parser() {
        let v = json!({"a": [1.0, {"b": "x\"y"}], "c": null});
        let text = crate::to_string_pretty(&v).unwrap();
        let back = crate::parse(&text).unwrap();
        assert_eq!(v, back);
    }
}
