//! The JSON value tree and its printers.

use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (never NaN; construction maps NaN/inf to null).
    F64(f64),
}

impl Number {
    /// The number as an `f64` (always possible).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(x) => x,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            // `{}` on f64 prints the shortest representation that round
            // trips, but drops the decimal point for integral values;
            // keep JSON-valid output either way (1.0 prints as "1.0").
            Number::F64(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document. Objects preserve insertion order (they are a list of
/// pairs, not a map — the report and trace writers control their keys).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (`Null` when absent or not an object) —
    /// the non-panicking cousin of `value[key]`.
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(o) => o
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Render compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let nl = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    nl(out, depth);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    nl(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other.as_bool() == Some(*self)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        if x.is_finite() {
            Value::Number(Number::F64(x))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::from(x as f64)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => { $(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::Number(Number::U64(n as u64)) }
        }
    )* };
}
macro_rules! from_signed {
    ($($t:ty),*) => { $(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n as i64))
                }
            }
        }
    )* };
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(items: [T; N]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(items: &[T]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

// The `json!` macro converts by reference (like `serde_json::to_value`,
// which serialises `&T`), so any clonable convertible type must also
// convert from a reference. `str` is unsized and keeps its own impl
// above.
impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Self {
        v.clone().into()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_display_is_json_valid() {
        assert_eq!(Number::F64(1.0).to_string(), "1.0");
        assert_eq!(Number::F64(0.125).to_string(), "0.125");
        assert_eq!(Number::U64(7).to_string(), "7");
        assert_eq!(Number::I64(-3).to_string(), "-3");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(Value::from(f64::NAN).is_null());
        assert!(Value::from(f64::INFINITY).is_null());
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = Value::Object(vec![("a".into(), Value::from("x"))]);
        assert_eq!(v["a"], "x");
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn escaping() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(v.compact(), r#""a\"b\\c\nd""#);
    }
}
