//! A strict recursive-descent JSON parser.
//!
//! Accepts exactly the grammar of RFC 8259 minus `\uXXXX` surrogate-pair
//! pedantry (escapes are decoded as single code points; lone surrogates
//! are rejected). Used by trace readers in `crates/bench` and tests that
//! round-trip reports.

use crate::value::{Number, Value};

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("lone surrogate in \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if neg {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(n)));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::F64(x)))
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::I64(-7)));
        assert_eq!(parse("2.5e1").unwrap().as_f64(), Some(25.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), "a\nb");
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "é"}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert!(v["a"][1]["b"].is_null());
        assert_eq!(v["c"], "é");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{'a': 1}").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn jsonl_line_by_line() {
        let doc = "{\"tick\": 1}\n{\"tick\": 2}\n";
        let ticks: Vec<u64> = doc
            .lines()
            .map(|l| parse(l).unwrap()["tick"].as_u64().unwrap())
            .collect();
        assert_eq!(ticks, vec![1, 2]);
    }
}
