//! The telemetry event vocabulary and its JSON-lines encoding.
//!
//! Every event is flat, owns its data, and round-trips through one JSON
//! object with a `"type"` discriminator — see DESIGN.md §"Telemetry
//! event schema" for the full schema.

use amoeba_json::{json, Value};
use amoeba_sim::SimTime;

pub use crate::vocab::{
    FaultKind, Mode, RecoveryKind, SwitchPhase, TickReason, TraceDecision, ViolationCause,
};

/// One service's identity in the run header.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceInfo {
    /// The service's name.
    pub name: String,
    /// Background (contention-generating, pinned serverless) service?
    pub background: bool,
    /// Where it starts.
    pub initial_mode: Mode,
}

/// Per-tick controller record: everything Eq. 5/Eq. 6 saw and produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Tick time.
    pub t: SimTime,
    /// Service index (registration order).
    pub service: usize,
    /// Current deployment mode.
    pub mode: Mode,
    /// Estimated load `V_u` (λ), queries/second.
    pub load_qps: f64,
    /// Eq. 6 predicted per-container capacity `μ`, queries/second.
    pub mu: f64,
    /// Eq. 5 discriminant `λ(μ)`: the maximum admissible load.
    pub lambda_max: f64,
    /// Pressure vector the discriminant was evaluated at.
    pub pressures: [f64; 3],
    /// Eq. 6 weights `w`.
    pub weights: [f64; 3],
    /// The verdict.
    pub decision: TraceDecision,
    /// Why.
    pub reason: TickReason,
}

/// One step of one switch's protocol execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRecord {
    /// When the step happened.
    pub t: SimTime,
    /// Service index.
    pub service: usize,
    /// Mode being left.
    pub from: Mode,
    /// Mode being entered.
    pub to: Mode,
    /// Which protocol step.
    pub phase: SwitchPhase,
    /// Eq. 7 prewarm count (`Requested` toward serverless; else 0).
    pub prewarm_count: u32,
    /// Estimated load at this step, queries/second.
    pub load_qps: f64,
}

/// Monitor heartbeat: the sample-period summary the PCA consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatRecord {
    /// Heartbeat time.
    pub t: SimTime,
    /// Smoothed meter latencies [cpu, io, net], seconds (None = no
    /// observation yet).
    pub meter_latency_s: [Option<f64>; 3],
    /// Inverted pressures `P`.
    pub pressures: [f64; 3],
    /// Eq. 6 weights after this heartbeat's refresh.
    pub weights: [f64; 3],
}

/// One query finishing over its QoS target.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationRecord {
    /// Completion time.
    pub t: SimTime,
    /// Service index.
    pub service: usize,
    /// Where the query executed.
    pub platform: Mode,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// The QoS target it missed, seconds.
    pub target_s: f64,
    /// Cold-start share of the latency, seconds.
    pub cold_start_s: f64,
    /// Queueing share, seconds.
    pub queue_wait_s: f64,
    /// Attributed cause.
    pub cause: ViolationCause,
}

/// A warm serverless execution's latency breakdown (Fig. 4 input).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSampleRecord {
    /// Completion time.
    pub t: SimTime,
    /// Service index.
    pub service: usize,
    /// Auth/processing overhead, seconds.
    pub auth_s: f64,
    /// Code-loading overhead, seconds.
    pub code_load_s: f64,
    /// Result-posting overhead, seconds.
    pub result_post_s: f64,
    /// Execution time, seconds.
    pub exec_s: f64,
}

/// One proactive-controller forecast: what the [`TickRecord`]'s decision
/// evaluated Eq. 5 against when the run is an Amoeba-Pro variant.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastRecord {
    /// Tick time the forecast was issued at.
    pub t: SimTime,
    /// Service index.
    pub service: usize,
    /// Horizon the forecast targets (the switch latency), seconds.
    pub horizon_s: f64,
    /// Point forecast of λ at `t + horizon`, queries/second.
    pub mean_qps: f64,
    /// Lower bound of the forecast band.
    pub lo_qps: f64,
    /// Upper bound of the band — what the controller fed into Eq. 5.
    pub hi_qps: f64,
    /// λ actually realized at `t + horizon`, filled in by the report
    /// layer after the run (None while the stream is being produced).
    pub realized_qps: Option<f64>,
}

/// One injected fault landing (or an induced failure being detected).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// When the fault fired / was detected.
    pub t: SimTime,
    /// What kind of fault.
    pub kind: FaultKind,
    /// Affected service index, when the fault is attributable to one
    /// (e.g. boot failures, ack losses); `None` for pool-wide faults.
    pub service: Option<usize>,
    /// In-flight queries displaced by the fault (crashes, forced
    /// drains).
    pub queries_displaced: u64,
    /// Of those, queries lost outright instead of re-queued.
    pub queries_dropped: u64,
}

/// One user query's node placement (multi-node runs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementRecord {
    /// Arrival time.
    pub t: SimTime,
    /// Service index.
    pub service: usize,
    /// Executing node's index (0 = the home/control node).
    pub node: usize,
    /// Did the scheduler spill the query off its home node?
    pub spill: bool,
}

/// Fleet-wide utilization snapshot, once per control tick (multi-node
/// runs only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeUtilRecord {
    /// Tick time.
    pub t: SimTime,
    /// Mean serverless-pool utilization across nodes [cpu, io, net].
    pub mean_util: [f64; 3],
    /// The hottest node's peak resource utilization.
    pub max_node_util: f64,
}

/// One tenant's admission decision (multi-tenant runs only). Emitted at
/// setup, one per submitted tenant, before any queries flow.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRecord {
    /// Decision time (setup, so effectively t=0).
    pub t: SimTime,
    /// Tenant service name.
    pub tenant: String,
    /// Whether the vendor admitted the tenant.
    pub admitted: bool,
    /// The pool share the tenant's provisioned peak reserves.
    pub reserved_share: f64,
    /// Overbooking ratio in force at the decision.
    pub ratio: f64,
}

/// Vendor control-tick sample (multi-tenant runs only): what the
/// vendor's reclamation loop saw and did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VendorSampleRecord {
    /// Tick time.
    pub t: SimTime,
    /// Serverless pool utilization [cpu, io, net].
    pub pool_util: [f64; 3],
    /// Containers alive in the pool.
    pub containers: u64,
    /// Whether tenant caps are throttled by reclamation after this tick.
    pub throttled: bool,
}

/// One worker shard's accounting for one epoch of a fleet run (fleet
/// executor only). Spans are emitted per epoch in shard-index order —
/// a deterministic order for a given shard count, but the shard → cell
/// assignment varies with the worker-thread count, which is why the
/// fleet digest covers per-cell traces and not these spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpanRecord {
    /// The epoch boundary the span ends at.
    pub t: SimTime,
    /// Epoch index.
    pub epoch: u64,
    /// Shard (worker slot) index.
    pub shard: usize,
    /// Cells the shard advanced this epoch.
    pub cells: u64,
    /// Simulation events the shard dispatched this epoch.
    pub events: u64,
}

/// Fleet-wide sample at one epoch boundary (fleet executor only): the
/// cross-cell state the epoch exchange computed and fed back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSampleRecord {
    /// The epoch boundary.
    pub t: SimTime,
    /// Epoch index.
    pub epoch: u64,
    /// Mean serverless-pool utilization across cells [cpu, io, net].
    pub mean_util: [f64; 3],
    /// External pressure injected into every cell for the next epoch.
    pub external_pressure: [f64; 3],
    /// Whether fleet-level reclamation throttled service caps.
    pub throttled: bool,
}

/// One completed workflow stage of one query instance (workflow runs
/// only). The `instance` is shared by every stage span of one DAG
/// traversal, so joining on it reconstructs the whole critical path;
/// `latency_s > budget_s` attributes an end-to-end violation to this
/// stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpanRecord {
    /// Stage completion time.
    pub t: SimTime,
    /// Workflow index (order of attachment to the experiment).
    pub workflow: usize,
    /// The instance (root sequence number) this span belongs to.
    pub instance: u64,
    /// Stage index within the DAG.
    pub stage: usize,
    /// Runtime service index the stage executed as.
    pub service: usize,
    /// Platform the stage executed on.
    pub platform: Mode,
    /// Stage latency (submit → complete), seconds.
    pub latency_s: f64,
    /// This stage's slice of the end-to-end budget, seconds.
    pub budget_s: f64,
}

/// The system recovering from an earlier fault.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRecord {
    /// When the recovery completed.
    pub t: SimTime,
    /// What kind of recovery.
    pub kind: RecoveryKind,
    /// Affected service index, when attributable to one.
    pub service: Option<usize>,
    /// Seconds from the triggering fault to this recovery.
    pub after_s: f64,
}

/// The event stream's alphabet.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// Run header: identifies the scenario the rest of the stream
    /// belongs to.
    RunStarted {
        /// System variant label (e.g. "Amoeba").
        variant: String,
        /// RNG seed.
        seed: u64,
        /// Simulated duration, seconds.
        horizon_s: f64,
        /// The services, in index order.
        services: Vec<ServiceInfo>,
    },
    /// Per-tick controller record.
    Tick(TickRecord),
    /// Switch-protocol step.
    Switch(SwitchRecord),
    /// Monitor heartbeat.
    Heartbeat(HeartbeatRecord),
    /// QoS violation with attribution.
    Violation(ViolationRecord),
    /// Warm serverless breakdown sample.
    WarmSample(WarmSampleRecord),
    /// Proactive-controller forecast (Amoeba-Pro runs only).
    Forecast(ForecastRecord),
    /// An injected fault landed (chaos runs only).
    Fault(FaultRecord),
    /// The system recovered from an earlier fault (chaos runs only).
    Recovery(RecoveryRecord),
    /// A completed workflow stage span (workflow runs only).
    StageSpan(StageSpanRecord),
    /// A query's node placement (multi-node runs only).
    Placement(PlacementRecord),
    /// Fleet utilization snapshot (multi-node runs only).
    NodeUtil(NodeUtilRecord),
    /// A tenant admission decision (multi-tenant runs only).
    Admission(AdmissionRecord),
    /// Vendor reclamation-loop sample (multi-tenant runs only).
    VendorSample(VendorSampleRecord),
    /// One shard's per-epoch accounting (fleet executor only).
    ShardSpan(ShardSpanRecord),
    /// Fleet-wide epoch-boundary sample (fleet executor only).
    FleetSample(FleetSampleRecord),
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was wrong.
    pub message: String,
}

impl DecodeError {
    /// Wrap a message.
    pub fn new(message: String) -> Self {
        DecodeError { message }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn triple(v: [f64; 3]) -> Value {
    Value::Array(vec![v[0].into(), v[1].into(), v[2].into()])
}

fn get_f64(v: &Value, key: &str) -> Result<f64, DecodeError> {
    v[key]
        .as_f64()
        .ok_or_else(|| DecodeError::new(format!("missing number '{key}'")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, DecodeError> {
    v[key]
        .as_u64()
        .ok_or_else(|| DecodeError::new(format!("missing integer '{key}'")))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, DecodeError> {
    v[key]
        .as_str()
        .ok_or_else(|| DecodeError::new(format!("missing string '{key}'")))
}

fn get_time(v: &Value) -> Result<SimTime, DecodeError> {
    Ok(SimTime::from_micros(get_u64(v, "t_us")?))
}

fn get_triple(v: &Value, key: &str) -> Result<[f64; 3], DecodeError> {
    let arr = v[key]
        .as_array()
        .ok_or_else(|| DecodeError::new(format!("missing array '{key}'")))?;
    if arr.len() != 3 {
        return Err(DecodeError::new(format!("'{key}' must have 3 entries")));
    }
    let mut out = [0.0; 3];
    for (i, x) in arr.iter().enumerate() {
        out[i] = x
            .as_f64()
            .ok_or_else(|| DecodeError::new(format!("non-number in '{key}'")))?;
    }
    Ok(out)
}

impl TelemetryEvent {
    /// Encode as one JSON object (one line of the JSON-lines export).
    pub fn to_json(&self) -> Value {
        match self {
            TelemetryEvent::RunStarted {
                variant,
                seed,
                horizon_s,
                services,
            } => {
                let svc: Vec<Value> = services
                    .iter()
                    .map(|s| {
                        json!({
                            "name": s.name.clone(),
                            "background": s.background,
                            "initial_mode": s.initial_mode.tag(),
                        })
                    })
                    .collect();
                json!({
                    "type": "run_started",
                    "variant": variant.clone(),
                    "seed": *seed,
                    "horizon_s": *horizon_s,
                    "services": svc,
                })
            }
            TelemetryEvent::Tick(r) => json!({
                "type": "tick",
                "t_us": r.t.as_micros(),
                "service": r.service,
                "mode": r.mode.tag(),
                "load_qps": r.load_qps,
                "mu": r.mu,
                "lambda_max": r.lambda_max,
                "pressures": (triple(r.pressures)),
                "weights": (triple(r.weights)),
                "decision": r.decision.tag(),
                "reason": r.reason.tag(),
            }),
            TelemetryEvent::Switch(r) => json!({
                "type": "switch",
                "t_us": r.t.as_micros(),
                "service": r.service,
                "from": r.from.tag(),
                "to": r.to.tag(),
                "phase": r.phase.tag(),
                "prewarm_count": r.prewarm_count,
                "load_qps": r.load_qps,
            }),
            TelemetryEvent::Heartbeat(r) => {
                let lat: Vec<Value> = r.meter_latency_s.iter().map(|l| Value::from(*l)).collect();
                json!({
                    "type": "heartbeat",
                    "t_us": r.t.as_micros(),
                    "meter_latency_s": (Value::Array(lat)),
                    "pressures": (triple(r.pressures)),
                    "weights": (triple(r.weights)),
                })
            }
            TelemetryEvent::Violation(r) => json!({
                "type": "violation",
                "t_us": r.t.as_micros(),
                "service": r.service,
                "platform": r.platform.tag(),
                "latency_s": r.latency_s,
                "target_s": r.target_s,
                "cold_start_s": r.cold_start_s,
                "queue_wait_s": r.queue_wait_s,
                "cause": r.cause.tag(),
            }),
            TelemetryEvent::WarmSample(r) => json!({
                "type": "warm_sample",
                "t_us": r.t.as_micros(),
                "service": r.service,
                "auth_s": r.auth_s,
                "code_load_s": r.code_load_s,
                "result_post_s": r.result_post_s,
                "exec_s": r.exec_s,
            }),
            TelemetryEvent::Forecast(r) => json!({
                "type": "forecast",
                "t_us": r.t.as_micros(),
                "service": r.service,
                "horizon_s": r.horizon_s,
                "mean_qps": r.mean_qps,
                "lo_qps": r.lo_qps,
                "hi_qps": r.hi_qps,
                "realized_qps": (Value::from(r.realized_qps)),
            }),
            TelemetryEvent::Fault(r) => json!({
                "type": "fault",
                "t_us": r.t.as_micros(),
                "kind": r.kind.tag(),
                "service": (Value::from(r.service)),
                "queries_displaced": r.queries_displaced,
                "queries_dropped": r.queries_dropped,
            }),
            TelemetryEvent::Recovery(r) => json!({
                "type": "recovery",
                "t_us": r.t.as_micros(),
                "kind": r.kind.tag(),
                "service": (Value::from(r.service)),
                "after_s": r.after_s,
            }),
            TelemetryEvent::StageSpan(r) => json!({
                "type": "stage_span",
                "t_us": r.t.as_micros(),
                "workflow": r.workflow,
                "instance": r.instance,
                "stage": r.stage,
                "service": r.service,
                "platform": r.platform.tag(),
                "latency_s": r.latency_s,
                "budget_s": r.budget_s,
            }),
            TelemetryEvent::Placement(r) => json!({
                "type": "placement",
                "t_us": r.t.as_micros(),
                "service": r.service,
                "node": r.node,
                "spill": r.spill,
            }),
            TelemetryEvent::NodeUtil(r) => json!({
                "type": "node_util",
                "t_us": r.t.as_micros(),
                "mean_util": (triple(r.mean_util)),
                "max_node_util": r.max_node_util,
            }),
            TelemetryEvent::Admission(r) => json!({
                "type": "admission",
                "t_us": r.t.as_micros(),
                "tenant": (r.tenant.clone()),
                "admitted": r.admitted,
                "reserved_share": r.reserved_share,
                "ratio": r.ratio,
            }),
            TelemetryEvent::VendorSample(r) => json!({
                "type": "vendor_sample",
                "t_us": r.t.as_micros(),
                "pool_util": (triple(r.pool_util)),
                "containers": r.containers,
                "throttled": r.throttled,
            }),
            TelemetryEvent::ShardSpan(r) => json!({
                "type": "shard_span",
                "t_us": r.t.as_micros(),
                "epoch": r.epoch,
                "shard": r.shard,
                "cells": r.cells,
                "events": r.events,
            }),
            TelemetryEvent::FleetSample(r) => json!({
                "type": "fleet_sample",
                "t_us": r.t.as_micros(),
                "epoch": r.epoch,
                "mean_util": (triple(r.mean_util)),
                "external_pressure": (triple(r.external_pressure)),
                "throttled": r.throttled,
            }),
        }
    }

    /// Decode one JSON-lines object.
    pub fn from_json(v: &Value) -> Result<Self, DecodeError> {
        match get_str(v, "type")? {
            "run_started" => {
                let mut services = Vec::new();
                let arr = v["services"]
                    .as_array()
                    .ok_or_else(|| DecodeError::new("missing 'services'".into()))?;
                for s in arr {
                    services.push(ServiceInfo {
                        name: get_str(s, "name")?.to_string(),
                        background: s["background"]
                            .as_bool()
                            .ok_or_else(|| DecodeError::new("missing 'background'".into()))?,
                        initial_mode: Mode::from_tag(get_str(s, "initial_mode")?)?,
                    });
                }
                Ok(TelemetryEvent::RunStarted {
                    variant: get_str(v, "variant")?.to_string(),
                    seed: get_u64(v, "seed")?,
                    horizon_s: get_f64(v, "horizon_s")?,
                    services,
                })
            }
            "tick" => Ok(TelemetryEvent::Tick(TickRecord {
                t: get_time(v)?,
                service: get_u64(v, "service")? as usize,
                mode: Mode::from_tag(get_str(v, "mode")?)?,
                load_qps: get_f64(v, "load_qps")?,
                mu: get_f64(v, "mu")?,
                lambda_max: get_f64(v, "lambda_max")?,
                pressures: get_triple(v, "pressures")?,
                weights: get_triple(v, "weights")?,
                decision: TraceDecision::from_tag(get_str(v, "decision")?)?,
                reason: TickReason::from_tag(get_str(v, "reason")?)?,
            })),
            "switch" => Ok(TelemetryEvent::Switch(SwitchRecord {
                t: get_time(v)?,
                service: get_u64(v, "service")? as usize,
                from: Mode::from_tag(get_str(v, "from")?)?,
                to: Mode::from_tag(get_str(v, "to")?)?,
                phase: SwitchPhase::from_tag(get_str(v, "phase")?)?,
                prewarm_count: get_u64(v, "prewarm_count")? as u32,
                load_qps: get_f64(v, "load_qps")?,
            })),
            "heartbeat" => {
                let arr = v["meter_latency_s"]
                    .as_array()
                    .ok_or_else(|| DecodeError::new("missing 'meter_latency_s'".into()))?;
                if arr.len() != 3 {
                    return Err(DecodeError::new("'meter_latency_s' must have 3".into()));
                }
                let mut lat = [None; 3];
                for (i, x) in arr.iter().enumerate() {
                    lat[i] = x.as_f64();
                }
                Ok(TelemetryEvent::Heartbeat(HeartbeatRecord {
                    t: get_time(v)?,
                    meter_latency_s: lat,
                    pressures: get_triple(v, "pressures")?,
                    weights: get_triple(v, "weights")?,
                }))
            }
            "violation" => Ok(TelemetryEvent::Violation(ViolationRecord {
                t: get_time(v)?,
                service: get_u64(v, "service")? as usize,
                platform: Mode::from_tag(get_str(v, "platform")?)?,
                latency_s: get_f64(v, "latency_s")?,
                target_s: get_f64(v, "target_s")?,
                cold_start_s: get_f64(v, "cold_start_s")?,
                queue_wait_s: get_f64(v, "queue_wait_s")?,
                cause: ViolationCause::from_tag(get_str(v, "cause")?)?,
            })),
            "warm_sample" => Ok(TelemetryEvent::WarmSample(WarmSampleRecord {
                t: get_time(v)?,
                service: get_u64(v, "service")? as usize,
                auth_s: get_f64(v, "auth_s")?,
                code_load_s: get_f64(v, "code_load_s")?,
                result_post_s: get_f64(v, "result_post_s")?,
                exec_s: get_f64(v, "exec_s")?,
            })),
            "forecast" => Ok(TelemetryEvent::Forecast(ForecastRecord {
                t: get_time(v)?,
                service: get_u64(v, "service")? as usize,
                horizon_s: get_f64(v, "horizon_s")?,
                mean_qps: get_f64(v, "mean_qps")?,
                lo_qps: get_f64(v, "lo_qps")?,
                hi_qps: get_f64(v, "hi_qps")?,
                realized_qps: v["realized_qps"].as_f64(),
            })),
            "fault" => Ok(TelemetryEvent::Fault(FaultRecord {
                t: get_time(v)?,
                kind: FaultKind::from_tag(get_str(v, "kind")?)?,
                service: v["service"].as_u64().map(|s| s as usize),
                queries_displaced: get_u64(v, "queries_displaced")?,
                queries_dropped: get_u64(v, "queries_dropped")?,
            })),
            "recovery" => Ok(TelemetryEvent::Recovery(RecoveryRecord {
                t: get_time(v)?,
                kind: RecoveryKind::from_tag(get_str(v, "kind")?)?,
                service: v["service"].as_u64().map(|s| s as usize),
                after_s: get_f64(v, "after_s")?,
            })),
            "stage_span" => Ok(TelemetryEvent::StageSpan(StageSpanRecord {
                t: get_time(v)?,
                workflow: get_u64(v, "workflow")? as usize,
                instance: get_u64(v, "instance")?,
                stage: get_u64(v, "stage")? as usize,
                service: get_u64(v, "service")? as usize,
                platform: Mode::from_tag(get_str(v, "platform")?)?,
                latency_s: get_f64(v, "latency_s")?,
                budget_s: get_f64(v, "budget_s")?,
            })),
            "placement" => Ok(TelemetryEvent::Placement(PlacementRecord {
                t: get_time(v)?,
                service: get_u64(v, "service")? as usize,
                node: get_u64(v, "node")? as usize,
                spill: v["spill"]
                    .as_bool()
                    .ok_or_else(|| DecodeError::new("missing 'spill'".into()))?,
            })),
            "node_util" => Ok(TelemetryEvent::NodeUtil(NodeUtilRecord {
                t: get_time(v)?,
                mean_util: get_triple(v, "mean_util")?,
                max_node_util: get_f64(v, "max_node_util")?,
            })),
            "admission" => Ok(TelemetryEvent::Admission(AdmissionRecord {
                t: get_time(v)?,
                tenant: get_str(v, "tenant")?.to_string(),
                admitted: v["admitted"]
                    .as_bool()
                    .ok_or_else(|| DecodeError::new("missing 'admitted'".into()))?,
                reserved_share: get_f64(v, "reserved_share")?,
                ratio: get_f64(v, "ratio")?,
            })),
            "vendor_sample" => Ok(TelemetryEvent::VendorSample(VendorSampleRecord {
                t: get_time(v)?,
                pool_util: get_triple(v, "pool_util")?,
                containers: get_u64(v, "containers")?,
                throttled: v["throttled"]
                    .as_bool()
                    .ok_or_else(|| DecodeError::new("missing 'throttled'".into()))?,
            })),
            "shard_span" => Ok(TelemetryEvent::ShardSpan(ShardSpanRecord {
                t: get_time(v)?,
                epoch: get_u64(v, "epoch")?,
                shard: get_u64(v, "shard")? as usize,
                cells: get_u64(v, "cells")?,
                events: get_u64(v, "events")?,
            })),
            "fleet_sample" => Ok(TelemetryEvent::FleetSample(FleetSampleRecord {
                t: get_time(v)?,
                epoch: get_u64(v, "epoch")?,
                mean_util: get_triple(v, "mean_util")?,
                external_pressure: get_triple(v, "external_pressure")?,
                throttled: v["throttled"]
                    .as_bool()
                    .ok_or_else(|| DecodeError::new("missing 'throttled'".into()))?,
            })),
            other => Err(DecodeError::new(format!("unknown event type '{other}'"))),
        }
    }

    /// The event's timestamp (run headers read as t=0).
    pub fn time(&self) -> SimTime {
        match self {
            TelemetryEvent::RunStarted { .. } => SimTime::ZERO,
            TelemetryEvent::Tick(r) => r.t,
            TelemetryEvent::Switch(r) => r.t,
            TelemetryEvent::Heartbeat(r) => r.t,
            TelemetryEvent::Violation(r) => r.t,
            TelemetryEvent::WarmSample(r) => r.t,
            TelemetryEvent::Forecast(r) => r.t,
            TelemetryEvent::Fault(r) => r.t,
            TelemetryEvent::Recovery(r) => r.t,
            TelemetryEvent::StageSpan(r) => r.t,
            TelemetryEvent::Placement(r) => r.t,
            TelemetryEvent::NodeUtil(r) => r.t,
            TelemetryEvent::Admission(r) => r.t,
            TelemetryEvent::VendorSample(r) => r.t,
            TelemetryEvent::ShardSpan(r) => r.t,
            TelemetryEvent::FleetSample(r) => r.t,
        }
    }
}
