//! Where events go: the zero-cost-when-disabled sink abstraction.

use crate::event::TelemetryEvent;
use crate::trace::Trace;

/// An append-only consumer of telemetry events.
///
/// Instrumented code must guard event *construction* behind
/// [`TelemetrySink::enabled`]:
///
/// ```
/// # use amoeba_telemetry::{TelemetrySink, NoopSink};
/// # let mut sink = NoopSink;
/// # let expensive_event = || unreachable!();
/// if sink.enabled() {
///     sink.record(expensive_event());
/// }
/// ```
///
/// so that with [`NoopSink`] the hot path does no allocation and no
/// formatting — one inlined `false` check and nothing else.
pub trait TelemetrySink {
    /// Should callers build and record events?
    fn enabled(&self) -> bool;

    /// Append one event. Implementations may assume callers checked
    /// [`TelemetrySink::enabled`], but must stay correct if they didn't.
    fn record(&mut self, event: TelemetryEvent);
}

/// The disabled sink: [`TelemetrySink::enabled`] is `false` and
/// [`TelemetrySink::record`] discards. This is the default for
/// `Experiment::run`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: TelemetryEvent) {}
}

/// An in-memory sink: keeps every event, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<TelemetryEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Consume the sink into a [`Trace`].
    pub fn into_trace(self) -> Trace {
        Trace::from_events(self.events)
    }
}

impl TelemetrySink for MemorySink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TelemetryEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{HeartbeatRecord, TelemetryEvent};
    use amoeba_sim::SimTime;

    #[test]
    fn noop_sink_is_disabled_and_discards() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record(TelemetryEvent::Heartbeat(HeartbeatRecord {
            t: SimTime::ZERO,
            meter_latency_s: [None; 3],
            pressures: [0.0; 3],
            weights: [1.0; 3],
        }));
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut s = MemorySink::new();
        assert!(s.enabled());
        for i in 0..3 {
            s.record(TelemetryEvent::Heartbeat(HeartbeatRecord {
                t: SimTime::from_secs(i),
                meter_latency_s: [None; 3],
                pressures: [0.0; 3],
                weights: [1.0; 3],
            }));
        }
        let trace = s.into_trace();
        let times: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| e.time().as_micros())
            .collect();
        assert_eq!(times, vec![0, 1_000_000, 2_000_000]);
    }
}
