//! A recorded run: typed views, switch-span assembly, the summary, and
//! the JSON-lines (one event per line) serialisation.

use std::collections::BTreeMap;
use std::fmt;

use amoeba_sim::{SimDuration, SimTime};

use crate::event::{
    DecodeError, FaultRecord, FleetSampleRecord, ForecastRecord, HeartbeatRecord, Mode,
    NodeUtilRecord, PlacementRecord, RecoveryRecord, ShardSpanRecord, StageSpanRecord, SwitchPhase,
    SwitchRecord, TelemetryEvent, TickRecord, ViolationCause, ViolationRecord, WarmSampleRecord,
};

/// An ordered, append-only stream of [`TelemetryEvent`]s for one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TelemetryEvent>,
}

/// One reconstructed deployment-switch protocol instance for a service:
/// `Requested → Ack → Flip → ReleaseIssued → Drained` (or `Aborted`).
///
/// Missing stages stay `None` — a switch whose drain outlives the horizon
/// has `drained: None`, and an impact-vetoed reversal recorded as
/// `Aborted` keeps whatever stages it reached.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchSpan {
    /// The switching service's index (registration order).
    pub service: usize,
    /// Mode being left.
    pub from: Mode,
    /// Mode being entered.
    pub to: Mode,
    /// Containers asked for ahead of the flip (Eq. 7).
    pub prewarm_count: u32,
    /// When the controller requested the switch (prewarm issued).
    pub requested: SimTime,
    /// When the destination side acknowledged readiness.
    pub ack: Option<SimTime>,
    /// When the router flipped new arrivals to the destination.
    pub flip: Option<SimTime>,
    /// When the old side's release / drain was issued.
    pub release_issued: Option<SimTime>,
    /// When the old side finished draining (IaaS→serverless only).
    pub drained: Option<SimTime>,
    /// When the transition was aborted, if it was.
    pub aborted: Option<SimTime>,
}

impl SwitchSpan {
    /// Prewarm-issued → destination-ready duration (the paper's `S_pw`).
    pub fn prewarm_duration(&self) -> Option<SimDuration> {
        self.ack.map(|t| t - self.requested)
    }

    /// Router-flip → old-side-drained duration (the paper's `S_sd`).
    pub fn drain_duration(&self) -> Option<SimDuration> {
        match (self.flip, self.drained) {
            (Some(f), Some(d)) => Some(d - f),
            _ => None,
        }
    }

    /// Did this span complete (router flipped, not aborted)?
    pub fn completed(&self) -> bool {
        self.flip.is_some() && self.aborted.is_none()
    }
}

/// Per-service aggregates for [`TraceSummary`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceSummary {
    /// Completed switches (router flips) this service made.
    pub switches: u64,
    /// Aborted transitions.
    pub aborted: u64,
    /// Wall-clock spent with the router pointing at IaaS.
    pub time_in_iaas: SimDuration,
    /// Wall-clock spent with the router pointing at serverless.
    pub time_in_serverless: SimDuration,
    /// QoS violations attributed to cold starts.
    pub violations_cold_start: u64,
    /// QoS violations attributed to queueing delay.
    pub violations_queueing: u64,
    /// QoS violations attributed to co-tenant contention.
    pub violations_contention: u64,
}

impl ServiceSummary {
    /// All violations, regardless of cause.
    pub fn violations(&self) -> u64 {
        self.violations_cold_start + self.violations_queueing + self.violations_contention
    }
}

/// Whole-run rollup of a [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Controller ticks recorded.
    pub ticks: u64,
    /// Monitor heartbeats recorded.
    pub heartbeats: u64,
    /// Completed switches across all services.
    pub switches: u64,
    /// Aborted transitions across all services.
    pub aborted_switches: u64,
    /// Per-service aggregates, keyed by service name (from the run
    /// header; `svc<i>` when the header is absent).
    pub services: BTreeMap<String, ServiceSummary>,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ticks: {}  heartbeats: {}  switches: {} ({} aborted)",
            self.ticks, self.heartbeats, self.switches, self.aborted_switches
        )?;
        for (name, s) in &self.services {
            writeln!(
                f,
                "{name}: {} switch(es), iaas {:.0}s / serverless {:.0}s, \
                 violations {} (cold {}, queue {}, contention {})",
                s.switches,
                s.time_in_iaas.as_secs_f64(),
                s.time_in_serverless.as_secs_f64(),
                s.violations(),
                s.violations_cold_start,
                s.violations_queueing,
                s.violations_contention,
            )?;
        }
        Ok(())
    }
}

impl Trace {
    /// Wrap an already-ordered event list.
    pub fn from_events(events: Vec<TelemetryEvent>) -> Self {
        Trace { events }
    }

    /// All events, in arrival order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Controller tick records, in order.
    pub fn ticks(&self) -> impl Iterator<Item = &TickRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Tick(r) => Some(r),
            _ => None,
        })
    }

    /// Raw switch-protocol stage events, in order.
    pub fn switch_events(&self) -> impl Iterator<Item = &SwitchRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Switch(r) => Some(r),
            _ => None,
        })
    }

    /// Monitor heartbeats, in order.
    pub fn heartbeats(&self) -> impl Iterator<Item = &HeartbeatRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Heartbeat(r) => Some(r),
            _ => None,
        })
    }

    /// QoS violation records, in order.
    pub fn violations(&self) -> impl Iterator<Item = &ViolationRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Violation(r) => Some(r),
            _ => None,
        })
    }

    /// Warm serverless latency-breakdown samples, in order.
    pub fn warm_samples(&self) -> impl Iterator<Item = &WarmSampleRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::WarmSample(r) => Some(r),
            _ => None,
        })
    }

    /// Proactive-controller forecasts, in order (Amoeba-Pro runs only).
    pub fn forecasts(&self) -> impl Iterator<Item = &ForecastRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Forecast(r) => Some(r),
            _ => None,
        })
    }

    /// Injected-fault records, in order (chaos runs only).
    pub fn faults(&self) -> impl Iterator<Item = &FaultRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Fault(r) => Some(r),
            _ => None,
        })
    }

    /// Recovery records, in order (chaos runs only).
    pub fn recoveries(&self) -> impl Iterator<Item = &RecoveryRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Recovery(r) => Some(r),
            _ => None,
        })
    }

    /// Completed workflow stage spans, in order (workflow runs only).
    pub fn stage_spans(&self) -> impl Iterator<Item = &StageSpanRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::StageSpan(r) => Some(r),
            _ => None,
        })
    }

    /// Node-placement records, in order (multi-node runs only).
    pub fn placements(&self) -> impl Iterator<Item = &PlacementRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Placement(r) => Some(r),
            _ => None,
        })
    }

    /// Fleet utilization snapshots, in order (multi-node runs only).
    pub fn node_utils(&self) -> impl Iterator<Item = &NodeUtilRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::NodeUtil(r) => Some(r),
            _ => None,
        })
    }

    /// Per-shard per-epoch accounting spans, in order (fleet runs only).
    pub fn shard_spans(&self) -> impl Iterator<Item = &ShardSpanRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::ShardSpan(r) => Some(r),
            _ => None,
        })
    }

    /// Fleet-wide epoch-boundary samples, in order (fleet runs only).
    pub fn fleet_samples(&self) -> impl Iterator<Item = &FleetSampleRecord> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::FleetSample(r) => Some(r),
            _ => None,
        })
    }

    /// The run header, if one was recorded.
    fn run_started(&self) -> Option<&TelemetryEvent> {
        self.events
            .iter()
            .find(|e| matches!(e, TelemetryEvent::RunStarted { .. }))
    }

    /// A service's display name: from the run header, else `svc<i>`.
    pub fn service_name(&self, idx: usize) -> String {
        if let Some(TelemetryEvent::RunStarted { services, .. }) = self.run_started() {
            if let Some(info) = services.get(idx) {
                return info.name.clone();
            }
        }
        format!("svc{idx}")
    }

    /// Assemble per-service switch spans from the raw stage events.
    ///
    /// A `Requested` stage opens a span; subsequent stages for the same
    /// service attach to its most recent open span. A span stays open
    /// past `ReleaseIssued` only when leaving IaaS — the drain
    /// completion arrives later (or never, if the horizon ends first).
    pub fn switch_spans(&self) -> Vec<SwitchSpan> {
        let mut spans: Vec<SwitchSpan> = Vec::new();
        // Index into `spans` of the currently open span per service.
        let mut open: BTreeMap<usize, usize> = BTreeMap::new();
        for r in self.switch_events() {
            match r.phase {
                SwitchPhase::Requested => {
                    open.insert(r.service, spans.len());
                    spans.push(SwitchSpan {
                        service: r.service,
                        from: r.from,
                        to: r.to,
                        prewarm_count: r.prewarm_count,
                        requested: r.t,
                        ack: None,
                        flip: None,
                        release_issued: None,
                        drained: None,
                        aborted: None,
                    });
                }
                SwitchPhase::Ack => {
                    if let Some(&idx) = open.get(&r.service) {
                        spans[idx].ack = Some(r.t);
                    }
                }
                SwitchPhase::Flip => {
                    if let Some(&idx) = open.get(&r.service) {
                        spans[idx].flip = Some(r.t);
                    }
                }
                SwitchPhase::ReleaseIssued => {
                    if let Some(&idx) = open.get(&r.service) {
                        spans[idx].release_issued = Some(r.t);
                        if spans[idx].from != Mode::Iaas {
                            open.remove(&r.service);
                        }
                    }
                }
                SwitchPhase::Drained => {
                    let idx = open.remove(&r.service).or_else(|| {
                        spans
                            .iter()
                            .rposition(|s| s.service == r.service && s.from == Mode::Iaas)
                    });
                    if let Some(idx) = idx {
                        spans[idx].drained = Some(r.t);
                    }
                }
                SwitchPhase::Aborted => {
                    if let Some(idx) = open.remove(&r.service) {
                        spans[idx].aborted = Some(r.t);
                    }
                }
            }
        }
        spans
    }

    /// Roll the trace up into a [`TraceSummary`].
    ///
    /// Time-in-mode is charged per service from its initial mode (the
    /// `run_started` header) through each router flip to the run
    /// horizon (end of the last event when the header is absent).
    pub fn summary(&self) -> TraceSummary {
        let mut out = TraceSummary {
            ticks: self.ticks().count() as u64,
            heartbeats: self.heartbeats().count() as u64,
            ..TraceSummary::default()
        };

        // Initial modes + horizon from the header.
        let mut mode_at: BTreeMap<usize, (Mode, SimTime)> = BTreeMap::new();
        let mut horizon = self
            .events
            .last()
            .map(|e| e.time())
            .unwrap_or(SimTime::ZERO);
        if let Some(TelemetryEvent::RunStarted {
            horizon_s,
            services,
            ..
        }) = self.run_started()
        {
            horizon = SimTime::from_secs_f64(*horizon_s);
            for (i, s) in services.iter().enumerate() {
                mode_at.insert(i, (s.initial_mode, SimTime::ZERO));
                out.services
                    .insert(s.name.clone(), ServiceSummary::default());
            }
        }

        fn charge(s: &mut ServiceSummary, mode: Mode, dur: SimDuration) {
            match mode {
                Mode::Iaas => s.time_in_iaas += dur,
                Mode::Serverless => s.time_in_serverless += dur,
            }
        }

        for span in self.switch_spans() {
            let name = self.service_name(span.service);
            let s = out.services.entry(name).or_default();
            if span.aborted.is_some() {
                s.aborted += 1;
                out.aborted_switches += 1;
                continue;
            }
            if let Some(flip) = span.flip {
                s.switches += 1;
                out.switches += 1;
                let (mode, since) = mode_at
                    .get(&span.service)
                    .copied()
                    .unwrap_or((span.from, SimTime::ZERO));
                charge(s, mode, flip - since);
                mode_at.insert(span.service, (span.to, flip));
            }
        }
        for (idx, (mode, since)) in &mode_at {
            if *since <= horizon {
                let name = self.service_name(*idx);
                let s = out.services.entry(name).or_default();
                charge(s, *mode, horizon - *since);
            }
        }

        for v in self.violations() {
            let name = self.service_name(v.service);
            let s = out.services.entry(name).or_default();
            match v.cause {
                ViolationCause::ColdStart => s.violations_cold_start += 1,
                ViolationCause::Queueing => s.violations_queueing += 1,
                ViolationCause::Contention => s.violations_contention += 1,
            }
        }
        out
    }

    /// Serialise as JSON lines: one compact event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().compact());
            out.push('\n');
        }
        out
    }

    /// Parse a JSON-lines dump produced by [`Trace::to_jsonl`]. Blank
    /// lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<Trace, DecodeError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = amoeba_json::parse(line)
                .map_err(|e| DecodeError::new(format!("line {}: {e}", i + 1)))?;
            events.push(
                TelemetryEvent::from_json(&v)
                    .map_err(|e| DecodeError::new(format!("line {}: {e}", i + 1)))?,
            );
        }
        Ok(Trace::from_events(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ServiceInfo, TelemetryEvent};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn switch(
        secs: f64,
        service: usize,
        from: Mode,
        to: Mode,
        phase: SwitchPhase,
    ) -> TelemetryEvent {
        TelemetryEvent::Switch(SwitchRecord {
            t: t(secs),
            service,
            from,
            to,
            phase,
            prewarm_count: 4,
            load_qps: 10.0,
        })
    }

    fn header(horizon_s: f64, services: Vec<ServiceInfo>) -> TelemetryEvent {
        TelemetryEvent::RunStarted {
            variant: "amoeba".to_string(),
            seed: 7,
            horizon_s,
            services,
        }
    }

    fn dd_header(horizon_s: f64) -> TelemetryEvent {
        header(
            horizon_s,
            vec![ServiceInfo {
                name: "dd".to_string(),
                background: false,
                initial_mode: Mode::Iaas,
            }],
        )
    }

    #[test]
    fn spans_assemble_in_protocol_order() {
        let trace = Trace::from_events(vec![
            switch(
                10.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::Requested,
            ),
            switch(12.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Ack),
            switch(12.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Flip),
            switch(
                12.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::ReleaseIssued,
            ),
            switch(19.5, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Drained),
        ]);
        let spans = trace.switch_spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.completed());
        assert_eq!(s.prewarm_duration().unwrap().as_secs_f64(), 2.0);
        assert!((s.drain_duration().unwrap().as_secs_f64() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn unfinished_drain_leaves_span_open_ended() {
        let trace = Trace::from_events(vec![
            switch(
                10.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::Requested,
            ),
            switch(11.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Ack),
            switch(11.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Flip),
            switch(
                11.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::ReleaseIssued,
            ),
        ]);
        let spans = trace.switch_spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].completed());
        assert!(spans[0].drained.is_none());
        assert!(spans[0].drain_duration().is_none());
    }

    #[test]
    fn aborted_span_is_not_counted_as_switch() {
        let trace = Trace::from_events(vec![
            dd_header(100.0),
            switch(
                10.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::Requested,
            ),
            switch(11.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Aborted),
        ]);
        let s = trace.summary();
        assert_eq!(s.switches, 0);
        assert_eq!(s.aborted_switches, 1);
        let svc = &s.services["dd"];
        // The whole horizon charged to the initial mode.
        assert!((svc.time_in_iaas.as_secs_f64() - 100.0).abs() < 1e-9);
        assert_eq!(svc.time_in_serverless, SimDuration::ZERO);
    }

    #[test]
    fn time_in_mode_splits_at_flips() {
        let trace = Trace::from_events(vec![
            dd_header(100.0),
            switch(
                30.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::Requested,
            ),
            switch(32.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Ack),
            switch(32.0, 0, Mode::Iaas, Mode::Serverless, SwitchPhase::Flip),
            switch(
                32.0,
                0,
                Mode::Iaas,
                Mode::Serverless,
                SwitchPhase::ReleaseIssued,
            ),
            switch(
                70.0,
                0,
                Mode::Serverless,
                Mode::Iaas,
                SwitchPhase::Requested,
            ),
            switch(74.0, 0, Mode::Serverless, Mode::Iaas, SwitchPhase::Ack),
            switch(74.0, 0, Mode::Serverless, Mode::Iaas, SwitchPhase::Flip),
            switch(
                74.0,
                0,
                Mode::Serverless,
                Mode::Iaas,
                SwitchPhase::ReleaseIssued,
            ),
        ]);
        let s = trace.summary();
        assert_eq!(s.switches, 2);
        let svc = &s.services["dd"];
        // Iaas: [0, 32) and [74, 100) = 58 s; serverless: [32, 74) = 42 s.
        assert!((svc.time_in_iaas.as_secs_f64() - 58.0).abs() < 1e-9);
        assert!((svc.time_in_serverless.as_secs_f64() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn fault_and_recovery_events_round_trip() {
        use crate::event::{FaultKind, FaultRecord, RecoveryKind, RecoveryRecord};
        let kinds = [
            (FaultKind::ContainerCrash, Some(1)),
            (FaultKind::VmBootFailure, Some(0)),
            (FaultKind::VmSlowBoot, Some(0)),
            (FaultKind::AckDropped, Some(2)),
            (FaultKind::AckTimeout, Some(2)),
            (FaultKind::DrainTimeout, Some(0)),
            (FaultKind::MeterOutage, None),
            (FaultKind::MeterOutlier, None),
            (FaultKind::PressureSpike, None),
        ];
        let mut events: Vec<TelemetryEvent> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(kind, service))| {
                TelemetryEvent::Fault(FaultRecord {
                    t: t(i as f64),
                    kind,
                    service,
                    queries_displaced: i as u64,
                    queries_dropped: (i / 2) as u64,
                })
            })
            .collect();
        for (i, (kind, service)) in [
            (RecoveryKind::RequeuedQueryCompleted, Some(1)),
            (RecoveryKind::VmBootSucceeded, Some(0)),
            (RecoveryKind::AckReceived, Some(2)),
            (RecoveryKind::SwitchRolledBack, Some(2)),
            (RecoveryKind::DrainForced, None),
        ]
        .into_iter()
        .enumerate()
        {
            events.push(TelemetryEvent::Recovery(RecoveryRecord {
                t: t(20.0 + i as f64),
                kind,
                service,
                after_s: 0.5 * i as f64,
            }));
        }
        let trace = Trace::from_events(events);
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.to_jsonl(), text);
        assert_eq!(back.faults().count(), 9);
        assert_eq!(back.recoveries().count(), 5);
        assert_eq!(back.faults().next().unwrap().service, Some(1));
        assert!(back.recoveries().last().unwrap().service.is_none());
    }

    #[test]
    fn stage_span_events_round_trip() {
        let events: Vec<TelemetryEvent> = (0..4)
            .map(|i| {
                TelemetryEvent::StageSpan(StageSpanRecord {
                    t: t(1.0 + i as f64),
                    workflow: 0,
                    instance: 100 + i as u64,
                    stage: i,
                    service: 3 + i,
                    platform: if i % 2 == 0 {
                        Mode::Iaas
                    } else {
                        Mode::Serverless
                    },
                    latency_s: 0.05 * (i + 1) as f64,
                    budget_s: 0.2,
                })
            })
            .collect();
        let trace = Trace::from_events(events);
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.stage_spans().count(), 4);
        let last = back.stage_spans().last().unwrap();
        assert_eq!(last.stage, 3);
        assert_eq!(last.instance, 103);
        assert_eq!(last.platform, Mode::Serverless);
    }

    #[test]
    fn admission_and_vendor_sample_events_round_trip() {
        use crate::event::{AdmissionRecord, VendorSampleRecord};
        let events = vec![
            TelemetryEvent::Admission(AdmissionRecord {
                t: t(0.0),
                tenant: "float-t00".to_string(),
                admitted: true,
                reserved_share: 0.21,
                ratio: 1.5,
            }),
            TelemetryEvent::Admission(AdmissionRecord {
                t: t(0.0),
                tenant: "matmul-t01".to_string(),
                admitted: false,
                reserved_share: 0.4,
                ratio: 1.5,
            }),
            TelemetryEvent::VendorSample(VendorSampleRecord {
                t: t(5.0),
                pool_util: [0.8, 0.2, 0.1],
                containers: 42,
                throttled: true,
            }),
        ];
        let trace = Trace::from_events(events);
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = Trace::from_events(vec![
            header(
                50.0,
                vec![ServiceInfo {
                    name: "float".to_string(),
                    background: true,
                    initial_mode: Mode::Serverless,
                }],
            ),
            switch(5.0, 0, Mode::Serverless, Mode::Iaas, SwitchPhase::Requested),
            TelemetryEvent::Violation(ViolationRecord {
                t: t(6.0),
                service: 0,
                platform: Mode::Serverless,
                latency_s: 0.9,
                target_s: 0.5,
                cold_start_s: 0.4,
                queue_wait_s: 0.0,
                cause: ViolationCause::ColdStart,
            }),
        ]);
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.to_jsonl(), text);
        assert_eq!(back.violations().count(), 1);
    }
}
