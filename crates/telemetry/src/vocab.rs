//! The closed vocabularies of the telemetry schema: small enums that
//! name modes, decisions, causes and kinds, each with its stable
//! string form and parser.
//!
//! Split out of `event` to keep that module within the file-size
//! budget; everything here is re-exported from `event`, so paths are
//! unchanged.

use crate::event::DecodeError;

/// Deployment mode, mirrored from `amoeba-core` so the trace layer does
/// not depend on the runtime it instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dedicated VM group.
    Iaas,
    /// Shared serverless pool.
    Serverless,
}

impl Mode {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            Mode::Iaas => "iaas",
            Mode::Serverless => "serverless",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "iaas" => Ok(Mode::Iaas),
            "serverless" => Ok(Mode::Serverless),
            _ => Err(DecodeError::new(format!("unknown mode '{s}'"))),
        }
    }
}

/// The controller's verdict, as traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecision {
    /// Keep the current mode.
    Stay,
    /// Begin the switch to serverless.
    SwitchToServerless,
    /// Begin the switch to IaaS.
    SwitchToIaas,
}

impl TraceDecision {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            TraceDecision::Stay => "stay",
            TraceDecision::SwitchToServerless => "switch_to_serverless",
            TraceDecision::SwitchToIaas => "switch_to_iaas",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "stay" => Ok(TraceDecision::Stay),
            "switch_to_serverless" => Ok(TraceDecision::SwitchToServerless),
            "switch_to_iaas" => Ok(TraceDecision::SwitchToIaas),
            _ => Err(DecodeError::new(format!("unknown decision '{s}'"))),
        }
    }
}

/// Why the controller decided what it decided at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickReason {
    /// A switch is already in flight; the controller was not consulted.
    InTransition,
    /// `min_dwell` since the last switch has not elapsed.
    DwellPending,
    /// IaaS-resident, `V_u < down_margin · λ(μ)` and the impact check
    /// passed: switch down.
    LoadBelowDownMargin,
    /// IaaS-resident, load too high for the pool: stay.
    LoadAboveDownMargin,
    /// IaaS-resident, load admissible but the §III impact check vetoed
    /// the move.
    ImpactVetoed,
    /// Serverless-resident, `V_u > up_margin · λ(μ)`: switch up.
    LoadAboveUpMargin,
    /// Serverless-resident, load admissible: stay.
    LoadBelowUpMargin,
}

impl TickReason {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            TickReason::InTransition => "in_transition",
            TickReason::DwellPending => "dwell_pending",
            TickReason::LoadBelowDownMargin => "load_below_down_margin",
            TickReason::LoadAboveDownMargin => "load_above_down_margin",
            TickReason::ImpactVetoed => "impact_vetoed",
            TickReason::LoadAboveUpMargin => "load_above_up_margin",
            TickReason::LoadBelowUpMargin => "load_below_up_margin",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "in_transition" => Ok(TickReason::InTransition),
            "dwell_pending" => Ok(TickReason::DwellPending),
            "load_below_down_margin" => Ok(TickReason::LoadBelowDownMargin),
            "load_above_down_margin" => Ok(TickReason::LoadAboveDownMargin),
            "impact_vetoed" => Ok(TickReason::ImpactVetoed),
            "load_above_up_margin" => Ok(TickReason::LoadAboveUpMargin),
            "load_below_up_margin" => Ok(TickReason::LoadBelowUpMargin),
            _ => Err(DecodeError::new(format!("unknown reason '{s}'"))),
        }
    }
}

/// One step of the §V switch protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPhase {
    /// The controller committed to a switch; the prepare signal `S_pw`
    /// (prewarm containers / boot VMs) was issued.
    Requested,
    /// The target side acknowledged readiness.
    Ack,
    /// The router flipped: new queries go to the target side.
    Flip,
    /// The shutdown signal `S_sd` was sent to the old side.
    ReleaseIssued,
    /// The old side's VM group finished draining in-flight queries.
    Drained,
    /// The transition was aborted before the ack.
    Aborted,
}

impl SwitchPhase {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            SwitchPhase::Requested => "requested",
            SwitchPhase::Ack => "ack",
            SwitchPhase::Flip => "flip",
            SwitchPhase::ReleaseIssued => "release_issued",
            SwitchPhase::Drained => "drained",
            SwitchPhase::Aborted => "aborted",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "requested" => Ok(SwitchPhase::Requested),
            "ack" => Ok(SwitchPhase::Ack),
            "flip" => Ok(SwitchPhase::Flip),
            "release_issued" => Ok(SwitchPhase::ReleaseIssued),
            "drained" => Ok(SwitchPhase::Drained),
            "aborted" => Ok(SwitchPhase::Aborted),
            _ => Err(DecodeError::new(format!("unknown phase '{s}'"))),
        }
    }
}

/// What pushed a query over its QoS target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationCause {
    /// The query paid a container cold start.
    ColdStart,
    /// The query waited in the platform queue.
    Queueing,
    /// Neither: the execution itself was slowed by co-tenant contention.
    Contention,
}

impl ViolationCause {
    /// Attribution rule: cold start present → [`ViolationCause::ColdStart`];
    /// else queueing present → [`ViolationCause::Queueing`]; else the
    /// slowdown happened inside the execution → [`ViolationCause::Contention`].
    pub fn attribute(cold_start_s: f64, queue_wait_s: f64) -> Self {
        if cold_start_s > 0.0 {
            ViolationCause::ColdStart
        } else if queue_wait_s > 0.0 {
            ViolationCause::Queueing
        } else {
            ViolationCause::Contention
        }
    }

    pub(crate) fn tag(self) -> &'static str {
        match self {
            ViolationCause::ColdStart => "cold_start",
            ViolationCause::Queueing => "queueing",
            ViolationCause::Contention => "contention",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "cold_start" => Ok(ViolationCause::ColdStart),
            "queueing" => Ok(ViolationCause::Queueing),
            "contention" => Ok(ViolationCause::Contention),
            _ => Err(DecodeError::new(format!("unknown cause '{s}'"))),
        }
    }
}

/// The class of an injected (or injector-induced) fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A serverless container died; in-flight work was displaced.
    ContainerCrash,
    /// A VM boot failed and the group re-booted from scratch.
    VmBootFailure,
    /// A VM boot straggled past its nominal boot time.
    VmSlowBoot,
    /// A prewarm ack was lost between platform and engine.
    AckDropped,
    /// The engine's ack deadline expired for an in-flight switch.
    AckTimeout,
    /// An IaaS drain overran its deadline and was forced.
    DrainTimeout,
    /// A meter blackout window began: observations discarded.
    MeterOutage,
    /// One meter latency sample was corrupted by a large factor.
    MeterOutlier,
    /// A transient co-tenant pressure spike hit the shared pool.
    PressureSpike,
}

impl FaultKind {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            FaultKind::ContainerCrash => "container_crash",
            FaultKind::VmBootFailure => "vm_boot_failure",
            FaultKind::VmSlowBoot => "vm_slow_boot",
            FaultKind::AckDropped => "ack_dropped",
            FaultKind::AckTimeout => "ack_timeout",
            FaultKind::DrainTimeout => "drain_timeout",
            FaultKind::MeterOutage => "meter_outage",
            FaultKind::MeterOutlier => "meter_outlier",
            FaultKind::PressureSpike => "pressure_spike",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "container_crash" => Ok(FaultKind::ContainerCrash),
            "vm_boot_failure" => Ok(FaultKind::VmBootFailure),
            "vm_slow_boot" => Ok(FaultKind::VmSlowBoot),
            "ack_dropped" => Ok(FaultKind::AckDropped),
            "ack_timeout" => Ok(FaultKind::AckTimeout),
            "drain_timeout" => Ok(FaultKind::DrainTimeout),
            "meter_outage" => Ok(FaultKind::MeterOutage),
            "meter_outlier" => Ok(FaultKind::MeterOutlier),
            "pressure_spike" => Ok(FaultKind::PressureSpike),
            _ => Err(DecodeError::new(format!("unknown fault kind '{s}'"))),
        }
    }
}

/// How the system got back on its feet after a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A crash-displaced query was re-queued and completed.
    RequeuedQueryCompleted,
    /// A VM group finished booting after at least one failed attempt.
    VmBootSucceeded,
    /// A prewarm ack landed after at least one deadline retry.
    AckReceived,
    /// An un-ackable switch was rolled back; the old platform kept
    /// serving throughout.
    SwitchRolledBack,
    /// An overdue IaaS drain was forced; stragglers were re-queued on
    /// the serverless side.
    DrainForced,
}

impl RecoveryKind {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            RecoveryKind::RequeuedQueryCompleted => "requeued_query_completed",
            RecoveryKind::VmBootSucceeded => "vm_boot_succeeded",
            RecoveryKind::AckReceived => "ack_received",
            RecoveryKind::SwitchRolledBack => "switch_rolled_back",
            RecoveryKind::DrainForced => "drain_forced",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Result<Self, DecodeError> {
        match s {
            "requeued_query_completed" => Ok(RecoveryKind::RequeuedQueryCompleted),
            "vm_boot_succeeded" => Ok(RecoveryKind::VmBootSucceeded),
            "ack_received" => Ok(RecoveryKind::AckReceived),
            "switch_rolled_back" => Ok(RecoveryKind::SwitchRolledBack),
            "drain_forced" => Ok(RecoveryKind::DrainForced),
            _ => Err(DecodeError::new(format!("unknown recovery kind '{s}'"))),
        }
    }
}
