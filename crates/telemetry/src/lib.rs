#![warn(missing_docs)]
//! Structured telemetry for the Amoeba control loop.
//!
//! The simulation's control plane makes one QoS-critical decision per
//! service per control tick, and executes a multi-stage protocol every
//! time it switches a service between IaaS and serverless deployment.
//! This crate records that activity as an append-only stream of typed
//! [`TelemetryEvent`]s:
//!
//! - [`TickRecord`] — one per controller tick per managed service: the
//!   estimated load λ, predicted latency μ, the Eq. 5 discriminant
//!   λ(μ), the pressure vector and PCA weights that produced it, and
//!   the decision with its reason.
//! - [`SwitchRecord`] — one per stage of the switch protocol
//!   (`Requested → Ack → Flip → ReleaseIssued → Drained`, or
//!   `Aborted`), reassembled into [`SwitchSpan`]s with durations.
//! - [`HeartbeatRecord`] — the contention monitor's smoothed meter
//!   latencies, inverted pressures and current weights.
//! - [`ViolationRecord`] — each QoS violation with its attributed
//!   cause (cold start / queueing / contention).
//! - [`WarmSampleRecord`] — warm serverless latency breakdowns.
//!
//! Producers write through the [`TelemetrySink`] trait. The default
//! [`NoopSink`] reports `enabled() == false`, and instrumented code
//! guards event construction behind that check, so the disabled path
//! costs one branch and never allocates. [`MemorySink`] collects into a
//! [`Trace`], which offers typed iterators, [`Trace::switch_spans`],
//! [`Trace::summary`] and a JSON-lines serialisation
//! ([`Trace::to_jsonl`] / [`Trace::from_jsonl`]). The line format is
//! documented in `DESIGN.md` ("Telemetry event schema").

pub mod event;
pub mod sink;
pub mod trace;
pub mod vocab;

pub use event::{
    AdmissionRecord, DecodeError, FaultKind, FaultRecord, FleetSampleRecord, ForecastRecord,
    HeartbeatRecord, Mode, NodeUtilRecord, PlacementRecord, RecoveryKind, RecoveryRecord,
    ServiceInfo, ShardSpanRecord, StageSpanRecord, SwitchPhase, SwitchRecord, TelemetryEvent,
    TickReason, TickRecord, TraceDecision, VendorSampleRecord, ViolationCause, ViolationRecord,
    WarmSampleRecord,
};
pub use sink::{MemorySink, NoopSink, TelemetrySink};
pub use trace::{ServiceSummary, SwitchSpan, Trace, TraceSummary};
