#![warn(missing_docs)]
//! `amoeba-fleet`: the sharded parallel simulation fabric.
//!
//! The per-experiment runtime (`amoeba-core`) simulates one pool of
//! services serially. Vendor-scale questions — does Amoeba's per-tenant
//! switching still pay at a *thousand* services over a *week* of
//! diurnal load? — need runs two orders of magnitude larger, which is
//! wall-clock-bound long before it is memory-bound. This crate supplies
//! the missing scale axis:
//!
//! - [`FleetSpec`] generates a reproducible thousand-service fleet
//!   (phase-spread diurnal tenants via `amoeba-tenancy`'s
//!   `FleetBuilder`), runs vendor admission against the aggregate pool,
//!   and partitions the admitted tenants into **cells** — self-contained
//!   experiments with their own `SimWorld`, event calendar and forked
//!   RNG streams.
//! - [`FleetRun`] advances the cells on a pool of `std::thread` workers
//!   between **epoch barriers**: within an epoch no two cells share any
//!   state, so threads never contend; at each barrier the executor
//!   aggregates cross-cell signals (vendor-pool occupancy) and injects
//!   cross-cell effects (external pressure, fleet-level reclamation
//!   caps) in deterministic cell-index order. Results are therefore
//!   **independent of thread count and interleaving** — the same
//!   [`FleetOutcome::digest`] at 1, 2, 4 or 8 workers.
//! - [`DigestSink`] folds every telemetry event into an FNV-1a-64 hash
//!   of the event's canonical JSON-line bytes, so a million-event run
//!   can assert byte-identity without materialising traces.
//!
//! ```
//! use amoeba_fleet::FleetSpec;
//!
//! let spec = FleetSpec::new(7).services(24).cells(4).days(0.002);
//! let a = spec.clone().build().run(1);
//! let b = spec.build().run(4);
//! assert_eq!(a.digest, b.digest);
//! ```

mod digest;
mod run;
mod spec;

pub use digest::{fnv1a, DigestSink, FNV_OFFSET};
pub use run::{FleetOutcome, FleetRun, FleetTotals, ShardPlan};
pub use spec::{assign_cell, FleetSpec};
