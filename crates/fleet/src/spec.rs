//! Fleet specification: from one seed to a partitioned set of cells.
//!
//! The spec scales `amoeba-tenancy`'s `FleetBuilder` to thousand-service
//! fleets and turns the result into per-cell `Experiment`s. Three
//! properties are load-bearing:
//!
//! 1. **Canonical ordering.** Tenants are sorted by name before
//!    admission and assignment, so the fleet a spec produces is a pure
//!    function of its parameters — independent of the order services
//!    were generated or registered in (property-tested in
//!    `tests/partition.rs`).
//! 2. **Order-free admission.** Vendor admission runs once, at fleet
//!    level, against the *aggregate* pool (per-cell capacity × cells).
//!    First-come-first-served over the canonical order keeps the
//!    admitted set reproducible.
//! 3. **Content-addressed placement.** A tenant's cell is a hash of its
//!    name ([`assign_cell`]), not its position: adding or removing one
//!    tenant never reshuffles the others, and the assignment is
//!    trivially permutation-invariant.

use amoeba_chaos::FaultPlan;
use amoeba_core::{Experiment, ServiceSetup, SystemVariant};
use amoeba_platform::ServerlessConfig;
use amoeba_sim::SimDuration;
use amoeba_tenancy::{
    FleetBuilder, OverbookingPolicy, PoolCapacity, ReclamationConfig, TenantSpec,
};
use amoeba_workload::LoadTrace;

use crate::digest::{fnv1a, FNV_OFFSET};
use crate::run::FleetRun;

/// The cell a named service lands in: FNV-1a-64 of the service name,
/// modulo the cell count. Content-addressed, so the partition does not
/// depend on registration order.
pub fn assign_cell(name: &str, cells: usize) -> usize {
    assert!(cells > 0, "fleet needs at least one cell");
    (fnv1a(FNV_OFFSET, name.as_bytes()) % cells as u64) as usize
}

/// Builder for a sharded fleet run.
///
/// Defaults model the headline experiment at report scale: 1,000
/// services × 7 simulated days, 16 cells, Amoeba controllers, 2×
/// overbooking, 60 s control period. Tests shrink `services`/`days`.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    seed: u64,
    services: usize,
    cells: usize,
    days: f64,
    day_s: f64,
    variant: SystemVariant,
    peak_scale: (f64, f64),
    peak_floor: f64,
    qos_slack: f64,
    ratio: f64,
    control_period_s: f64,
    usage_sample_s: f64,
    epoch_s: f64,
    coupling: bool,
    reclamation: Option<ReclamationConfig>,
    fault_plan: Option<FaultPlan>,
    tenants: Option<Vec<TenantSpec>>,
}

impl FleetSpec {
    /// A 1,000-service, 7-day Amoeba fleet spec.
    pub fn new(seed: u64) -> Self {
        FleetSpec {
            seed,
            services: 1000,
            cells: 16,
            days: 7.0,
            day_s: 86_400.0,
            variant: SystemVariant::Amoeba,
            // Long-tail tenants: mean per-service peak well under 0.1
            // qps, so a 1,000-service week stays ~10⁷ arrivals — a
            // vendor's fleet is many small services, not a thousand
            // copies of the headline benchmark.
            peak_scale: (0.0002, 0.002),
            peak_floor: 0.001,
            qos_slack: 2.0,
            ratio: 2.0,
            control_period_s: 300.0,
            usage_sample_s: 600.0,
            epoch_s: 600.0,
            coupling: true,
            reclamation: Some(ReclamationConfig::default()),
            fault_plan: None,
            tenants: None,
        }
    }

    /// Fleet size (ignored when explicit [`FleetSpec::tenants`] are set).
    pub fn services(mut self, n: usize) -> Self {
        self.services = n;
        self
    }

    /// Number of cells the fleet is partitioned into. More cells expose
    /// more parallelism; the results are identical either way.
    pub fn cells(mut self, n: usize) -> Self {
        assert!(n > 0, "fleet needs at least one cell");
        self.cells = n;
        self
    }

    /// Simulated horizon in diurnal days (fractions allowed for tests).
    pub fn days(mut self, days: f64) -> Self {
        assert!(days > 0.0);
        self.days = days;
        self
    }

    /// Seconds per diurnal day (shrunk by tests; 86,400 at full scale).
    pub fn day_seconds(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.day_s = s;
        self
    }

    /// The control system every tenant runs ([`SystemVariant::Amoeba`]
    /// by default; `Nameko` gives the static-provisioning baseline).
    pub fn variant(mut self, variant: SystemVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Per-tenant peak as a uniform multiple of the base benchmark peak.
    pub fn peak_scale(mut self, lo: f64, hi: f64) -> Self {
        self.peak_scale = (lo, hi);
        self
    }

    /// Lower clamp on the drawn per-tenant peak, qps.
    pub fn peak_floor(mut self, floor: f64) -> Self {
        self.peak_floor = floor;
        self
    }

    /// Vendor overbooking ratio used at fleet-level admission.
    pub fn ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0);
        self.ratio = ratio;
        self
    }

    /// Controller tick period, seconds.
    pub fn control_period_s(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.control_period_s = s;
        self
    }

    /// Usage-meter sampling period, seconds. Must fit inside the
    /// horizon for allocated core-seconds to be observed at all.
    pub fn usage_sample_s(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.usage_sample_s = s;
        self
    }

    /// Epoch (barrier) length, seconds of simulated time. Any value
    /// yields the same results; it only trades barrier overhead against
    /// coupling staleness.
    pub fn epoch_s(mut self, s: f64) -> Self {
        assert!(s > 0.0);
        self.epoch_s = s;
        self
    }

    /// Enable or disable the cross-cell pressure/reclamation exchange.
    pub fn coupling(mut self, on: bool) -> Self {
        self.coupling = on;
        self
    }

    /// Fleet-level reclamation watermarks (`None` disables throttling).
    pub fn reclamation(mut self, cfg: Option<ReclamationConfig>) -> Self {
        self.reclamation = cfg;
        self
    }

    /// Inject a chaos calendar into every cell.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Use an explicit tenant list instead of generating one from the
    /// seed (the permutation-invariance tests feed shuffled lists).
    pub fn tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.tenants = Some(tenants);
        self
    }

    /// Generate the fleet, admit it, partition it and build the cells.
    pub fn build(self) -> FleetRun {
        let mut tenants = self.tenants.clone().unwrap_or_else(|| {
            FleetBuilder::new(self.seed)
                .tenants(self.services)
                .peak_scale(self.peak_scale.0, self.peak_scale.1)
                .peak_floor(self.peak_floor)
                .qos_slack(self.qos_slack)
                .build()
        });
        // Canonical order: admission and cell contents become pure
        // functions of the tenant *set*.
        tenants.sort_by(|a, b| a.spec.name.cmp(&b.spec.name));

        // Fleet-level admission against the aggregate pool: `cells`
        // per-cell pools acting as one logical vendor substrate. The
        // per-flow solo rates describe a single stream and do not scale.
        let cfg = ServerlessConfig::default();
        let scale = self.cells as f64;
        let pool = PoolCapacity {
            cores: cfg.node.cores * scale,
            mem_mb: cfg.pool_memory_mb * scale,
            io_mbps: cfg.node.disk_bw_mbps * scale,
            net_mbps: cfg.node.nic_bw_mbps * scale,
            solo_io_mbps: cfg.per_flow_io_mbps,
            solo_net_mbps: cfg.per_flow_net_mbps,
        };
        let decisions = OverbookingPolicy { ratio: self.ratio }.admit(&tenants, &pool);

        let mut per_cell: Vec<Vec<ServiceSetup>> = (0..self.cells).map(|_| Vec::new()).collect();
        let mut rejected = 0usize;
        for (t, d) in tenants.iter().zip(&decisions) {
            if !d.admitted {
                rejected += 1;
                continue;
            }
            per_cell[assign_cell(&t.spec.name, self.cells)].push(ServiceSetup {
                spec: t.spec.clone(),
                trace: LoadTrace::new(t.pattern.clone(), t.spec.peak_qps, self.day_s),
                background: false,
            });
        }

        let horizon = SimDuration::from_secs_f64(self.days * self.day_s);
        let cells = per_cell
            .into_iter()
            .enumerate()
            .map(|(i, services)| {
                // Distinct, reproducible per-cell seed (splitmix-style
                // spread so nearby cells do not correlate).
                let seed = self
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut b = Experiment::builder(self.variant, horizon, seed)
                    .services(services)
                    .control_period(SimDuration::from_secs_f64(self.control_period_s))
                    .usage_sample_period(SimDuration::from_secs_f64(self.usage_sample_s))
                    .run_meters(false);
                if let Some(plan) = &self.fault_plan {
                    b = b.fault_plan(plan.clone());
                }
                b.build()
            })
            .collect();

        FleetRun::new(
            cells,
            SimDuration::from_secs_f64(self.epoch_s),
            horizon,
            self.coupling,
            self.reclamation,
            rejected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_stable_and_in_range() {
        for cells in [1usize, 3, 16] {
            for name in ["geo-t00", "compress-t01", "recommend-t999"] {
                let c = assign_cell(name, cells);
                assert!(c < cells);
                assert_eq!(c, assign_cell(name, cells));
            }
        }
    }

    #[test]
    fn build_partitions_every_admitted_tenant() {
        let run = FleetSpec::new(11).services(30).cells(4).days(0.01).build();
        assert_eq!(run.cell_count(), 4);
        assert_eq!(run.service_count() + run.rejected(), 30);
    }
}
