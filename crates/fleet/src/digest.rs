//! Order-sensitive trace digests.
//!
//! A fleet run at full scale dispatches tens of millions of events;
//! keeping the traces in memory just to compare them across thread
//! counts would dwarf the simulation itself. The [`DigestSink`] instead
//! folds each event's canonical JSON-line bytes — exactly the bytes
//! `Trace::to_jsonl` would emit — into an FNV-1a-64 running hash, so
//! "byte-identical telemetry" collapses to one `u64` comparison while
//! remaining sensitive to any reordering, insertion or field change.

use amoeba_telemetry::{TelemetryEvent, TelemetrySink};

/// FNV-1a 64-bit offset basis: the empty-input digest.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a-64 state.
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// A [`TelemetrySink`] that hashes instead of storing.
///
/// Each event contributes the bytes of `event.to_json().compact()`
/// plus a trailing newline — the exact line `Trace::to_jsonl` writes —
/// so a `DigestSink` digest equals [`DigestSink::of_jsonl`] over the
/// equivalent materialised trace.
#[derive(Debug, Clone, Copy)]
pub struct DigestSink {
    state: u64,
    events: u64,
}

impl DigestSink {
    /// An empty digest (state = FNV offset basis).
    pub fn new() -> Self {
        DigestSink {
            state: FNV_OFFSET,
            events: 0,
        }
    }

    /// The digest of already-serialised JSON-lines text.
    pub fn of_jsonl(text: &str) -> u64 {
        fnv1a(FNV_OFFSET, text.as_bytes())
    }

    /// The running digest.
    pub fn digest(&self) -> u64 {
        self.state
    }

    /// Events hashed so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl TelemetrySink for DigestSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TelemetryEvent) {
        let line = event.to_json().compact();
        self.state = fnv1a(self.state, line.as_bytes());
        self.state = fnv1a(self.state, b"\n");
        self.events += 1;
    }
}

/// Combine per-cell digests in cell-index order into one run digest.
/// Hashing the fixed-width little-endian words (rather than XOR-ing)
/// keeps the combination order-sensitive: swapping two cells' streams
/// changes the result.
pub fn combine(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut state = FNV_OFFSET;
    for d in digests {
        state = fnv1a(state, &d.to_le_bytes());
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_sim::SimTime;
    use amoeba_telemetry::{HeartbeatRecord, MemorySink};

    fn beat(secs: u64) -> TelemetryEvent {
        TelemetryEvent::Heartbeat(HeartbeatRecord {
            t: SimTime::from_secs(secs),
            meter_latency_s: [None; 3],
            pressures: [0.1, 0.2, 0.3],
            weights: [1.0; 3],
        })
    }

    #[test]
    fn digest_matches_materialised_jsonl() {
        let mut d = DigestSink::new();
        let mut m = MemorySink::new();
        for s in 0..5 {
            d.record(beat(s));
            m.record(beat(s));
        }
        assert_eq!(d.digest(), DigestSink::of_jsonl(&m.into_trace().to_jsonl()));
        assert_eq!(d.events(), 5);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = DigestSink::new();
        a.record(beat(1));
        a.record(beat(2));
        let mut b = DigestSink::new();
        b.record(beat(2));
        b.record(beat(1));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine([1u64, 2]), combine([2u64, 1]));
        assert_eq!(combine([]), FNV_OFFSET);
    }
}
